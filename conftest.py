"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(the offline environment used for this reproduction lacks the ``wheel``
package that modern editable installs require, so ``python setup.py develop``
or this path shim are the supported ways to run the test suite).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
