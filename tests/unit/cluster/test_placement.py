"""Unit tests for the cluster placement map and signature extraction."""

from __future__ import annotations

import itertools
import zlib

import pytest

from repro.core.compiler import compile_entangled
from repro.core.sharding import node_for_relation, relation_signature
from repro.cluster import NodeSpec, PlacementMap, extract_signature

KRAMER_SQL = (
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
)

CROSS_SQL = (
    "SELECT 'multi', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('solo', fno) IN ANSWER Hotel CHOOSE 1"
)

#: SQL corpus the fast regex scan must agree with the compiler on.
CORPUS = [
    KRAMER_SQL,
    CROSS_SQL,
    # lower-cased keywords
    KRAMER_SQL.replace("ANSWER", "answer").replace("SELECT", "select"),
    # three distinct relations
    (
        "SELECT 'a', fno INTO ANSWER Cab "
        "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        "AND ('b', fno) IN ANSWER Hotel "
        "AND ('c', fno) IN ANSWER Reservation CHOOSE 1"
    ),
]


class TestExtractSignature:
    @pytest.mark.parametrize("sql", CORPUS)
    def test_agrees_with_compiled_signature(self, sql: str) -> None:
        assert extract_signature(sql) == relation_signature(compile_entangled(sql))

    def test_string_literals_cannot_forge_relations(self) -> None:
        sql = KRAMER_SQL.replace("'Paris'", "'IN ANSWER Hotel'")
        assert extract_signature(sql) == frozenset({"reservation"})

    def test_doubled_quote_escape_inside_literal(self) -> None:
        sql = KRAMER_SQL.replace("'Paris'", "'O''ANSWER Hotel'")
        assert extract_signature(sql) == frozenset({"reservation"})

    def test_garbage_sql_routes_as_empty_signature(self) -> None:
        assert extract_signature("not sql at all") == frozenset()


class TestNodeSpec:
    def test_parse_host_port(self) -> None:
        spec = NodeSpec.parse(2, "127.0.0.1:7001")
        assert (spec.index, spec.host, spec.port) == (2, "127.0.0.1", 7001)
        assert spec.address == "127.0.0.1:7001"
        assert spec.standby is None

    def test_parse_with_standby(self) -> None:
        spec = NodeSpec.parse(0, "127.0.0.1:7001", standby="127.0.0.1:7101")
        assert spec.standby == ("127.0.0.1", 7101)

    @pytest.mark.parametrize("bad", ["7001", "host:", "::", "host:port"])
    def test_parse_rejects_malformed(self, bad: str) -> None:
        with pytest.raises(ValueError, match="HOST:PORT"):
            NodeSpec.parse(0, bad)

    def test_parse_rejects_malformed_standby(self) -> None:
        with pytest.raises(ValueError, match="standby"):
            NodeSpec.parse(0, "h:1", standby="nope")


def _nodes(count: int) -> list[NodeSpec]:
    return [NodeSpec(i, "127.0.0.1", 7000 + i) for i in range(count)]


class TestPlacementMap:
    def test_requires_contiguous_indices(self) -> None:
        with pytest.raises(ValueError, match="indices"):
            PlacementMap([NodeSpec(1, "h", 1), NodeSpec(0, "h", 2)])

    def test_requires_nodes(self) -> None:
        with pytest.raises(ValueError, match="at least one node"):
            PlacementMap([])

    def test_shard_count_must_divide(self) -> None:
        with pytest.raises(ValueError, match="multiple"):
            PlacementMap(_nodes(3), shard_count=4)

    def test_defaults_shard_count_to_node_count(self) -> None:
        assert PlacementMap(_nodes(3)).shard_count == 3

    def test_node_routing_matches_core_arithmetic(self) -> None:
        placement = PlacementMap(_nodes(4), shard_count=8)
        for relation in ("reservation", "hotel", "cab", "train"):
            assert placement.node_for_relation(relation) == node_for_relation(
                relation, 4, 8
            )

    def test_single_relation_signature_routes_to_home_node(self) -> None:
        placement = PlacementMap(_nodes(3))
        home = placement.node_for_relation("reservation")
        assert placement.node_for_signature(frozenset({"reservation"})) == home

    def test_cross_node_signature_routes_to_none(self) -> None:
        placement = PlacementMap(_nodes(3))
        relations = [f"rel{i}" for i in range(32)]
        first = placement.node_for_relation(relations[0])
        other = next(
            rel for rel in relations if placement.node_for_relation(rel) != first
        )
        signature = frozenset({relations[0], other})
        assert placement.node_for_signature(signature) is None

    def test_empty_signature_routes_to_node_zero(self) -> None:
        placement = PlacementMap(_nodes(3))
        assert placement.node_for_signature(frozenset()) == 0
        assert placement.residence_node_for(frozenset()) == 0

    def test_shards_partition_across_nodes(self) -> None:
        placement = PlacementMap(_nodes(2), shard_count=6)
        owned = [placement.shards_of(i) for i in range(2)]
        assert sorted(owned[0] + owned[1]) == list(range(6))
        assert not set(owned[0]) & set(owned[1])

    def test_residence_hash_matches_crc32_arithmetic(self) -> None:
        # The property the router relies on: residence_node_for IS the CRC32
        # of the sorted, lower-cased, '|'-joined signature, mod node count —
        # any independent party (tests, operators, a future router) computes
        # the same node.
        placement = PlacementMap(_nodes(3))
        for size in (1, 2, 3):
            for combo in itertools.combinations([f"rel{i}" for i in range(8)], size):
                signature = frozenset(combo)
                expected = (
                    zlib.crc32("|".join(sorted(signature)).encode("utf-8")) % 3
                )
                assert placement.residence_node_for(signature) == expected
                assert 0 <= placement.residence_node_for(signature) < 3

    def test_residence_hash_is_order_and_case_insensitive(self) -> None:
        placement = PlacementMap(_nodes(4), shard_count=8)
        assert placement.residence_node_for(
            frozenset({"Hotel", "CAB"})
        ) == placement.residence_node_for(frozenset({"cab", "hotel"}))

    def test_cross_node_signatures_spread_over_multiple_residence_nodes(self) -> None:
        # The point of per-signature residence: distinct cross-node
        # signatures must land on >= 2 distinct nodes, not pile onto node 0.
        placement = PlacementMap(_nodes(3))
        relations = [f"rel{i}" for i in range(64)]
        residences = set()
        for left, right in itertools.combinations(relations[:16], 2):
            signature = frozenset({left, right})
            if placement.node_for_signature(signature) is not None:
                continue  # single-home: the residence hash never applies
            residences.add(placement.residence_node_for(signature))
        assert len(residences) >= 2

    def test_split_keeps_shard_count_and_relation_shards(self) -> None:
        old = PlacementMap(_nodes(2), shard_count=12)
        new = old.split(_nodes(3))
        assert new.shard_count == 12
        assert new.node_count == 3
        # the invariant split() exists for: a relation's shard never moves
        for relation in ("reservation", "hotel", "cab", "train"):
            assert old.node_for_relation(relation) in range(2)
            assert new.node_for_relation(relation) in range(3)

    def test_split_rejects_incommensurable_node_count(self) -> None:
        old = PlacementMap(_nodes(2), shard_count=4)
        with pytest.raises(ValueError, match="multiple"):
            old.split(_nodes(3))  # 4 shards cannot project onto 3 nodes

    def test_moved_shards_are_exactly_the_reprojected_ones(self) -> None:
        old = PlacementMap(_nodes(2), shard_count=12)
        new = old.split(_nodes(3))
        moved = old.moved_shards(new)
        for shard in range(12):
            if shard % 2 != shard % 3:
                assert shard in moved
            else:
                assert shard not in moved
        # growing a cluster moves some shards but never all of them
        assert 0 < len(moved) < 12

    def test_moved_shards_requires_a_split_pair(self) -> None:
        old = PlacementMap(_nodes(2), shard_count=4)
        other = PlacementMap(_nodes(2), shard_count=8)
        with pytest.raises(ValueError, match="split"):
            old.moved_shards(other)

    def test_describe_is_json_shaped(self) -> None:
        placement = PlacementMap(
            [NodeSpec.parse(0, "127.0.0.1:7000", standby="127.0.0.1:7100"),
             NodeSpec.parse(1, "127.0.0.1:7001")]
        )
        summary = placement.describe()
        assert summary["node_count"] == 2
        assert summary["residence"] == "per-signature"
        assert summary["nodes"][0]["standby"] == "127.0.0.1:7100"
        assert summary["nodes"][1]["standby"] is None
        assert summary["nodes"][0]["shards"] == [0]
