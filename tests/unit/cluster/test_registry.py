"""Unit tests for the router-side query registry and the hot-relation rule."""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import QueryRegistry, RoutedQuery
from repro.cluster.residence import DONE, PENDING


def _entry(
    query_id: str,
    node: int = 1,
    signature: frozenset[str] = frozenset({"reservation"}),
    resident: bool = False,
) -> RoutedQuery:
    return RoutedQuery(
        query_id=query_id,
        sql="",
        owner="o",
        signature=signature,
        node=node,
        status=PENDING,
        resident=resident,
    )


@pytest.fixture(autouse=True)
def _event_loop():
    # RoutedQuery futures need a loop bound at creation time.
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    yield
    loop.close()
    asyncio.set_event_loop(None)


class TestQueryRegistry:
    def test_add_and_lookup(self) -> None:
        registry = QueryRegistry()
        entry = _entry("r1")
        registry.add(entry)
        assert "r1" in registry
        assert registry.get("r1") is entry
        assert len(registry) == 1

    def test_duplicate_add_raises(self) -> None:
        registry = QueryRegistry()
        registry.add(_entry("r1"))
        with pytest.raises(ValueError, match="already registered"):
            registry.add(_entry("r1"))

    def test_settle_resolves_done_future(self) -> None:
        registry = QueryRegistry()
        entry = _entry("r1")
        registry.add(entry)
        state = {"query_id": "r1", "status": "answered"}
        assert registry.settle("r1", state) is entry
        assert entry.status == DONE
        assert entry.final_state == state
        assert entry.done_future.result() == state
        # settling twice is a no-op
        assert registry.settle("r1", {"status": "cancelled"}) is None
        assert entry.final_state == state

    def test_settle_unknown_id_is_noop(self) -> None:
        assert QueryRegistry().settle("ghost", {}) is None

    def test_hot_relations_track_live_residents(self) -> None:
        registry = QueryRegistry()
        cross = _entry("r1", node=0, signature=frozenset({"a", "b"}), resident=True)
        registry.add(cross)
        assert registry.hot_relations == frozenset({"a", "b"})
        registry.settle("r1", {"status": "answered"})
        assert registry.hot_relations == frozenset()

    def test_mark_resident_heats_signature(self) -> None:
        registry = QueryRegistry()
        entry = _entry("r1", node=0, signature=frozenset({"hotel"}))
        registry.add(entry)
        assert registry.hot_relations == frozenset()
        registry.mark_resident(entry)
        assert registry.hot_relations == frozenset({"hotel"})

    def test_hot_nodes_map_relations_to_the_residents_node(self) -> None:
        registry = QueryRegistry()
        cross = _entry("r1", node=2, signature=frozenset({"a", "b"}), resident=True)
        registry.add(cross)
        assert registry.hot_nodes == {"a": 2, "b": 2}
        assert registry.hot_target(frozenset({"b", "zzz"})) == 2
        assert registry.hot_target(frozenset({"zzz"})) is None

    def test_relocation_plan_targets_live_stranded_hot_queries(self) -> None:
        registry = QueryRegistry()
        anchor = _entry("r0", node=1, signature=frozenset({"hotel", "cab"}), resident=True)
        stranded = _entry("r1", node=2, signature=frozenset({"hotel"}))
        unrelated = _entry("r2", node=2, signature=frozenset({"train"}))
        already_there = _entry("r3", node=1, signature=frozenset({"hotel"}))
        settled = _entry("r4", node=2, signature=frozenset({"hotel"}))
        for entry in (anchor, stranded, unrelated, already_there, settled):
            registry.add(entry)
        registry.settle("r4", {"status": "answered"})
        assert registry.relocation_plan() == [(stranded, 1)]

    def test_hot_group_assignment_is_sticky_across_merges(self) -> None:
        # two disjoint groups on different nodes; a bridging resident merges
        # them and the merged group keeps ONE node (the one already assigned
        # to the lexicographically smallest hot relation) — so the
        # relocation plan drags the other side over instead of oscillating
        registry = QueryRegistry()
        registry.add(_entry("r1", node=1, signature=frozenset({"aa", "bb"}), resident=True))
        registry.add(_entry("r2", node=2, signature=frozenset({"cc", "dd"}), resident=True))
        assert registry.hot_nodes == {"aa": 1, "bb": 1, "cc": 2, "dd": 2}
        bridge = _entry("r3", node=1, signature=frozenset({"bb", "cc"}), resident=True)
        registry.add(bridge)
        assert set(registry.hot_nodes.values()) == {1}
        plan = registry.relocation_plan()
        assert [(entry.query_id, target) for entry, target in plan] == [("r2", 1)]

    def test_reset_residents_closes_over_signature_overlap(self) -> None:
        registry = QueryRegistry()
        cross = _entry("r1", node=0, signature=frozenset({"a", "b"}))
        chained = _entry("r2", node=1, signature=frozenset({"b"}))
        loner = _entry("r3", node=2, signature=frozenset({"z"}), resident=True)
        for entry in (cross, chained, loner):
            registry.add(entry)
        # "a|b" is cross-node; "b" joins transitively; "z" is freed
        registry.reset_residents(lambda signature: len(signature) > 1)
        assert cross.resident and chained.resident and not loner.resident
        assert set(registry.hot_nodes) == {"a", "b"}

    def test_rehash_hot_replaces_group_assignments(self) -> None:
        registry = QueryRegistry()
        registry.add(_entry("r1", node=0, signature=frozenset({"a", "b"}), resident=True))
        assert registry.hot_nodes == {"a": 0, "b": 0}
        registry.rehash_hot(lambda signature: 3)
        assert registry.hot_nodes == {"a": 3, "b": 3}
        # sticky: recomputation keeps the rehashed assignment
        registry.mark_resident(registry.get("r1"))
        registry.add(_entry("r2", node=0, signature=frozenset({"b"}), resident=True))
        assert registry.hot_nodes == {"a": 3, "b": 3}

    def test_counts_by_node_skip_terminal(self) -> None:
        registry = QueryRegistry()
        registry.add(_entry("r1", node=0))
        registry.add(_entry("r2", node=2))
        registry.add(_entry("r3", node=2))
        registry.settle("r3", {"status": "answered"})
        assert registry.counts_by_node(3) == [1, 0, 1]

    def test_live_entries_and_pending_on_node(self) -> None:
        registry = QueryRegistry()
        live = _entry("r1", node=1)
        done = _entry("r2", node=1)
        registry.add(live)
        registry.add(done)
        registry.settle("r2", {"status": "answered"})
        assert registry.live_entries() == [live]
        assert registry.pending_on_node(1) == [live]
        assert registry.pending_on_node(0) == []
