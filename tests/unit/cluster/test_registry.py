"""Unit tests for the router-side query registry and the hot-relation rule."""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import QueryRegistry, RoutedQuery
from repro.cluster.residence import DONE, PENDING


def _entry(
    query_id: str,
    node: int = 1,
    signature: frozenset[str] = frozenset({"reservation"}),
    resident: bool = False,
) -> RoutedQuery:
    return RoutedQuery(
        query_id=query_id,
        sql="",
        owner="o",
        signature=signature,
        node=node,
        status=PENDING,
        resident=resident,
    )


@pytest.fixture(autouse=True)
def _event_loop():
    # RoutedQuery futures need a loop bound at creation time.
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    yield
    loop.close()
    asyncio.set_event_loop(None)


class TestQueryRegistry:
    def test_add_and_lookup(self) -> None:
        registry = QueryRegistry()
        entry = _entry("r1")
        registry.add(entry)
        assert "r1" in registry
        assert registry.get("r1") is entry
        assert len(registry) == 1

    def test_duplicate_add_raises(self) -> None:
        registry = QueryRegistry()
        registry.add(_entry("r1"))
        with pytest.raises(ValueError, match="already registered"):
            registry.add(_entry("r1"))

    def test_settle_resolves_done_future(self) -> None:
        registry = QueryRegistry()
        entry = _entry("r1")
        registry.add(entry)
        state = {"query_id": "r1", "status": "answered"}
        assert registry.settle("r1", state) is entry
        assert entry.status == DONE
        assert entry.final_state == state
        assert entry.done_future.result() == state
        # settling twice is a no-op
        assert registry.settle("r1", {"status": "cancelled"}) is None
        assert entry.final_state == state

    def test_settle_unknown_id_is_noop(self) -> None:
        assert QueryRegistry().settle("ghost", {}) is None

    def test_hot_relations_track_live_residents(self) -> None:
        registry = QueryRegistry()
        cross = _entry("r1", node=0, signature=frozenset({"a", "b"}), resident=True)
        registry.add(cross)
        assert registry.hot_relations == frozenset({"a", "b"})
        registry.settle("r1", {"status": "answered"})
        assert registry.hot_relations == frozenset()

    def test_mark_resident_heats_signature(self) -> None:
        registry = QueryRegistry()
        entry = _entry("r1", node=0, signature=frozenset({"hotel"}))
        registry.add(entry)
        assert registry.hot_relations == frozenset()
        registry.mark_resident(entry)
        assert registry.hot_relations == frozenset({"hotel"})

    def test_relocation_victims_are_live_offresidence_hot(self) -> None:
        registry = QueryRegistry()
        stranded = _entry("r1", node=2, signature=frozenset({"hotel"}))
        unrelated = _entry("r2", node=2, signature=frozenset({"cab"}))
        already_home = _entry("r3", node=0, signature=frozenset({"hotel"}))
        settled = _entry("r4", node=2, signature=frozenset({"hotel"}))
        for entry in (stranded, unrelated, already_home, settled):
            registry.add(entry)
        registry.settle("r4", {"status": "answered"})
        victims = registry.relocation_victims({"hotel"}, residence_node=0)
        assert victims == [stranded]

    def test_counts_by_node_skip_terminal(self) -> None:
        registry = QueryRegistry()
        registry.add(_entry("r1", node=0))
        registry.add(_entry("r2", node=2))
        registry.add(_entry("r3", node=2))
        registry.settle("r3", {"status": "answered"})
        assert registry.counts_by_node(3) == [1, 0, 1]

    def test_live_entries_and_pending_on_node(self) -> None:
        registry = QueryRegistry()
        live = _entry("r1", node=1)
        done = _entry("r2", node=1)
        registry.add(live)
        registry.add(done)
        registry.settle("r2", {"status": "answered"})
        assert registry.live_entries() == [live]
        assert registry.pending_on_node(1) == [live]
        assert registry.pending_on_node(0) == []
