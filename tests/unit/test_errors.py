"""Unit tests for the shared exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_every_specific_error_derives_from_youtopia_error(self):
        specific = [
            errors.StorageError, errors.SchemaError, errors.UnknownTableError,
            errors.DuplicateTableError, errors.UnknownColumnError, errors.TypeMismatchError,
            errors.ConstraintViolationError, errors.TransactionError, errors.ParseError,
            errors.PlanError, errors.EvaluationError, errors.EntanglementError,
            errors.CompilationError, errors.SafetyError, errors.UniquenessError,
            errors.QueryNotPendingError, errors.CoordinationTimeoutError,
            errors.ExecutionError, errors.ApplicationError, errors.UnknownUserError,
            errors.BookingError, errors.ServiceUnavailableError, errors.ProtocolError,
        ]
        for error_type in specific:
            assert issubclass(error_type, errors.YoutopiaError)

    def test_storage_family(self):
        for error_type in (errors.SchemaError, errors.UnknownTableError,
                           errors.ConstraintViolationError, errors.TransactionError):
            assert issubclass(error_type, errors.StorageError)

    def test_entanglement_family(self):
        for error_type in (errors.CompilationError, errors.SafetyError, errors.UniquenessError,
                           errors.QueryNotPendingError, errors.CoordinationTimeoutError,
                           errors.ExecutionError):
            assert issubclass(error_type, errors.EntanglementError)

    def test_application_family(self):
        assert issubclass(errors.UnknownUserError, errors.ApplicationError)
        assert issubclass(errors.BookingError, errors.ApplicationError)


class TestMessages:
    def test_unknown_table_records_name(self):
        error = errors.UnknownTableError("Flights")
        assert error.table_name == "Flights"
        assert "Flights" in str(error)

    def test_unknown_column_mentions_table_when_known(self):
        assert "Flights" in str(errors.UnknownColumnError("dest", "Flights"))
        assert "dest" in str(errors.UnknownColumnError("dest"))

    def test_parse_error_location(self):
        with_position = errors.ParseError("boom", line=3, column=7)
        assert "line 3" in str(with_position) and "column 7" in str(with_position)
        assert with_position.line == 3 and with_position.column == 7
        line_only = errors.ParseError("boom", line=2)
        assert "line 2" in str(line_only) and "column" not in str(line_only)
        bare = errors.ParseError("boom")
        assert str(bare) == "boom"

    def test_timeout_error_records_query_and_deadline(self):
        error = errors.CoordinationTimeoutError("q7", 1.5)
        assert error.query_id == "q7" and error.timeout == 1.5
        assert "q7" in str(error)

    def test_query_not_pending_and_unknown_user(self):
        assert errors.QueryNotPendingError("q1").query_id == "q1"
        assert errors.UnknownUserError("Newman").username == "Newman"

    def test_service_unavailable_records_reason(self):
        error = errors.ServiceUnavailableError("server closed the connection")
        assert error.reason == "server closed the connection"
        assert "unavailable" in str(error)
        assert "server closed the connection" in str(error)

    def test_remote_errors_are_not_entanglement_errors(self):
        """Transport failures must stay distinguishable from coordination
        outcomes: a caller catching EntanglementError around result() must
        not accidentally swallow a dead connection."""
        assert not issubclass(errors.ServiceUnavailableError, errors.EntanglementError)
        assert not issubclass(errors.ProtocolError, errors.EntanglementError)
