"""Unit tests for the rule-based optimizer (pushdown, folding, index lookups)."""

from __future__ import annotations

import pytest

from repro.relalg import plan as planops
from repro.relalg.engine import QueryEngine, run_script
from repro.relalg.optimizer import fold_constants, join_conjuncts, optimize, split_conjuncts
from repro.relalg.planner import build_plan
from repro.sqlparser import ast, parse_statement
from repro.storage.database import Database


@pytest.fixture
def engine() -> QueryEngine:
    engine = QueryEngine(Database())
    run_script(
        engine,
        """
        CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT, price REAL);
        CREATE TABLE Airlines (fno INT PRIMARY KEY, airline TEXT);
        INSERT INTO Flights VALUES (122, 'Paris', 450.0), (123, 'Paris', 500.0), (136, 'Rome', 300.0);
        INSERT INTO Airlines VALUES (122, 'United'), (123, 'United'), (136, 'Alitalia');
        """,
    )
    return engine


def plan_for(engine: QueryEngine, sql: str, enable_index_lookup: bool = True) -> planops.PlanNode:
    select = parse_statement(sql)
    return optimize(build_plan(select, engine.database), engine.database, enable_index_lookup)


class TestConjunctHelpers:
    def test_split_and_join_round_trip(self):
        where = parse_statement("SELECT 1 WHERE a = 1 AND b = 2 AND c = 3").where
        conjuncts = split_conjuncts(where)
        assert len(conjuncts) == 3
        rebuilt = join_conjuncts(conjuncts)
        assert split_conjuncts(rebuilt) == conjuncts
        assert join_conjuncts([]) is None

    def test_fold_constants(self):
        expression = parse_statement("SELECT 1 WHERE 1 + 1 = 2").where
        assert fold_constants(expression) == ast.Literal(True)
        untouched = parse_statement("SELECT 1 WHERE price > 1 + 1").where
        folded = fold_constants(untouched)
        assert isinstance(folded, ast.BinaryOp)
        assert folded.right == ast.Literal(2)


class TestRewrites:
    def test_equality_filter_becomes_index_lookup(self, engine):
        plan = plan_for(engine, "SELECT fno FROM Flights WHERE dest = 'Paris'")
        assert "IndexLookup" in plan.explain()

    def test_index_lookup_can_be_disabled(self, engine):
        plan = plan_for(
            engine, "SELECT fno FROM Flights WHERE dest = 'Paris'", enable_index_lookup=False
        )
        assert "IndexLookup" not in plan.explain()
        assert "Filter" in plan.explain()

    def test_residual_predicate_kept_above_lookup(self, engine):
        plan = plan_for(engine, "SELECT fno FROM Flights WHERE dest = 'Paris' AND price < 480")
        text = plan.explain()
        assert "IndexLookup" in text and "Filter" in text

    def test_predicate_pushdown_through_join(self, engine):
        plan = plan_for(
            engine,
            "SELECT f.fno FROM Flights f JOIN Airlines a ON f.fno = a.fno "
            "WHERE f.dest = 'Paris' AND a.airline = 'United'",
        )
        text = plan.explain()
        join_line = text.splitlines()[1]
        assert "Join" in join_line
        # both single-table predicates were pushed below the join
        assert text.index("Join") < text.index("IndexLookup")

    def test_contradictory_equalities_stay_as_filters(self, engine):
        """Regression: two equalities on the same column must not collapse into
        a single index probe (found by the optimizer-equivalence property test)."""
        sql = "SELECT fno FROM Flights WHERE dest = 'Paris' AND dest = 'Rome'"
        assert engine.query(sql).rows == []
        text = plan_for(engine, sql).explain()
        assert "Filter" in text

    def test_join_predicate_repeated_in_where_terminates(self, engine):
        """Regression: a WHERE conjunct equal to the join condition used to
        send the optimizer into infinite recursion."""
        sql = (
            "SELECT f.fno FROM Flights f JOIN Airlines a ON f.fno = a.fno "
            "WHERE f.fno = a.fno ORDER BY f.fno"
        )
        assert [row[0] for row in engine.query(sql).rows] == [122, 123, 136]

    def test_always_true_filter_removed(self, engine):
        plan = plan_for(engine, "SELECT fno FROM Flights WHERE 1 = 1")
        assert "Filter" not in plan.explain()

    def test_always_false_filter_kept(self, engine):
        plan = plan_for(engine, "SELECT fno FROM Flights WHERE 1 = 2")
        assert "Filter" in plan.explain()


class TestRewritesPreserveResults:
    QUERIES = [
        "SELECT fno FROM Flights WHERE dest = 'Paris' ORDER BY fno",
        "SELECT fno FROM Flights WHERE dest = 'Paris' AND price < 480 ORDER BY fno",
        "SELECT f.fno FROM Flights f JOIN Airlines a ON f.fno = a.fno "
        "WHERE a.airline = 'United' ORDER BY f.fno",
        "SELECT dest, COUNT(*) FROM Flights WHERE price > 0 GROUP BY dest ORDER BY dest",
        "SELECT fno FROM Flights WHERE 2 > 1 ORDER BY fno",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_same_rows_with_and_without_index_lookup(self, sql):
        baseline_engine = QueryEngine(Database(), enable_index_lookup=False)
        optimized_engine = QueryEngine(baseline_engine.database, enable_index_lookup=True)
        run_script(
            baseline_engine,
            """
            CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT, price REAL);
            CREATE TABLE Airlines (fno INT PRIMARY KEY, airline TEXT);
            INSERT INTO Flights VALUES (122, 'Paris', 450.0), (123, 'Paris', 500.0), (136, 'Rome', 300.0);
            INSERT INTO Airlines VALUES (122, 'United'), (123, 'United'), (136, 'Alitalia');
            """,
        )
        assert baseline_engine.query(sql).rows == optimized_engine.query(sql).rows
