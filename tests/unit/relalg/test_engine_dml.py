"""Unit tests for DDL and DML execution through the query engine."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConstraintViolationError,
    DuplicateTableError,
    EvaluationError,
    PlanError,
)
from repro.relalg.engine import QueryEngine
from repro.storage.database import Database


@pytest.fixture
def engine() -> QueryEngine:
    engine = QueryEngine(Database())
    engine.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT, price REAL)")
    return engine


class TestCreateTable:
    def test_create_and_describe(self, engine):
        schema = engine.database.schema("Flights")
        assert schema.column_names == ("fno", "dest", "price")
        assert schema.primary_key == ("fno",)

    def test_duplicate_create_rejected(self, engine):
        with pytest.raises(DuplicateTableError):
            engine.execute("CREATE TABLE Flights (x INT)")
        engine.execute("CREATE TABLE IF NOT EXISTS Flights (x INT)")

    def test_drop_table(self, engine):
        engine.execute("DROP TABLE Flights")
        assert not engine.database.has_table("Flights")

    def test_not_null_enforced(self, engine):
        engine.execute("CREATE TABLE Strict (a INT NOT NULL)")
        from repro.errors import TypeMismatchError

        with pytest.raises(TypeMismatchError):
            engine.execute("INSERT INTO Strict VALUES (NULL)")


class TestInsert:
    def test_positional_insert(self, engine):
        result = engine.execute("INSERT INTO Flights VALUES (122, 'Paris', 450.0), (123, 'Rome', 300.0)")
        assert result.affected == 2
        assert len(engine.database.table("Flights")) == 2

    def test_column_list_insert_fills_missing_with_null(self, engine):
        engine.execute("INSERT INTO Flights (fno, dest) VALUES (7, 'Athens')")
        assert engine.query("SELECT price FROM Flights WHERE fno = 7").scalar() is None

    def test_insert_evaluates_expressions(self, engine):
        engine.execute("INSERT INTO Flights VALUES (10 + 1, UPPER('paris'), 2 * 100.0)")
        assert engine.query("SELECT dest FROM Flights WHERE fno = 11").scalar() == "PARIS"

    def test_arity_mismatch_rejected(self, engine):
        with pytest.raises(EvaluationError):
            engine.execute("INSERT INTO Flights VALUES (1, 'Paris')")
        with pytest.raises(EvaluationError):
            engine.execute("INSERT INTO Flights (fno, dest) VALUES (1)")

    def test_primary_key_violation(self, engine):
        engine.execute("INSERT INTO Flights VALUES (122, 'Paris', 450.0)")
        with pytest.raises(ConstraintViolationError):
            engine.execute("INSERT INTO Flights VALUES (122, 'Rome', 1.0)")


class TestUpdateDelete:
    @pytest.fixture(autouse=True)
    def _rows(self, engine):
        engine.execute(
            "INSERT INTO Flights VALUES (122, 'Paris', 450.0), (123, 'Paris', 500.0), (136, 'Rome', 300.0)"
        )

    def test_update_with_expression(self, engine):
        result = engine.execute("UPDATE Flights SET price = price + 50 WHERE dest = 'Paris'")
        assert result.affected == 2
        assert engine.query("SELECT price FROM Flights WHERE fno = 122").scalar() == 500.0

    def test_update_without_where_touches_all(self, engine):
        assert engine.execute("UPDATE Flights SET price = 0.0").affected == 3

    def test_delete_with_where(self, engine):
        assert engine.execute("DELETE FROM Flights WHERE dest = 'Rome'").affected == 1
        assert len(engine.query("SELECT fno FROM Flights")) == 2

    def test_delete_all(self, engine):
        assert engine.execute("DELETE FROM Flights").affected == 3
        assert engine.query("SELECT COUNT(*) FROM Flights").scalar() == 0


class TestRouting:
    def test_entangled_query_rejected_by_plain_engine(self, engine):
        with pytest.raises(PlanError):
            engine.execute(
                "SELECT 'K', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM Flights) CHOOSE 1"
            )
