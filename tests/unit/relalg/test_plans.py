"""Unit tests for individual plan operators and row-environment helpers."""

from __future__ import annotations

import pytest

from repro.relalg import plan as planops
from repro.relalg.expressions import ExpressionEvaluator
from repro.relalg.plan import PlanContext
from repro.relalg.rows import RowEnv, bind_row, merge_rows, output_row
from repro.sqlparser import ast, parse_statement
from repro.storage.database import Database


@pytest.fixture
def context() -> PlanContext:
    database = Database()
    database.create_table(name="T", columns=[("a", "INT"), ("b", "TEXT")])
    database.insert_many("T", [(1, "x"), (2, "y"), (3, "x")])
    return PlanContext(database, ExpressionEvaluator())


def where(sql_condition: str) -> ast.Expression:
    return parse_statement(f"SELECT 1 WHERE {sql_condition}").where


class TestRowHelpers:
    def test_bind_row_prefixes_keys(self):
        assert bind_row("F", {"Fno": 1}) == {"f.fno": 1}

    def test_merge_rows_later_wins(self):
        assert merge_rows({"a": 1}, {"a": 2, "b": 3}) == {"a": 2, "b": 3}

    def test_output_row_lowercases(self):
        assert output_row(["Fno"], [5]) == {"fno": 5}

    def test_env_values_copy(self):
        env = RowEnv({"a": 1})
        values = env.values
        values["a"] = 2
        assert env.resolve("a") == 1


class TestOperators:
    def test_scan_yields_qualified_rows(self, context):
        scan = planops.ScanNode("T", "t")
        rows = list(scan.rows(context))
        assert {"t.a": 1, "t.b": "x"} in rows
        assert len(rows) == 3

    def test_filter(self, context):
        node = planops.FilterNode(planops.ScanNode("T", "t"), where("t.b = 'x'"))
        assert len(list(node.rows(context))) == 2

    def test_index_lookup_node(self, context):
        context.database.table("T").create_index("by_b", ["b"])
        node = planops.IndexLookupNode("T", "t", {"b": ast.Literal("x")})
        assert {row["t.a"] for row in node.rows(context)} == {1, 3}

    def test_project(self, context):
        node = planops.ProjectNode(
            planops.ScanNode("T", "t"),
            ("double", "b"),
            (where("t.a * 2 = t.a * 2") and parse_statement("SELECT t.a * 2").items[0].expression,
             ast.ColumnRef("b", table="t")),
        )
        rows = list(node.rows(context))
        assert {"double": 2, "b": "x"} in rows

    def test_limit_and_offset(self, context):
        node = planops.LimitNode(planops.ScanNode("T", "t"), limit=1, offset=1)
        rows = list(node.rows(context))
        assert len(rows) == 1 and rows[0]["t.a"] == 2

    def test_distinct(self, context):
        node = planops.DistinctNode(
            planops.ProjectNode(planops.ScanNode("T", "t"), ("b",), (ast.ColumnRef("b", table="t"),))
        )
        assert sorted(row["b"] for row in node.rows(context)) == ["x", "y"]

    def test_sort_descending_with_nulls(self, context):
        context.database.insert("T", (4, None))
        node = planops.SortNode(
            planops.ScanNode("T", "t"),
            (ast.OrderItem(ast.ColumnRef("b", table="t"), descending=True),),
        )
        values = [row["t.b"] for row in node.rows(context)]
        assert values[0] == "y" and values[-1] is None

    def test_values_node(self, context):
        node = planops.ValuesNode(({"x": 1}, {"x": 2}))
        assert [row["x"] for row in node.rows(context)] == [1, 2]

    def test_left_join_null_padding(self, context):
        context.database.create_table(name="S", columns=[("a", "INT"), ("c", "TEXT")])
        context.database.insert("S", (1, "only"))
        node = planops.JoinNode(
            left=planops.ScanNode("T", "t"),
            right=planops.ScanNode("S", "s"),
            condition=where("t.a = s.a"),
            kind="left",
            right_columns=("s.a", "s.c"),
        )
        rows = list(node.rows(context))
        assert len(rows) == 3
        unmatched = [row for row in rows if row["t.a"] != 1]
        assert all(row["s.c"] is None for row in unmatched)

    def test_explain_tree_is_indented(self, context):
        node = planops.FilterNode(planops.ScanNode("T", "t"), where("t.a = 1"))
        text = node.explain()
        assert text.splitlines()[0].startswith("Filter")
        assert text.splitlines()[1].startswith("  Scan")


class TestStarExpansion:
    def test_star_prefers_bare_names(self, context):
        node = planops.ProjectNode(planops.ScanNode("T", "t"), ("*",), (ast.Star(),))
        rows = list(node.rows(context))
        assert set(rows[0].keys()) == {"a", "b"}

    def test_qualified_star_filters_by_binding(self, context):
        context.database.create_table(name="S", columns=[("c", "INT")])
        context.database.insert("S", (9,))
        join = planops.JoinNode(
            left=planops.ScanNode("T", "t"),
            right=planops.ScanNode("S", "s"),
            condition=None,
            kind="cross",
        )
        node = planops.ProjectNode(join, ("*",), (ast.Star(table="s"),))
        rows = list(node.rows(context))
        assert set(rows[0].keys()) == {"c"}
