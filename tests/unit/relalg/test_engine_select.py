"""Unit tests for SELECT execution through the query engine."""

from __future__ import annotations

import pytest

from repro.errors import PlanError, UnknownTableError
from repro.relalg.engine import QueryEngine, run_script
from repro.storage.database import Database


@pytest.fixture
def engine() -> QueryEngine:
    database = Database()
    engine = QueryEngine(database)
    run_script(
        engine,
        """
        CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT, price REAL, airline TEXT);
        CREATE TABLE Airlines (fno INT PRIMARY KEY, airline TEXT);
        INSERT INTO Flights VALUES
            (122, 'Paris', 450.0, 'United'),
            (123, 'Paris', 500.0, 'United'),
            (134, 'Paris', 700.0, 'Lufthansa'),
            (136, 'Rome', 300.0, 'Alitalia');
        INSERT INTO Airlines VALUES
            (122, 'United'), (123, 'United'), (134, 'Lufthansa'), (136, 'Alitalia');
        """,
    )
    return engine


class TestBasicSelect:
    def test_projection_and_filter(self, engine):
        result = engine.query("SELECT fno FROM Flights WHERE dest = 'Paris'")
        assert result.columns == ["fno"]
        assert sorted(row[0] for row in result.rows) == [122, 123, 134]

    def test_select_star(self, engine):
        result = engine.query("SELECT * FROM Flights WHERE fno = 136")
        assert result.columns == ["fno", "dest", "price", "airline"]
        assert result.rows == [(136, "Rome", 300.0, "Alitalia")]

    def test_expressions_and_aliases(self, engine):
        result = engine.query("SELECT fno, price * 2 AS double_price FROM Flights WHERE fno = 122")
        assert result.columns == ["fno", "double_price"]
        assert result.rows == [(122, 900.0)]

    def test_order_by_and_limit_offset(self, engine):
        result = engine.query("SELECT fno FROM Flights ORDER BY price DESC LIMIT 2 OFFSET 1")
        assert [row[0] for row in result.rows] == [123, 122]

    def test_order_by_ascending_with_ties_is_stable_sorted(self, engine):
        result = engine.query("SELECT fno FROM Flights ORDER BY airline, fno")
        assert [row[0] for row in result.rows] == [136, 134, 122, 123]

    def test_distinct(self, engine):
        result = engine.query("SELECT DISTINCT dest FROM Flights")
        assert sorted(row[0] for row in result.rows) == ["Paris", "Rome"]

    def test_select_without_from(self, engine):
        assert engine.query("SELECT 1 + 1").scalar() == 2

    def test_where_false_returns_empty(self, engine):
        assert engine.query("SELECT fno FROM Flights WHERE 1 = 2").rows == []

    def test_unknown_table_raises(self, engine):
        with pytest.raises(UnknownTableError):
            engine.query("SELECT * FROM Hotels")


class TestJoins:
    def test_inner_join(self, engine):
        result = engine.query(
            "SELECT f.fno, a.airline FROM Flights f JOIN Airlines a ON f.fno = a.fno "
            "WHERE f.dest = 'Paris' ORDER BY f.fno"
        )
        assert result.rows == [(122, "United"), (123, "United"), (134, "Lufthansa")]

    def test_left_join_produces_nulls(self, engine):
        engine.execute("INSERT INTO Flights VALUES (200, 'Athens', 100.0, 'Aegean')")
        result = engine.query(
            "SELECT f.fno, a.airline FROM Flights f LEFT JOIN Airlines a ON f.fno = a.fno "
            "WHERE f.fno = 200"
        )
        assert result.rows == [(200, None)]

    def test_cross_join_counts(self, engine):
        result = engine.query("SELECT COUNT(*) FROM Flights CROSS JOIN Airlines")
        assert result.scalar() == 16

    def test_join_with_table_filter_on_both_sides(self, engine):
        result = engine.query(
            "SELECT f.fno FROM Flights f JOIN Airlines a ON f.fno = a.fno "
            "WHERE a.airline = 'United' AND f.price < 480"
        )
        assert [row[0] for row in result.rows] == [122]


class TestAggregation:
    def test_group_by_with_aggregates(self, engine):
        result = engine.query(
            "SELECT dest, COUNT(*) AS n, AVG(price) AS avg_price FROM Flights "
            "GROUP BY dest ORDER BY n DESC"
        )
        assert result.rows == [("Paris", 3, 550.0), ("Rome", 1, 300.0)]

    def test_global_aggregates(self, engine):
        result = engine.query("SELECT COUNT(*), MIN(price), MAX(price), SUM(price) FROM Flights")
        assert result.rows == [(4, 300.0, 700.0, 1950.0)]

    def test_global_aggregate_on_empty_input(self, engine):
        result = engine.query("SELECT COUNT(*), SUM(price) FROM Flights WHERE dest = 'Nowhere'")
        assert result.rows == [(0, None)]

    def test_having_filters_groups(self, engine):
        result = engine.query(
            "SELECT dest FROM Flights GROUP BY dest HAVING COUNT(*) > 1"
        )
        assert result.rows == [("Paris",)]

    def test_count_distinct(self, engine):
        assert engine.query("SELECT COUNT(DISTINCT airline) FROM Flights").scalar() == 3

    def test_aggregate_arithmetic(self, engine):
        result = engine.query("SELECT MAX(price) - MIN(price) FROM Flights")
        assert result.scalar() == 400.0

    def test_having_without_group_or_aggregate_rejected(self, engine):
        with pytest.raises(PlanError):
            engine.query("SELECT fno FROM Flights HAVING fno > 1")

    def test_star_mixed_with_aggregate_rejected(self, engine):
        with pytest.raises(PlanError):
            engine.query("SELECT *, COUNT(*) FROM Flights")


class TestSubqueries:
    def test_uncorrelated_in_subquery(self, engine):
        result = engine.query(
            "SELECT fno FROM Flights WHERE fno IN (SELECT fno FROM Airlines WHERE airline = 'United')"
        )
        assert sorted(row[0] for row in result.rows) == [122, 123]

    def test_correlated_subquery_sees_outer_row(self, engine):
        result = engine.query(
            "SELECT f.fno FROM Flights f WHERE 'United' IN "
            "(SELECT airline FROM Airlines a WHERE a.fno = f.fno)"
        )
        assert sorted(row[0] for row in result.rows) == [122, 123]

    def test_not_in_subquery(self, engine):
        result = engine.query(
            "SELECT fno FROM Flights WHERE fno NOT IN (SELECT fno FROM Airlines WHERE airline = 'United')"
        )
        assert sorted(row[0] for row in result.rows) == [134, 136]


class TestResultHelpers:
    def test_as_dicts(self, engine):
        rows = engine.query("SELECT fno, dest FROM Flights WHERE fno = 122").as_dicts()
        assert rows == [{"fno": 122, "dest": "Paris"}]

    def test_scalar_requires_single_cell(self, engine):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            engine.query("SELECT fno, dest FROM Flights").scalar()

    def test_len(self, engine):
        assert len(engine.query("SELECT fno FROM Flights")) == 4

    def test_explain_mentions_operators(self, engine):
        plan = engine.explain("SELECT fno FROM Flights WHERE dest = 'Paris' ORDER BY fno")
        assert "Sort" in plan and "Project" in plan
        with pytest.raises(PlanError):
            engine.explain("INSERT INTO Flights VALUES (1, 'X', 1.0, 'Y')")
