"""Unit tests for scalar expression evaluation (including SQL NULL behaviour)."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.relalg.expressions import ExpressionEvaluator, like_to_regex
from repro.relalg.rows import RowEnv
from repro.sqlparser import ast, parse_statement


@pytest.fixture
def evaluator() -> ExpressionEvaluator:
    return ExpressionEvaluator()


def expr(sql_condition: str) -> ast.Expression:
    """Parse a scalar expression by hiding it in a SELECT item."""
    statement = parse_statement(f"SELECT {sql_condition}")
    return statement.items[0].expression


def evaluate(evaluator: ExpressionEvaluator, sql_condition: str, **values):
    return evaluator.evaluate(expr(sql_condition), RowEnv({k.lower(): v for k, v in values.items()}))


class TestArithmeticAndComparison:
    def test_arithmetic(self, evaluator):
        assert evaluate(evaluator, "1 + 2 * 3") == 7
        assert evaluate(evaluator, "10 / 4") == 2.5
        assert evaluate(evaluator, "10 % 3") == 1
        assert evaluate(evaluator, "-(2 + 3)") == -5

    def test_division_by_zero(self, evaluator):
        with pytest.raises(EvaluationError):
            evaluate(evaluator, "1 / 0")

    def test_comparisons(self, evaluator):
        assert evaluate(evaluator, "2 < 3") is True
        assert evaluate(evaluator, "2 >= 3") is False
        assert evaluate(evaluator, "'a' != 'b'") is True

    def test_incomparable_types_raise(self, evaluator):
        with pytest.raises(EvaluationError):
            evaluate(evaluator, "1 < 'x'")

    def test_string_concatenation(self, evaluator):
        assert evaluate(evaluator, "'a' || 'b'") == "ab"

    def test_arithmetic_on_text_raises(self, evaluator):
        with pytest.raises(EvaluationError):
            evaluate(evaluator, "'a' + 1")


class TestNullSemantics:
    def test_comparison_with_null_is_null(self, evaluator):
        assert evaluate(evaluator, "x = 1", x=None) is None
        assert evaluate(evaluator, "x < 1", x=None) is None

    def test_null_propagates_through_arithmetic(self, evaluator):
        assert evaluate(evaluator, "x + 1", x=None) is None

    def test_and_or_three_valued(self, evaluator):
        assert evaluate(evaluator, "x = 1 AND 1 = 1", x=None) is None
        assert evaluate(evaluator, "x = 1 AND 1 = 2", x=None) is False
        assert evaluate(evaluator, "x = 1 OR 1 = 1", x=None) is True
        assert evaluate(evaluator, "x = 1 OR 1 = 2", x=None) is None

    def test_is_null(self, evaluator):
        assert evaluate(evaluator, "x IS NULL", x=None) is True
        assert evaluate(evaluator, "x IS NOT NULL", x=None) is False

    def test_predicate_treats_null_as_false(self, evaluator):
        condition = parse_statement("SELECT 1 WHERE x = 1").where
        assert evaluator.evaluate_predicate(condition, RowEnv({"x": None})) is False


class TestPredicatesAndFunctions:
    def test_between(self, evaluator):
        assert evaluate(evaluator, "5 BETWEEN 1 AND 10") is True
        assert evaluate(evaluator, "5 NOT BETWEEN 1 AND 10") is False

    def test_like(self, evaluator):
        assert evaluate(evaluator, "'Grand Paris' LIKE 'Gr%'") is True
        assert evaluate(evaluator, "'Grand' LIKE 'Gr_nd'") is True
        assert evaluate(evaluator, "'Grand' NOT LIKE 'X%'") is True

    def test_like_regex_escapes_special_characters(self):
        assert like_to_regex("a.b%").match("a.bcd")
        assert not like_to_regex("a.b%").match("axbcd")

    def test_in_list_with_null_semantics(self, evaluator):
        assert evaluate(evaluator, "2 IN (1, 2, 3)") is True
        assert evaluate(evaluator, "5 IN (1, 2, NULL)") is None
        assert evaluate(evaluator, "x IN (1, 2)", x=None) is None

    def test_scalar_functions(self, evaluator):
        assert evaluate(evaluator, "ABS(-4)") == 4
        assert evaluate(evaluator, "LOWER('ABC')") == "abc"
        assert evaluate(evaluator, "UPPER('abc')") == "ABC"
        assert evaluate(evaluator, "LENGTH('abcd')") == 4
        assert evaluate(evaluator, "ROUND(3.456, 1)") == 3.5
        assert evaluate(evaluator, "COALESCE(NULL, 2)") == 2

    def test_unknown_function_rejected(self, evaluator):
        with pytest.raises(EvaluationError):
            evaluate(evaluator, "FROBNICATE(1)")

    def test_aggregate_outside_grouping_rejected(self, evaluator):
        with pytest.raises(EvaluationError):
            evaluate(evaluator, "SUM(x)", x=1)

    def test_subquery_without_callback_rejected(self, evaluator):
        condition = parse_statement("SELECT 1 WHERE x IN (SELECT 1)").where
        with pytest.raises(EvaluationError):
            evaluator.evaluate(condition, RowEnv({"x": 1}))

    def test_answer_membership_rejected_outside_entangled_context(self, evaluator):
        condition = parse_statement("SELECT 1 WHERE (1, 2) IN ANSWER R").where
        with pytest.raises(EvaluationError):
            evaluator.evaluate(condition, RowEnv({}))


class TestColumnResolution:
    def test_ambiguous_bare_reference_raises(self, evaluator):
        env = RowEnv({"f.fno": 1, "a.fno": 2})
        with pytest.raises(EvaluationError):
            evaluator.evaluate(ast.ColumnRef("fno"), env)

    def test_qualified_reference_resolves(self, evaluator):
        env = RowEnv({"f.fno": 1, "a.fno": 2})
        assert evaluator.evaluate(ast.ColumnRef("fno", table="a"), env) == 2

    def test_unknown_reference_raises(self, evaluator):
        with pytest.raises(EvaluationError):
            evaluator.evaluate(ast.ColumnRef("missing"), RowEnv({}))

    def test_outer_scope_lookup(self, evaluator):
        outer = RowEnv({"f.fno": 7})
        inner = outer.child({"h.hid": 9})
        assert evaluator.evaluate(ast.ColumnRef("fno"), inner) == 7
