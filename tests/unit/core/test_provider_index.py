"""Unit tests for the provider index over pending queries' head atoms."""

from __future__ import annotations

import pytest

from repro.core import ir
from repro.core.compiler import EntangledQueryBuilder, var
from repro.core.matching import Provider, ProviderIndex


def make_query(query_id: str, traveler: str, relation: str = "Reservation"):
    return (
        EntangledQueryBuilder(owner=traveler)
        .head(relation, traveler, var("fno"))
        .domain("fno", "SELECT fno FROM Flights")
        .build(query_id=query_id)
    )


@pytest.fixture
def index() -> ProviderIndex:
    index = ProviderIndex()
    index.add_query(make_query("q1", "Jerry"))
    index.add_query(make_query("q2", "Kramer"))
    index.add_query(make_query("q3", "Elaine", relation="HotelReservation"))
    return index


def atom(relation: str, *terms):
    converted = tuple(
        term if isinstance(term, (ir.Constant, ir.Variable)) else ir.Constant(term)
        for term in terms
    )
    return ir.Atom(relation, converted)


class TestCandidates:
    def test_constant_position_narrows_candidates(self, index):
        candidates = index.candidates(atom("Reservation", "Jerry", ir.Variable("fno")))
        assert candidates == {Provider("q1", 0)}

    def test_variable_position_matches_all(self, index):
        candidates = index.candidates(atom("Reservation", ir.Variable("who"), ir.Variable("fno")))
        assert {provider.query_id for provider in candidates} == {"q1", "q2"}

    def test_relation_name_is_case_insensitive(self, index):
        candidates = index.candidates(atom("reservation", "Kramer", ir.Variable("fno")))
        assert candidates == {Provider("q2", 0)}

    def test_arity_mismatch_yields_nothing(self, index):
        assert index.candidates(atom("Reservation", "Jerry")) == set()

    def test_unknown_relation_yields_nothing(self, index):
        assert index.candidates(atom("SeatBlock", "Jerry", 1, 2)) == set()

    def test_unknown_constant_yields_nothing(self, index):
        assert index.candidates(atom("Reservation", "George", ir.Variable("fno"))) == set()

    def test_naive_mode_ignores_constants(self):
        naive = ProviderIndex(use_constant_index=False)
        naive.add_query(make_query("q1", "Jerry"))
        naive.add_query(make_query("q2", "Kramer"))
        candidates = naive.candidates(atom("Reservation", "Jerry", ir.Variable("fno")))
        assert {provider.query_id for provider in candidates} == {"q1", "q2"}


class TestMaintenance:
    def test_remove_query(self, index):
        index.remove_query(make_query("q1", "Jerry"))
        assert index.candidates(atom("Reservation", "Jerry", ir.Variable("fno"))) == set()
        assert len(index) == 2

    def test_multi_head_queries_register_every_head(self):
        index = ProviderIndex()
        query = (
            EntangledQueryBuilder(owner="Jerry")
            .head("Reservation", "Jerry", var("fno"))
            .head("HotelReservation", "Jerry", var("hid"))
            .domain("fno", "SELECT fno FROM Flights")
            .domain("hid", "SELECT hid FROM Hotels")
            .build(query_id="multi")
        )
        index.add_query(query)
        assert len(index) == 2
        assert index.candidates(atom("HotelReservation", "Jerry", ir.Variable("hid"))) == {
            Provider("multi", 1)
        }
        assert index.atom_of(Provider("multi", 0)).relation == "Reservation"

    def test_constant_heads_still_require_exact_match(self):
        index = ProviderIndex()
        query = EntangledQueryBuilder().head("Ping", "hello", 1).build(query_id="p")
        index.add_query(query)
        assert index.candidates(atom("Ping", "hello", 1)) == {Provider("p", 0)}
        assert index.candidates(atom("Ping", "hello", 2)) == set()
