"""Unit tests for the provider index over pending queries' head atoms."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import ir
from repro.core.compiler import EntangledQueryBuilder, var
from repro.core.matching import Provider, ProviderIndex


def make_query(query_id: str, traveler: str, relation: str = "Reservation"):
    return (
        EntangledQueryBuilder(owner=traveler)
        .head(relation, traveler, var("fno"))
        .domain("fno", "SELECT fno FROM Flights")
        .build(query_id=query_id)
    )


@pytest.fixture
def index() -> ProviderIndex:
    index = ProviderIndex()
    index.add_query(make_query("q1", "Jerry"))
    index.add_query(make_query("q2", "Kramer"))
    index.add_query(make_query("q3", "Elaine", relation="HotelReservation"))
    return index


def atom(relation: str, *terms):
    converted = tuple(
        term if isinstance(term, (ir.Constant, ir.Variable)) else ir.Constant(term)
        for term in terms
    )
    return ir.Atom(relation, converted)


class TestCandidates:
    def test_constant_position_narrows_candidates(self, index):
        candidates = index.candidates(atom("Reservation", "Jerry", ir.Variable("fno")))
        assert candidates == [Provider("q1", 0)]

    def test_variable_position_matches_all(self, index):
        candidates = index.candidates(atom("Reservation", ir.Variable("who"), ir.Variable("fno")))
        assert [provider.query_id for provider in candidates] == ["q1", "q2"]

    def test_relation_name_is_case_insensitive(self, index):
        candidates = index.candidates(atom("reservation", "Kramer", ir.Variable("fno")))
        assert candidates == [Provider("q2", 0)]

    def test_arity_mismatch_yields_nothing(self, index):
        assert index.candidates(atom("Reservation", "Jerry")) == []

    def test_unknown_relation_yields_nothing(self, index):
        assert index.candidates(atom("SeatBlock", "Jerry", 1, 2)) == []

    def test_unknown_constant_yields_nothing(self, index):
        assert index.candidates(atom("Reservation", "George", ir.Variable("fno"))) == []

    def test_naive_mode_ignores_constants(self):
        naive = ProviderIndex(use_constant_index=False)
        naive.add_query(make_query("q1", "Jerry"))
        naive.add_query(make_query("q2", "Kramer"))
        candidates = naive.candidates(atom("Reservation", "Jerry", ir.Variable("fno")))
        assert [provider.query_id for provider in candidates] == ["q1", "q2"]

    def test_candidates_preserve_insertion_order(self):
        """Same pool state → same candidate order, regardless of hash seeds."""
        index = ProviderIndex()
        ids = [f"q{number}" for number in range(12)]
        for query_id in ids:
            index.add_query(make_query(query_id, "Jerry"))
        probe = atom("Reservation", "Jerry", ir.Variable("fno"))
        ordered = [provider.query_id for provider in index.candidates(probe)]
        assert ordered == ids
        # Removal keeps the remaining order; re-adding appends at the end.
        index.remove_query(make_query("q3", "Jerry"))
        index.add_query(make_query("q3", "Jerry"))
        reordered = [provider.query_id for provider in index.candidates(probe)]
        assert reordered == [qid for qid in ids if qid != "q3"] + ["q3"]


class TestMaintenance:
    def test_remove_query(self, index):
        index.remove_query(make_query("q1", "Jerry"))
        assert index.candidates(atom("Reservation", "Jerry", ir.Variable("fno"))) == []
        assert len(index) == 2

    def test_multi_head_queries_register_every_head(self):
        index = ProviderIndex()
        query = (
            EntangledQueryBuilder(owner="Jerry")
            .head("Reservation", "Jerry", var("fno"))
            .head("HotelReservation", "Jerry", var("hid"))
            .domain("fno", "SELECT fno FROM Flights")
            .domain("hid", "SELECT hid FROM Hotels")
            .build(query_id="multi")
        )
        index.add_query(query)
        assert len(index) == 2
        assert index.candidates(atom("HotelReservation", "Jerry", ir.Variable("hid"))) == [
            Provider("multi", 1)
        ]
        assert index.atom_of(Provider("multi", 0)).relation == "Reservation"

    def test_constant_heads_still_require_exact_match(self):
        index = ProviderIndex()
        query = EntangledQueryBuilder().head("Ping", "hello", 1).build(query_id="p")
        index.add_query(query)
        assert index.candidates(atom("Ping", "hello", 1)) == [Provider("p", 0)]
        assert index.candidates(atom("Ping", "hello", 2)) == []


DETERMINISM_SCRIPT = """
from repro.core.config import SystemConfig
from repro.core.system import YoutopiaSystem

system = YoutopiaSystem(config=SystemConfig(seed=0))
system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
system.execute("INSERT INTO Flights VALUES (1, 'Paris'), (2, 'Paris'), (3, 'Paris')")
system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
jerry_sql = (
    "SELECT 'Jerry', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1"
)
kramer_sql = (
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
)
# six interchangeable providers for Kramer's constraint: which one is matched
# depends entirely on candidate order (plus the seeded rng)
for index in range(6):
    system.submit_entangled(jerry_sql, owner=f"jerry-{index}")
trigger = system.submit_entangled(kramer_sql, owner="kramer")
print(sorted(trigger.group_query_ids))
print(sorted(system.answers("Reservation")))
system.close()
"""


class TestDeterministicMatching:
    def test_same_pool_yields_identical_answers_across_hash_seeds(self):
        """Regression: candidate buckets were ``set``s, so the matched partner
        (and chosen flight) varied with ``PYTHONHASHSEED``.  The same pool
        submitted twice — in separate interpreters with different hash seeds —
        must now produce identical answers."""
        src = Path(__file__).resolve().parents[3] / "src"

        def run(hash_seed: str) -> str:
            env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=str(src))
            result = subprocess.run(
                [sys.executable, "-c", DETERMINISM_SCRIPT],
                env=env,
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert result.returncode == 0, result.stderr
            return result.stdout

        first, second = run("1"), run("2")
        assert first == second
        assert "jerry" not in first  # group ids are query ids, sanity only
        assert "Kramer" in first and "Jerry" in first
