"""Unit tests for relation-signature sharding and the match worker pool."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.config import SystemConfig
from repro.core.coordinator import Coordinator, QueryStatus
from repro.core.sharding import (
    MatchWorkerPool,
    QueryShard,
    ShardedCoordinator,
    relation_signature,
    route_signature,
    shard_for_relation,
)
from repro.core.system import YoutopiaSystem
from repro.errors import (
    EntanglementError,
    QueryAlreadyAnsweredError,
    QueryNotPendingError,
)

PAIR_SQL = (
    "SELECT '{user}', fno INTO ANSWER {relation} "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('{partner}', fno) IN ANSWER {relation} CHOOSE 1"
)


def make_system(**config_overrides) -> YoutopiaSystem:
    config = SystemConfig(seed=0, match_workers=2, shard_count=2).replace(**config_overrides)
    system = YoutopiaSystem(config=config)
    system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
    system.execute(
        "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (136, 'Rome')"
    )
    for relation in ("ResA", "ResB", "ResC", "ResD"):
        system.declare_answer_relation(relation, ["traveler", "fno"], ["TEXT", "INTEGER"])
    return system


def pair_sql(user: str, partner: str, relation: str) -> str:
    return PAIR_SQL.format(user=user, partner=partner, relation=relation)


class TestRouting:
    def test_shard_for_relation_stable_and_case_insensitive(self):
        assert shard_for_relation("Reservation", 4) == shard_for_relation("reservation", 4)
        assert shard_for_relation("Reservation", 4) == shard_for_relation("Reservation", 4)
        assert 0 <= shard_for_relation("Reservation", 4) < 4

    def test_route_signature_single_vs_cross_shard(self):
        # find two relations that land on different shards so the union is split
        base = shard_for_relation("R0", 8)
        other = next(
            name
            for name in (f"R{i}" for i in range(1, 64))
            if shard_for_relation(name, 8) != base
        )
        assert route_signature(frozenset(["r0"]), 8) == base
        assert route_signature(frozenset(["r0", other.lower()]), 8) is None
        assert route_signature(frozenset(), 8) == 0

    def test_relation_signature_covers_heads_and_constraints(self, tmp_path):
        system = make_system()
        try:
            query = system.compile(
                "SELECT 'a', fno INTO ANSWER ResA "
                "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
                "AND ('b', fno) IN ANSWER ResB CHOOSE 1"
            )
            assert relation_signature(query) == frozenset({"resa", "resb"})
        finally:
            system.close()

    def test_everything_single_sharded_when_one_shard(self):
        assert route_signature(frozenset({"resa", "resb", "resc"}), 1) == 0


class TestMatchWorkerPool:
    def test_events_processed_per_shard_in_order(self):
        shards = [QueryShard(0), QueryShard(1)]
        processed: list[tuple[int, str]] = []
        lock = threading.Lock()

        def process(shard, batch):
            with lock:
                processed.extend((shard.shard_id, qid) for qid in batch)

        pool = MatchWorkerPool(shards, process, num_workers=2)
        try:
            for index in range(10):
                pool.enqueue(shards[index % 2], f"q{index}")
            assert pool.drain(timeout=5.0)
        finally:
            pool.shutdown()
        for shard_id in (0, 1):
            ids = [qid for sid, qid in processed if sid == shard_id]
            assert ids == sorted(ids, key=lambda q: int(q[1:]))
        assert not pool.errors

    def test_worker_errors_are_captured_not_fatal(self):
        shard = QueryShard(0)
        calls: list[str] = []

        def process(_shard, batch):
            calls.extend(batch)
            if "boom" in batch:
                raise RuntimeError("boom")

        pool = MatchWorkerPool([shard], process, num_workers=1)
        try:
            pool.enqueue(shard, "boom")
            assert pool.drain(timeout=5.0)
            pool.enqueue(shard, "fine")
            assert pool.drain(timeout=5.0)
        finally:
            pool.shutdown()
        assert "fine" in calls
        assert len(pool.errors) == 1

    def test_shutdown_is_idempotent_and_stops_workers(self):
        shard = QueryShard(0)
        pool = MatchWorkerPool([shard], lambda s, b: None, num_workers=2)
        pool.shutdown()
        pool.shutdown()
        assert not pool.running
        time.sleep(0.01)
        assert all(not thread.is_alive() for thread in pool._threads)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            MatchWorkerPool([QueryShard(0)], lambda s, b: None, num_workers=0)


class TestShardedCoordinator:
    def test_system_picks_sharded_coordinator(self):
        system = make_system()
        try:
            assert isinstance(system.coordinator, ShardedCoordinator)
            assert system.coordinator.worker_pool.worker_count == 2
        finally:
            system.close()

    def test_inline_system_keeps_plain_coordinator(self):
        system = YoutopiaSystem(seed=0)
        assert type(system.coordinator) is Coordinator
        assert system.drain(0.1) is True
        stats = system.coordinator.shard_stats()
        assert len(stats) == 1 and stats[0]["shard"] == 0
        system.close()

    def test_submit_is_async_and_wait_observes_answer(self):
        system = make_system()
        try:
            left = system.submit_entangled(pair_sql("a", "b", "ResA"), owner="a")
            assert left.status is QueryStatus.PENDING
            right = system.submit_entangled(pair_sql("b", "a", "ResA"), owner="b")
            answer = system.wait(left.query_id, timeout=5.0)
            assert answer.tuples["ResA"][0][0] == "a"
            assert system.drain(5.0)
            assert right.status is QueryStatus.ANSWERED
        finally:
            system.close()

    def test_cross_shard_query_matches_via_global_pass(self):
        # force distinct shards for the two relations by picking names that
        # hash apart under the configured shard count
        system = make_system(shard_count=2)
        try:
            relations = ["ResA", "ResB", "ResC", "ResD"]
            by_shard: dict[int, str] = {}
            for relation in relations:
                by_shard.setdefault(shard_for_relation(relation, 2), relation)
            assert len(by_shard) == 2, "expected the four names to span both shards"
            rel_one, rel_two = by_shard[0], by_shard[1]
            bridge = system.submit_entangled(
                f"SELECT 'a', fno INTO ANSWER {rel_one} "
                "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
                f"AND ('b', fno) IN ANSWER {rel_two} CHOOSE 1",
                owner="a",
            )
            # the bridge query lives in the global residence
            coordinator = system.coordinator
            assert coordinator.shard_of(bridge.query) is coordinator._global_shard
            partner = system.submit_entangled(
                f"SELECT 'b', fno INTO ANSWER {rel_two} "
                "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
                f"AND ('a', fno) IN ANSWER {rel_one} CHOOSE 1",
                owner="b",
            )
            system.wait_many([bridge.query_id, partner.query_id], timeout=5.0)
            assert system.statistics()["cross_shard_passes"] >= 1
            assert len(system.answers(rel_one)) == 1
            assert len(system.answers(rel_two)) == 1
        finally:
            system.close()

    def test_cancel_pending_and_typed_error_after_answer(self):
        system = make_system()
        try:
            lonely = system.submit_entangled(pair_sql("x", "ghost", "ResB"), owner="x")
            assert system.drain(5.0)
            system.cancel(lonely.query_id)
            assert lonely.status is QueryStatus.CANCELLED
            with pytest.raises(QueryNotPendingError):
                system.cancel(lonely.query_id)

            left = system.submit_entangled(pair_sql("a", "b", "ResA"), owner="a")
            system.submit_entangled(pair_sql("b", "a", "ResA"), owner="b")
            system.wait(left.query_id, timeout=5.0)
            with pytest.raises(QueryAlreadyAnsweredError):
                system.cancel(left.query_id)
            assert left.status is QueryStatus.ANSWERED
        finally:
            system.close()

    def test_duplicate_submission_raises(self):
        system = make_system()
        try:
            query = system.compile(pair_sql("a", "ghost", "ResA"), owner="a")
            system.submit_entangled(query)
            with pytest.raises(EntanglementError):
                system.submit_entangled(query)
        finally:
            system.close()

    def test_submit_many_per_item_rejections(self):
        system = make_system()
        try:
            good = pair_sql("a", "b", "ResA")
            partner = pair_sql("b", "a", "ResA")
            unsafe = (
                "SELECT 'K', fno INTO ANSWER ResA WHERE ('J', fno) IN ANSWER ResA"
            )
            requests = system.submit_many([good, unsafe, partner])
            assert system.drain(5.0)
            assert requests[1].status is QueryStatus.REJECTED
            system.wait_many(
                [requests[0].query_id, requests[2].query_id], timeout=5.0
            )
        finally:
            system.close()

    def test_retry_pending_after_data_change(self):
        system = make_system(shard_count=4, match_workers=2)
        try:
            left = system.submit_entangled(pair_sql("a", "b", "ResC"), owner="a")
            right = system.submit_entangled(pair_sql("b", "a", "ResC"), owner="b")
            assert system.drain(5.0)
            # no Paris flights left for this pair? they matched already—use a
            # genuinely unmatchable pair instead: partner constraints over Rome
            assert left.status is QueryStatus.ANSWERED
            assert right.status is QueryStatus.ANSWERED

            stuck = system.submit_entangled(
                "SELECT 'c', fno INTO ANSWER ResD "
                "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Sydney') "
                "AND ('d', fno) IN ANSWER ResD CHOOSE 1",
                owner="c",
            )
            partner = system.submit_entangled(
                "SELECT 'd', fno INTO ANSWER ResD "
                "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Sydney') "
                "AND ('c', fno) IN ANSWER ResD CHOOSE 1",
                owner="d",
            )
            assert system.drain(5.0)
            assert stuck.status is QueryStatus.PENDING
            system.execute("INSERT INTO Flights VALUES (999, 'Sydney')")
            answered = system.retry_pending()
            assert answered == 2
            assert stuck.status is QueryStatus.ANSWERED
            assert partner.status is QueryStatus.ANSWERED
        finally:
            system.close()

    def test_dirty_shards_swept_on_next_event(self):
        system = make_system(auto_retry_on_data_change=True)
        try:
            stuck = system.submit_entangled(
                "SELECT 'c', fno INTO ANSWER ResD "
                "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Sydney') "
                "AND ('d', fno) IN ANSWER ResD CHOOSE 1",
                owner="c",
            )
            partner = system.submit_entangled(
                "SELECT 'd', fno INTO ANSWER ResD "
                "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Sydney') "
                "AND ('c', fno) IN ANSWER ResD CHOOSE 1",
                owner="d",
            )
            assert system.drain(5.0)
            assert stuck.status is QueryStatus.PENDING
            system.execute("INSERT INTO Flights VALUES (999, 'Sydney')")
            # the next arrival anywhere sweeps its shard; submit into ResD's pool
            system.submit_entangled(pair_sql("x", "ghost", "ResD"), owner="x")
            assert system.drain(5.0)
            assert stuck.status is QueryStatus.ANSWERED
            assert partner.status is QueryStatus.ANSWERED
            assert system.statistics()["retry_sweeps"] >= 1
        finally:
            system.close()

    def test_idle_sweep_backstop_revives_trafficless_shard(self):
        """A data change must retry a shard even if no arrival ever hits it."""
        system = make_system(
            auto_retry_on_data_change=True, idle_sweep_interval=0.05, shard_count=4
        )
        try:
            stuck = system.submit_entangled(
                "SELECT 'c', fno INTO ANSWER ResD "
                "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Sydney') "
                "AND ('d', fno) IN ANSWER ResD CHOOSE 1",
                owner="c",
            )
            system.submit_entangled(
                "SELECT 'd', fno INTO ANSWER ResD "
                "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Sydney') "
                "AND ('c', fno) IN ANSWER ResD CHOOSE 1",
                owner="d",
            )
            assert system.drain(5.0)
            assert stuck.status is QueryStatus.PENDING
            # the flight appears; NO further submission or retry call happens
            system.execute("INSERT INTO Flights VALUES (999, 'Sydney')")
            system.wait(stuck.query_id, timeout=5.0)
            assert stuck.status is QueryStatus.ANSWERED
        finally:
            system.close()

    def test_done_callbacks_may_reenter_the_coordinator(self):
        """Callbacks fire after the worker released every lock, so they can
        submit/cancel/inspect without deadlocking (regression for the
        lock-order inversion found in review)."""
        system = make_system(shard_count=4)
        try:
            observed: dict[str, object] = {}
            done = threading.Event()

            left = system.submit_entangled(pair_sql("a", "b", "ResA"), owner="a")

            def callback(request):
                # re-enter from the completing worker thread: read aggregate
                # state (takes every shard lock) and submit a follow-up
                observed["pending"] = system.coordinator.pending_count()
                observed["follow_up"] = system.submit_entangled(
                    pair_sql("z", "ghost-z", "ResB"), owner="z"
                )
                try:
                    system.cancel(request.query_id)
                except QueryAlreadyAnsweredError:
                    observed["cancel"] = "typed"
                done.set()

            system.coordinator.add_done_callback(left.query_id, callback)
            system.submit_entangled(pair_sql("b", "a", "ResA"), owner="b")
            assert done.wait(timeout=5.0), "callback deadlocked or never fired"
            assert system.drain(5.0)
            assert observed["cancel"] == "typed"
            assert observed["follow_up"].status is QueryStatus.PENDING
            assert not system.coordinator.worker_pool.errors
        finally:
            system.close()

    def test_poisoned_event_does_not_abandon_batch(self):
        """One failing attempt must not swallow the rest of a shard batch."""
        system = make_system(shard_count=1, match_workers=1)
        try:
            coordinator = system.coordinator
            original = coordinator._attempt_for
            poisoned: set[str] = set()

            def flaky(shard, query_id):
                if query_id in poisoned:
                    poisoned.discard(query_id)
                    raise RuntimeError("poisoned event")
                return original(shard, query_id)

            coordinator._attempt_for = flaky
            bad = system.compile(pair_sql("bad", "ghost-bad", "ResA"))
            poisoned.add(bad.query_id)
            left = system.compile(pair_sql("a", "b", "ResA"))
            right = system.compile(pair_sql("b", "a", "ResA"))
            # one batch: the poisoned event first, the matchable pair after
            system.submit_many([bad, left, right])
            assert system.drain(5.0)
            assert len(coordinator.worker_pool.errors) == 1
            # the pair behind the poisoned event still coordinated
            assert coordinator.request(left.query_id).status is QueryStatus.ANSWERED
            assert coordinator.request(right.query_id).status is QueryStatus.ANSWERED
        finally:
            system.close()

    def test_shard_stats_and_service_stats_shape(self):
        system = make_system(shard_count=3)
        try:
            system.submit_entangled(pair_sql("a", "ghost", "ResA"), owner="a")
            assert system.drain(5.0)
            stats = system.shard_stats()
            assert len(stats) == 4  # 3 shards + the global residence
            assert stats[-1]["cross_shard"] == 1
            assert sum(entry["pending"] for entry in stats) == 1
            service_stats = system.service().stats()
            assert len(service_stats.shards) == 4
            assert service_stats.pending == 1
            assert service_stats["match_events"] >= 1
        finally:
            system.close()

    def test_close_is_idempotent_and_stops_workers(self):
        system = make_system()
        coordinator = system.coordinator
        system.close()
        system.close()
        assert not coordinator.worker_pool.running

    def test_config_round_trip(self):
        config = SystemConfig(match_workers=4)
        assert config.resolved_shard_count == 4
        assert config.replace(shard_count=16).resolved_shard_count == 16
        assert SystemConfig().resolved_shard_count == 1
        as_dict = config.as_dict()
        assert as_dict["match_workers"] == 4
        assert as_dict["shard_count"] == 4
