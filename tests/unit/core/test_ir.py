"""Unit tests for the entangled-query intermediate representation."""

from __future__ import annotations

import pytest

from repro.core import ir
from repro.core.compiler import EntangledQueryBuilder, var


@pytest.fixture
def kramer() -> ir.EntangledQuery:
    return (
        EntangledQueryBuilder(owner="Kramer")
        .head("Reservation", "Kramer", var("fno"))
        .domain("fno", "SELECT fno FROM Flights WHERE dest = 'Paris'")
        .require("Reservation", "Jerry", var("fno"))
        .predicate("fno > 100")
        .build(query_id="kramer-1")
    )


class TestTermsAndAtoms:
    def test_constant_and_variable(self):
        constant = ir.Constant("Paris")
        variable = ir.Variable("fno")
        assert ir.is_ground(constant)
        assert not ir.is_ground(variable)
        assert str(variable) == "fno"

    def test_atom_introspection(self):
        atom = ir.Atom("Reservation", (ir.Constant("Kramer"), ir.Variable("fno")))
        assert atom.arity == 2
        assert [v.name for v in atom.variables()] == ["fno"]
        assert atom.constants() == ((0, "Kramer"),)
        assert str(atom) == "Reservation('Kramer', fno)"

    def test_atom_substitute(self):
        atom = ir.Atom("R", (ir.Constant("K"), ir.Variable("fno")))
        assert atom.substitute({"fno": 122}) == ("K", 122)
        with pytest.raises(KeyError):
            atom.substitute({})


class TestEntangledQuery:
    def test_variable_sets(self, kramer):
        assert kramer.variables() == {"fno"}
        assert kramer.head_variables() == {"fno"}
        assert kramer.answer_variables() == {"fno"}
        assert kramer.domain_variables() == {"fno"}

    def test_answer_relations(self, kramer):
        assert kramer.answer_relations() == {"Reservation"}

    def test_self_contained(self, kramer):
        assert not kramer.is_self_contained()
        solo = (
            EntangledQueryBuilder()
            .head("Reservation", "X", var("fno"))
            .domain("fno", "SELECT fno FROM Flights")
            .build()
        )
        assert solo.is_self_contained()

    def test_heads_for_relation_is_case_insensitive(self, kramer):
        matches = list(kramer.heads_for_relation("reservation"))
        assert len(matches) == 1 and matches[0][0] == 0

    def test_describe_mentions_all_parts(self, kramer):
        text = kramer.describe()
        assert "Reservation('Kramer', fno)" in text
        assert "IN (" in text
        assert "CHOOSE 1" in text

    def test_query_ids_are_unique(self):
        first = ir.next_query_id()
        second = ir.next_query_id()
        assert first != second


class TestGroundAnswer:
    def test_all_tuples_sorted_by_relation(self):
        answer = ir.GroundAnswer(
            query_id="q",
            binding={"fno": 122},
            tuples={"Reservation": (("K", 122),), "HotelReservation": (("K", 7),)},
        )
        pairs = answer.all_tuples()
        assert pairs == [("HotelReservation", ("K", 7)), ("Reservation", ("K", 122))]
