"""Unit tests for the joint executor (atomic answer insertion + side effects)."""

from __future__ import annotations

import random

import pytest

from repro.core.answer import AnswerRelationRegistry
from repro.core.compiler import EntangledQueryBuilder, var
from repro.core.executor import JointExecutor
from repro.core.matching import Matcher, ProviderIndex
from repro.core.transactions import TransactionManager
from repro.errors import ExecutionError
from repro.relalg.engine import QueryEngine, run_script
from repro.storage.database import Database


@pytest.fixture
def engine() -> QueryEngine:
    engine = QueryEngine(Database())
    run_script(
        engine,
        """
        CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT, seats INT);
        INSERT INTO Flights VALUES (122, 'Paris', 10), (123, 'Paris', 10);
        """,
    )
    return engine


@pytest.fixture
def registry(engine) -> AnswerRelationRegistry:
    registry = AnswerRelationRegistry(engine.database)
    registry.declare("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return registry


@pytest.fixture
def executor(engine, registry) -> JointExecutor:
    return JointExecutor(engine, registry, TransactionManager(engine.database))


def matched_pair(engine):
    def query(owner, partner):
        return (
            EntangledQueryBuilder(owner=owner)
            .head("Reservation", owner, var("fno"))
            .domain("fno", "SELECT fno FROM Flights WHERE dest = 'Paris'")
            .require("Reservation", partner, var("fno"))
            .build(query_id=owner)
        )

    kramer, jerry = query("Kramer", "Jerry"), query("Jerry", "Kramer")
    pool = {"Kramer": kramer, "Jerry": jerry}
    index = ProviderIndex()
    for item in pool.values():
        index.add_query(item)
    group = Matcher(engine, rng=random.Random(0)).find_group(jerry, pool, index)
    assert group is not None
    return group


class TestExecution:
    def test_answers_become_visible_in_answer_relation(self, engine, registry, executor):
        group = matched_pair(engine)
        outcome = executor.execute(group)
        assert set(outcome.query_ids) == {"Kramer", "Jerry"}
        tuples = registry.tuples("Reservation")
        assert len(tuples) == 2
        assert {traveler for traveler, _ in tuples} == {"Kramer", "Jerry"}
        assert outcome.inserted["Reservation"] == tuples

    def test_side_effect_hooks_run_in_same_transaction(self, engine, registry, executor):
        def decrement(_relation, values, hook_engine):
            hook_engine.execute(f"UPDATE Flights SET seats = seats - 1 WHERE fno = {values[1]}")

        executor.register_hook(decrement, relation="Reservation")
        group = matched_pair(engine)
        executor.execute(group)
        booked_fno = registry.tuples("Reservation")[0][1]
        seats = engine.query(f"SELECT seats FROM Flights WHERE fno = {booked_fno}").scalar()
        assert seats == 8  # two travellers on the same flight

    def test_global_hooks_see_every_relation(self, engine, registry, executor):
        seen = []
        executor.register_hook(lambda relation, values, _engine: seen.append((relation, values)))
        executor.execute(matched_pair(engine))
        assert len(seen) == 2
        assert all(relation == "Reservation" for relation, _values in seen)

    def test_failing_hook_rolls_back_everything(self, engine, registry, executor):
        calls = []

        def explode(_relation, values, _engine):
            calls.append(values)
            if len(calls) == 2:
                raise RuntimeError("inventory system offline")

        executor.register_hook(explode, relation="Reservation")
        with pytest.raises(ExecutionError):
            executor.execute(matched_pair(engine))
        # the first traveller's tuple must not survive the partial failure
        assert registry.tuples("Reservation") == []

    def test_auto_declares_unknown_answer_relation(self, engine, executor):
        query = (
            EntangledQueryBuilder(owner="Newman")
            .head("MysteryRelation", "Newman", var("fno"))
            .domain("fno", "SELECT fno FROM Flights")
            .build(query_id="newman")
        )
        pool = {"newman": query}
        index = ProviderIndex()
        index.add_query(query)
        group = Matcher(engine, rng=random.Random(0)).find_group(query, pool, index)
        outcome = executor.execute(group)
        assert "MysteryRelation" in outcome.inserted
        assert engine.database.has_table("MysteryRelation")
