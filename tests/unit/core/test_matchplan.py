"""Unit tests for compiled match plans and the grid provider index.

The load-bearing invariants:

* ``GridProviderIndex.candidates`` returns *exactly* the same list — members
  and order — as the legacy single-key ``ProviderIndex``, on random query
  corpora, so matcher exploration (and hence RNG consumption) is identical
  under either index;
* compiled pair programs agree with interpreted unification;
* the plan cache memoizes, evicts, recompiles on object identity change, and
  counts what it did;
* the ``SystemConfig`` knobs reject unknown values at construction time.
"""

from __future__ import annotations

import copy
import random

import pytest

from repro.core import ir
from repro.core.compiler import compile_entangled
from repro.core.config import SystemConfig
from repro.core.matching import (
    GridProviderIndex,
    MatchPlanCache,
    ProviderIndex,
    Unifier,
    build_provider_index,
)
from repro.core.matchplan import apply_pair, compile_pair
from repro.core.system import YoutopiaSystem
from repro.errors import EntanglementError

RELATIONS = ("ResA", "ResB", "ResC")


def entangled_sql(
    user: str, partner: str, head_rel: str = "ResA", need_rel: str = "ResA"
) -> str:
    return (
        f"SELECT '{user}', fno INTO ANSWER {head_rel} "
        f"WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        f"AND ('{partner}', fno) IN ANSWER {need_rel} CHOOSE 1"
    )


def random_queries(seed: int, count: int) -> list:
    rng = random.Random(seed)
    queries = []
    for i in range(count):
        head_rel = rng.choice(RELATIONS)
        need_rel = rng.choice(RELATIONS)
        queries.append(
            compile_entangled(entangled_sql(f"u{i}", f"p{rng.randrange(count)}", head_rel, need_rel))
        )
    return queries


# ---------------------------------------------------------------------------
# Grid index vs. single-key index: identical candidate lists
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("use_constant_index", [True, False])
def test_grid_candidates_match_single_key_exactly(seed, use_constant_index):
    queries = random_queries(seed, 40)
    single = ProviderIndex(use_constant_index=use_constant_index)
    grid = GridProviderIndex(use_constant_index=use_constant_index)
    for query in queries:
        single.add_query(query)
        grid.add_query(query)
    assert len(grid) == len(single)

    cache = MatchPlanCache()
    for query in queries:
        plan = cache.plan_for(query)
        for atom_index, atom in enumerate(query.answer_atoms):
            expected = single.candidates(atom)
            # members AND order must agree, across all four lookup paths
            assert grid.candidates(atom) == expected
            probe = plan.answer_atoms[atom_index]
            assert grid.candidates_compiled(probe) == expected
            assert single.candidates_compiled(probe) == expected

    # removal keeps the two indexes aligned
    rng = random.Random(seed + 1000)
    for query in rng.sample(queries, 15):
        single.remove_query(query)
        grid.remove_query(query)
    for query in queries:
        for atom in query.answer_atoms:
            assert grid.candidates(atom) == single.candidates(atom)


def test_grid_candidates_preserve_insertion_order_within_bucket():
    grid = GridProviderIndex()
    queries = [compile_entangled(entangled_sql(f"u{i}", "shared")) for i in range(10)]
    for query in queries:
        grid.add_query(query)
    expected = [q.query_id for q in queries]

    # an unconstrained probe (both positions variable) walks the full bucket
    # in arrival order
    open_probe = ir.Atom("ResA", (ir.Variable("t"), ir.Variable("f")))
    assert [p.query_id for p in grid.candidates(open_probe)] == expected

    # a probe bound on one column filters but never reorders the survivors
    bound_probe = ir.Atom("ResA", (ir.Constant("u3"), ir.Variable("f")))
    assert [p.query_id for p in grid.candidates(bound_probe)] == [
        queries[3].query_id
    ]

    # no head binds traveler='shared': the bound column empties the result
    ghost_probe = ir.Atom("ResA", (ir.Constant("shared"), ir.Variable("f")))
    assert grid.candidates(ghost_probe) == []


def test_build_provider_index_rejects_unknown_kind():
    assert isinstance(build_provider_index("grid"), GridProviderIndex)
    assert isinstance(build_provider_index("single_key"), ProviderIndex)
    with pytest.raises(EntanglementError):
        build_provider_index("btree")


# ---------------------------------------------------------------------------
# Pair programs: compiled unification vs. interpreted
# ---------------------------------------------------------------------------


def test_pair_ops_compatible_pair_unifies_like_interpreter():
    cache = MatchPlanCache()
    left = compile_entangled(entangled_sql("jerry", "kramer"))
    right = compile_entangled(entangled_sql("kramer", "jerry"))
    probe = cache.plan_for(left).answer_atoms[0]  # ('kramer', fno) IN ResA
    provider = cache.plan_for(right).heads[0]  # head ('kramer', fno)

    ops = cache.pair_ops(probe, provider)
    assert ops.compatible
    unifier = Unifier()
    assert apply_pair(unifier, ops)
    # the probe's fno and the provider's fno now share a class
    assert unifier.find((left.query_id, "fno")) == unifier.find(
        (right.query_id, "fno")
    )


def test_pair_ops_constant_mismatch_is_incompatible():
    cache = MatchPlanCache()
    left = compile_entangled(entangled_sql("jerry", "kramer"))
    stranger = compile_entangled(entangled_sql("newman", "elaine"))
    probe = cache.plan_for(left).answer_atoms[0]  # needs traveler='kramer'
    provider = cache.plan_for(stranger).heads[0]  # offers traveler='newman'
    ops = cache.pair_ops(probe, provider)
    assert not ops.compatible
    assert not apply_pair(Unifier(), ops)


def test_pair_ops_relation_mismatch_is_incompatible():
    left = compile_entangled(entangled_sql("a", "b", "ResA", "ResA"))
    right = compile_entangled(entangled_sql("b", "a", "ResB", "ResB"))
    cache = MatchPlanCache()
    probe = cache.plan_for(left).answer_atoms[0]
    provider = cache.plan_for(right).heads[0]
    assert not compile_pair(probe, provider).compatible


def test_pair_ops_are_memoized_per_probe_and_provider():
    cache = MatchPlanCache()
    left = compile_entangled(entangled_sql("jerry", "kramer"))
    right = compile_entangled(entangled_sql("kramer", "jerry"))
    probe = cache.plan_for(left).answer_atoms[0]
    provider = cache.plan_for(right).heads[0]

    first = cache.pair_ops(probe, provider)
    second = cache.pair_ops(probe, provider)
    assert first is second
    stats = cache.statistics()
    assert stats["pair_ops_compiled"] == 1
    assert stats["pair_ops_hits"] == 1


# ---------------------------------------------------------------------------
# Plan cache lifecycle
# ---------------------------------------------------------------------------


def test_plan_cache_hits_evicts_and_counts():
    cache = MatchPlanCache()
    query = compile_entangled(entangled_sql("jerry", "kramer"))
    plan = cache.plan_for(query)
    assert cache.plan_for(query) is plan
    assert len(cache) == 1

    cache.evict(query.query_id)
    assert len(cache) == 0
    cache.evict(query.query_id)  # idempotent

    stats = cache.statistics()
    assert stats["plans_compiled"] == 1
    assert stats["plan_cache_hits"] == 1
    assert stats["plans_evicted"] == 1


def test_plan_cache_recompiles_when_query_object_changes():
    """WAL recovery rebuilds IR objects: same id, new object → new plan."""
    cache = MatchPlanCache()
    query = compile_entangled(entangled_sql("jerry", "kramer"))
    plan = cache.plan_for(query)
    replayed = copy.deepcopy(query)
    assert replayed.query_id == query.query_id
    recompiled = cache.plan_for(replayed)
    assert recompiled is not plan
    assert recompiled.query is replayed
    assert cache.statistics()["plans_compiled"] == 2


def test_plan_cache_invalidate_all():
    cache = MatchPlanCache()
    for query in random_queries(3, 5):
        cache.plan_for(query)
    assert len(cache) == 5
    cache.invalidate_all()
    assert len(cache) == 0
    assert cache.statistics()["plan_invalidations"] == 1


def test_compiled_atom_uids_are_unique_across_plans():
    cache = MatchPlanCache()
    uids = set()
    for query in random_queries(4, 10):
        plan = cache.plan_for(query)
        for atom in (*plan.heads, *plan.answer_atoms):
            assert atom.uid not in uids
            uids.add(atom.uid)


# ---------------------------------------------------------------------------
# SystemConfig knobs
# ---------------------------------------------------------------------------


def test_unknown_match_plan_mode_is_rejected():
    with pytest.raises(EntanglementError):
        YoutopiaSystem(config=SystemConfig(match_plan="jit"))


def test_unknown_provider_index_kind_is_rejected():
    with pytest.raises(EntanglementError):
        YoutopiaSystem(config=SystemConfig(provider_index="hash"))


def test_config_knobs_surface_in_matching_statistics():
    system = YoutopiaSystem(
        config=SystemConfig(match_plan="interpreted", provider_index="single_key")
    )
    try:
        stats = system.coordinator.matching_statistics()
        assert stats["match_plan"] == "interpreted"
        assert stats["provider_index"] == "single_key"
        assert "plans_compiled" not in stats  # no cache on the interpreted path
    finally:
        system.close()


def test_default_config_compiles_plans_end_to_end():
    system = YoutopiaSystem(config=SystemConfig(seed=0))
    try:
        system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
        system.execute("INSERT INTO Flights VALUES (1, 'Paris'), (2, 'Paris')")
        system.declare_answer_relation("ResA", ["traveler", "fno"], ["TEXT", "INTEGER"])
        first = system.submit_entangled(entangled_sql("jerry", "kramer"))
        second = system.submit_entangled(entangled_sql("kramer", "jerry"))
        assert first.answer is not None and second.answer is not None
        stats = system.coordinator.matching_statistics()
        assert stats["match_plan"] == "compiled"
        assert stats["plans_compiled"] == 2
        # both answered queries left the pool, so their plans were evicted
        assert stats["plans_cached"] == 0
        assert stats["plans_evicted"] == 2
    finally:
        system.close()
