"""Edge-case tests: search budgets, caps and defensive paths.

These exercise the guard rails that keep the coordination component well
behaved on adversarial inputs: the matcher's structural search budget, the
baseline evaluator's valuation cap, and the SQLite mirror's identifier
validation.
"""

from __future__ import annotations

import random

import pytest

from repro.core.baseline import ExhaustiveEvaluator
from repro.core.compiler import EntangledQueryBuilder, var
from repro.core.matching import Matcher, ProviderIndex
from repro.errors import StorageError
from repro.relalg.engine import QueryEngine, run_script
from repro.storage.database import Database
from repro.storage.sqlite_backend import SQLiteMirror


@pytest.fixture
def engine() -> QueryEngine:
    engine = QueryEngine(Database())
    run_script(
        engine,
        """
        CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT);
        INSERT INTO Flights VALUES (1, 'Paris'), (2, 'Paris'), (3, 'Paris'), (4, 'Paris');
        """,
    )
    return engine


def clique_queries(size: int):
    """A fully connected coordination group of ``size`` members."""
    members = [f"user{i}" for i in range(size)]
    queries = []
    for member in members:
        builder = (
            EntangledQueryBuilder(owner=member)
            .head("Reservation", member, var("fno"))
            .domain("fno", "SELECT fno FROM Flights WHERE dest = 'Paris'")
        )
        for other in members:
            if other != member:
                builder.require("Reservation", other, var("fno"))
        queries.append(builder.build(query_id=member))
    return queries


class TestMatcherBudgets:
    def test_structural_node_budget_aborts_search(self, engine):
        queries = clique_queries(6)
        pool = {query.query_id: query for query in queries}
        index = ProviderIndex()
        for query in pool.values():
            index.add_query(query)
        strict = Matcher(engine, rng=random.Random(0), max_structural_nodes=3)
        assert strict.find_group(queries[0], pool, index) is None
        relaxed = Matcher(engine, rng=random.Random(0))
        assert relaxed.find_group(queries[0], pool, index) is not None

    def test_domain_subqueries_are_cached_within_one_match(self, engine):
        queries = clique_queries(4)
        pool = {query.query_id: query for query in queries}
        index = ProviderIndex()
        for query in pool.values():
            index.add_query(query)
        group = Matcher(engine, rng=random.Random(0)).find_group(queries[0], pool, index)
        assert group is not None
        # all four queries share the same domain subquery text: one evaluation
        assert group.statistics.domain_queries == 1


class TestBaselineCaps:
    def test_valuation_cap_limits_enumeration(self, engine):
        # One self-contained query over 4 flights, capped to 2 candidate valuations.
        query = (
            EntangledQueryBuilder(owner="solo")
            .head("Reservation", "solo", var("fno"))
            .domain("fno", "SELECT fno FROM Flights")
            .build(query_id="solo")
        )
        capped = ExhaustiveEvaluator(engine, max_valuations_per_query=2)
        group = capped.find_group(query, {"solo": query})
        assert group is not None
        chosen = group.bindings["solo"][0]["fno"]
        assert chosen in (1, 2)  # the cap keeps only the first two candidates


class TestSQLiteMirrorValidation:
    def test_identifier_with_embedded_quote_rejected(self, tmp_path):
        database = Database()
        database.create_table(name='Weird"Name', columns=[("a", "INT")])
        mirror = SQLiteMirror(database, tmp_path / "m.db")
        with pytest.raises(StorageError):
            mirror.attach()
        mirror.close()


class TestScalarFunctionExtras:
    def test_min2_max2_helpers(self):
        from repro.relalg.expressions import ExpressionEvaluator
        from repro.relalg.rows import RowEnv
        from repro.sqlparser import parse_statement

        evaluator = ExpressionEvaluator()
        expression = parse_statement("SELECT MIN2(3, 5), MAX2(3, 5)")
        low = evaluator.evaluate(expression.items[0].expression, RowEnv({}))
        high = evaluator.evaluate(expression.items[1].expression, RowEnv({}))
        assert (low, high) == (3, 5)
