"""Unit tests for the system facade and per-user sessions."""

from __future__ import annotations

import pytest

from repro.core.coordinator import QueryStatus
from repro.core.system import YoutopiaSystem
from repro.errors import PlanError
from repro.relalg.engine import QueryResult

SETUP = """
CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT);
INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (136, 'Rome');
"""

KRAMER_SQL = (
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
)
JERRY_SQL = (
    "SELECT 'Jerry', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1"
)


@pytest.fixture
def system() -> YoutopiaSystem:
    system = YoutopiaSystem(seed=0)
    system.execute_script(SETUP)
    system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return system


class TestStatementRouting:
    def test_plain_sql_returns_query_result(self, system):
        result = system.execute("SELECT COUNT(*) FROM Flights")
        assert isinstance(result, QueryResult) and result.scalar() == 3

    def test_entangled_sql_returns_coordination_request(self, system):
        request = system.execute(KRAMER_SQL, owner="Kramer")
        assert request.status is QueryStatus.PENDING

    def test_execute_script_mixes_both(self, system):
        results = system.execute_script(f"{KRAMER_SQL}; {JERRY_SQL};", owner="someone")
        assert len(results) == 2
        assert all(result.is_answered for result in results)

    def test_query_rejects_entangled(self, system):
        with pytest.raises(PlanError):
            system.query(KRAMER_SQL)

    def test_compile_does_not_register(self, system):
        query = system.compile(KRAMER_SQL, owner="Kramer")
        assert query.owner == "Kramer"
        assert system.coordinator.pending_count() == 0


class TestPersistence:
    def test_persist_to_sqlite(self, tmp_path):
        path = tmp_path / "youtopia.db"
        with YoutopiaSystem(seed=0, persist_to=path) as system:
            system.execute_script(SETUP)
            system.declare_answer_relation(
                "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
            )
            system.execute(KRAMER_SQL, owner="Kramer")
            system.execute(JERRY_SQL, owner="Jerry")
        import sqlite3

        connection = sqlite3.connect(str(path))
        reservations = connection.execute("SELECT COUNT(*) FROM Reservation").fetchone()[0]
        assert reservations == 2
        pending = connection.execute(
            "SELECT COUNT(*) FROM _pending_queries WHERE status = 'answered'"
        ).fetchone()[0]
        assert pending == 2


class TestSessions:
    def test_sessions_tag_ownership(self, system):
        kramer = system.session("Kramer")
        jerry = system.session("Jerry")
        first = kramer.submit(KRAMER_SQL)
        assert first.owner == "Kramer"
        assert kramer.my_pending() == [first]
        second = jerry.submit(JERRY_SQL)
        assert second.owner == "Jerry"
        assert kramer.my_pending() == []
        assert len(kramer.my_answers()) == 1
        assert kramer.my_answer_tuples("Reservation")[0][0] == "Kramer"
        assert jerry.my_answer_tuples("reservation")[0][0] == "Jerry"

    def test_session_execute_routes_and_records(self, system):
        session = system.session("Kramer")
        result = session.execute("SELECT COUNT(*) FROM Flights")
        assert isinstance(result, QueryResult)
        request = session.execute(KRAMER_SQL)
        assert request.owner == "Kramer"
        assert [r.query_id for r in session.my_requests()] == [request.query_id]

    def test_session_builder_is_owned(self, system):
        session = system.session("Elaine")
        query = (
            session.builder()
            .head("Reservation", "Elaine", "x")
            .domain("x", "SELECT fno FROM Flights")
            .build()
        )
        assert query.owner == "Elaine"

    def test_session_wait_and_cancel(self, system):
        session = system.session("Kramer")
        request = session.submit(KRAMER_SQL)
        session.cancel(request.query_id)
        assert request.status is QueryStatus.CANCELLED


class TestConfigurationVariants:
    @pytest.mark.parametrize("kwargs", [
        {"use_exhaustive_baseline": True},
        {"use_constant_index": False},
        {"enable_index_lookup": False},
    ])
    def test_alternate_configurations_still_coordinate(self, kwargs):
        system = YoutopiaSystem(seed=0, **kwargs)
        system.execute_script(SETUP)
        system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
        kramer = system.execute(KRAMER_SQL, owner="Kramer")
        jerry = system.execute(JERRY_SQL, owner="Jerry")
        assert kramer.is_answered and jerry.is_answered

    def test_seeded_systems_are_deterministic(self):
        def run(seed):
            system = YoutopiaSystem(seed=seed)
            system.execute_script(SETUP)
            system.declare_answer_relation(
                "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
            )
            system.execute(KRAMER_SQL, owner="Kramer")
            system.execute(JERRY_SQL, owner="Jerry")
            return sorted(system.answers("Reservation"))

        assert run(42) == run(42)
