"""Property tests for the match-selection policy layer (hypothesis).

The policies are pure functions over candidate groups plus a context; these
tests pin the algebraic properties the rest of the system relies on:

* determinism — the same candidates and context always produce the same
  choice, independent of candidate enumeration order (for distinct groups);
* ``min_cost`` optimality — the chosen group minimises the summed cost
  attribute over the enumerated set;
* ``fairness`` never starves the oldest query when it appears in any
  candidate group;
* ``priority`` breaks exact-score ties by the sorted query-id tuple.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ir
from repro.core.matching import MatchedGroup
from repro.core.policy import (
    POLICY_NAMES,
    FairnessPolicy,
    MinCostPolicy,
    PolicyContext,
    PriorityPolicy,
    get_policy,
    group_cost,
    select,
)
from repro.errors import EntanglementError


def make_group(member_ids, cost_per_member=None):
    """A synthetic candidate group; policies only look at ids and bindings."""
    queries = [ir.EntangledQuery(query_id=query_id, heads=()) for query_id in member_ids]
    bindings = {
        query_id: [{"price": cost_per_member[query_id]}]
        if cost_per_member and query_id in cost_per_member
        else [{}]
        for query_id in member_ids
    }
    return MatchedGroup(queries=queries, bindings=bindings, providers={})


# Candidate lists whose member-id sets are pairwise distinct (enumeration
# order must then never influence the choice).
distinct_groups = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=20), min_size=1, max_size=4),
    min_size=1,
    max_size=6,
    unique=True,
).map(
    lambda sets: [make_group(sorted(f"q{n:02d}" for n in members)) for members in sets]
)


def all_member_ids(groups):
    return sorted({query_id for group in groups for query_id in group.query_ids})


@st.composite
def groups_with_context(draw):
    groups = draw(distinct_groups)
    members = all_member_ids(groups)
    priorities = {
        query_id: draw(
            st.floats(min_value=-100, max_value=100, allow_nan=False)
        )
        for query_id in members
    }
    # Distinct wait times so "the oldest" is unambiguous.
    offsets = draw(
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=len(members),
            max_size=len(members),
            unique=True,
        )
    )
    registered_at = {
        query_id: 1_000.0 + offset for query_id, offset in zip(members, offsets)
    }
    context = PolicyContext(
        trigger_id=members[0],
        now=100_000.0,
        priorities=priorities,
        registered_at=registered_at,
    )
    return groups, context


class TestDeterminism:
    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    @given(data=groups_with_context())
    @settings(max_examples=60, deadline=None)
    def test_same_candidates_same_choice(self, policy_name, data):
        groups, context = data
        policy = get_policy(policy_name)
        first = select(policy, groups, context)
        second = select(policy, groups, context)
        assert first.group is second.group
        assert first.index == second.index
        assert first.tie_broken == second.tie_broken

    @pytest.mark.parametrize("policy_name", ["priority", "fairness", "min_cost"])
    @given(data=groups_with_context(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=60, deadline=None)
    def test_choice_is_order_independent_for_distinct_groups(self, policy_name, data, seed):
        import random

        groups, context = data
        policy = get_policy(policy_name)
        baseline = select(policy, groups, context)
        shuffled = list(groups)
        random.Random(seed).shuffle(shuffled)
        permuted = select(policy, shuffled, context)
        assert sorted(permuted.group.query_ids) == sorted(baseline.group.query_ids)

    def test_empty_candidates_raise(self):
        with pytest.raises(EntanglementError):
            select(get_policy("first_match"), [], PolicyContext(trigger_id="q"))

    def test_unknown_policy_raises(self):
        with pytest.raises(EntanglementError):
            get_policy("round_robin")


class TestMinCostOptimality:
    @given(
        sets=st.lists(
            st.frozensets(st.integers(min_value=0, max_value=15), min_size=1, max_size=3),
            min_size=1,
            max_size=6,
            unique=True,
        ),
        costs=st.dictionaries(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=1_000),
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_chosen_group_minimises_summed_cost(self, sets, costs):
        groups = [
            make_group(
                sorted(f"q{n:02d}" for n in members),
                cost_per_member={f"q{n:02d}": costs.get(n, 0) for n in members},
            )
            for members in sets
        ]
        context = PolicyContext(trigger_id=groups[0].query_ids[0])
        decision = select(MinCostPolicy(), groups, context)
        best = min(group_cost(group, context.cost_attribute) for group in groups)
        assert group_cost(decision.group, context.cost_attribute) == best


class TestFairnessNeverStarvesOldest:
    @given(data=groups_with_context())
    @settings(max_examples=80, deadline=None)
    def test_oldest_member_is_served_when_reachable(self, data):
        groups, context = data
        members = all_member_ids(groups)
        oldest = min(members, key=lambda query_id: context.registered_at[query_id])
        decision = select(FairnessPolicy(), groups, context)
        # Timestamps are distinct, so whenever the globally oldest query
        # appears in any candidate group, the chosen group must contain it.
        if any(oldest in group.query_ids for group in groups):
            assert oldest in decision.group.query_ids


class TestPriorityTieBreak:
    @given(
        shared=st.floats(min_value=-50, max_value=50, allow_nan=False),
        low=st.integers(min_value=0, max_value=9),
        high=st.integers(min_value=10, max_value=19),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_ties_pick_smallest_query_id_tuple(self, shared, low, high):
        first = make_group([f"q{low:02d}"])
        second = make_group([f"q{high:02d}"])
        context = PolicyContext(
            trigger_id=first.query_ids[0],
            priorities={first.query_ids[0]: shared, second.query_ids[0]: shared},
        )
        decision = select(PriorityPolicy(), [second, first], context)
        assert decision.tie_broken
        assert decision.group.query_ids == first.query_ids

    def test_higher_priority_beats_query_id_order(self):
        favourite = make_group(["q99"])
        other = make_group(["q00"])
        context = PolicyContext(trigger_id="q99", priorities={"q99": 5.0, "q00": 1.0})
        decision = select(PriorityPolicy(), [other, favourite], context)
        assert decision.group.query_ids == ["q99"]
        assert not decision.tie_broken
