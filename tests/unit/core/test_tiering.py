"""Unit tests for the tiered pending pool (hot/cold split + page-in)."""

from __future__ import annotations

import pytest

from repro.core.compiler import compile_entangled, entangled_to_sql
from repro.core.config import SystemConfig
from repro.core.system import YoutopiaSystem
from repro.core.tiering import (
    EVICTION_POLICIES,
    TieredPool,
    TieringManager,
    make_stub,
    recompile_stub,
)
from repro.errors import StorageError
from repro.storage.backends import MemoryPendingStore


def parked_sql(index: int) -> str:
    """An unmatchable single: waits on a ghost partner that never arrives."""
    return (
        f"SELECT 'U{index}', fno INTO ANSWER Reservation "
        f"WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        f"AND ('G{index}', fno) IN ANSWER Reservation CHOOSE 1"
    )


def compile_parked(index: int):
    return compile_entangled(parked_sql(index), owner=f"U{index}")


@pytest.fixture
def manager():
    manager = TieringManager(MemoryPendingStore(), memory_limit=3)
    yield manager
    manager.close()


@pytest.fixture
def pool(manager):
    return manager.new_pool()


class TestStub:
    def test_stub_keeps_heads_and_drops_bodies(self):
        query = compile_parked(0)
        stub = make_stub(query)
        assert stub.query_id == query.query_id
        assert stub.heads == query.heads
        assert stub.answer_atoms == query.answer_atoms
        assert stub.owner == query.owner
        assert stub.domains == ()
        assert stub.predicates == ()
        assert stub.sql == entangled_to_sql(query)

    def test_recompile_stub_restores_structure(self):
        query = compile_parked(1)
        rebuilt = recompile_stub(
            query.query_id, entangled_to_sql(query), query.owner, query.priority
        )
        assert rebuilt.query_id == query.query_id
        assert rebuilt.heads == query.heads
        assert rebuilt.owner == query.owner
        assert len(rebuilt.domains) == len(query.domains)
        assert len(rebuilt.predicates) == len(query.predicates)

    def test_recompile_stub_wraps_compile_failures(self):
        with pytest.raises(StorageError, match="recompile"):
            recompile_stub("q1", "NOT EVEN SQL", None, None)


class TestTieredPool:
    def test_hot_set_is_bounded(self, manager, pool):
        queries = [compile_parked(index) for index in range(8)]
        for query in queries:
            pool[query.query_id] = query
        assert pool.hot_count() == 3
        assert pool.cold_count() == 5
        assert len(pool) == 8
        assert pool.evictions == 5
        assert len(manager.backend) == 5

    def test_iteration_order_matches_untiered_dict(self, pool):
        queries = [compile_parked(index) for index in range(8)]
        untiered: dict[str, object] = {}
        for query in queries:
            pool[query.query_id] = query
            untiered[query.query_id] = query
        # LRU touches must not perturb the id sweep order either
        pool.get(queries[5].query_id)
        pool.get(queries[0].query_id)
        assert list(pool) == list(untiered)
        assert pool.keys() == list(untiered.keys())
        assert [qid for qid, _ in pool.items()] == list(untiered.keys())

    def test_get_pages_cold_query_in(self, pool):
        queries = [compile_parked(index) for index in range(5)]
        for query in queries:
            pool[query.query_id] = query
        victim = queries[0]
        assert pool.is_cold(victim.query_id)
        paged = pool.get(victim.query_id)
        assert paged is not None
        assert not pool.is_cold(victim.query_id)
        assert paged.heads == victim.heads
        assert len(paged.domains) == len(victim.domains)
        assert pool.page_ins == 1
        assert pool.page_in_seconds >= 0.0

    def test_page_in_keeps_backend_payload(self, manager, pool):
        queries = [compile_parked(index) for index in range(5)]
        for query in queries:
            pool[query.query_id] = query
        victim_id = queries[0].query_id
        pool.get(victim_id)  # page in
        # the payload must stay: a snapshot cut earlier may reference it
        assert manager.backend.get(victim_id) is not None

    def test_pop_cold_returns_stub_and_deletes_payload(self, manager, pool):
        queries = [compile_parked(index) for index in range(5)]
        for query in queries:
            pool[query.query_id] = query
        victim = queries[0]
        assert pool.is_cold(victim.query_id)
        stub = pool.pop(victim.query_id)
        assert stub.heads == victim.heads
        assert stub.domains == ()
        assert victim.query_id not in pool
        assert manager.backend.get(victim.query_id) is None
        assert len(pool) == 4

    def test_pop_hot_returns_full_query(self, manager, pool):
        query = compile_parked(0)
        pool[query.query_id] = query
        assert pool.pop(query.query_id) is query
        assert len(pool) == 0
        assert not pool

    def test_pop_missing(self, pool):
        with pytest.raises(KeyError):
            pool.pop("nope")
        assert pool.pop("nope", None) is None

    def test_getitem_missing_raises(self, pool):
        with pytest.raises(KeyError):
            pool["nope"]

    def test_values_peek_without_page_in(self, pool):
        queries = [compile_parked(index) for index in range(5)]
        for query in queries:
            pool[query.query_id] = query
        values = pool.values()
        assert len(values) == 5
        assert pool.page_ins == 0  # introspection must not thrash the tiers
        cold_values = [value for value in values if value.domains == ()]
        assert len(cold_values) == pool.cold_count()

    def test_lru_touch_changes_victim(self):
        manager = TieringManager(MemoryPendingStore(), memory_limit=2, eviction_policy="lru")
        pool = manager.new_pool()
        first, second, third = (compile_parked(index) for index in range(3))
        pool[first.query_id] = first
        pool[second.query_id] = second
        pool.get(first.query_id)  # touch: second becomes least-recently-used
        pool[third.query_id] = third
        assert pool.is_cold(second.query_id)
        assert not pool.is_cold(first.query_id)
        manager.close()

    def test_fifo_ignores_touches(self):
        manager = TieringManager(MemoryPendingStore(), memory_limit=2, eviction_policy="fifo")
        pool = manager.new_pool()
        first, second, third = (compile_parked(index) for index in range(3))
        pool[first.query_id] = first
        pool[second.query_id] = second
        pool.get(first.query_id)  # touch is a no-op under fifo
        pool[third.query_id] = third
        assert pool.is_cold(first.query_id)
        manager.close()

    def test_lost_payload_fails_loudly(self, manager, pool):
        queries = [compile_parked(index) for index in range(5)]
        for query in queries:
            pool[query.query_id] = query
        victim_id = queries[0].query_id
        manager.backend.delete(victim_id)
        with pytest.raises(StorageError, match="lost the payload"):
            pool.get(victim_id)


class TestTieringManager:
    def test_validates_limit_and_policy(self):
        with pytest.raises(ValueError, match="pending_memory_limit"):
            TieringManager(MemoryPendingStore(), memory_limit=0)
        with pytest.raises(ValueError, match="eviction_policy"):
            TieringManager(MemoryPendingStore(), memory_limit=4, eviction_policy="random")
        assert set(EVICTION_POLICIES) == {"lru", "fifo"}

    def test_capacity_splits_across_pools(self):
        manager = TieringManager(MemoryPendingStore(), memory_limit=8)
        first = manager.new_pool()
        assert manager.capacity == 8
        manager.new_pool()
        assert manager.capacity == 4
        manager.new_pool()
        manager.new_pool()
        assert manager.capacity == 2
        manager.drop_pool(first)
        assert manager.capacity == 2  # 8 // 3
        manager.close()

    def test_capacity_floor_is_one(self):
        manager = TieringManager(MemoryPendingStore(), memory_limit=2)
        for _ in range(4):
            manager.new_pool()
        assert manager.capacity == 1
        manager.close()

    def test_drop_pool_refuses_non_empty(self):
        manager = TieringManager(MemoryPendingStore(), memory_limit=4)
        pool = manager.new_pool()
        query = compile_parked(0)
        pool[query.query_id] = query
        manager.drop_pool(pool)
        assert manager.statistics()["pools"] == 1
        manager.close()

    def test_statistics_shape(self, manager, pool):
        for index in range(5):
            query = compile_parked(index)
            pool[query.query_id] = query
        pool.get(pool.cold_ids()[0])
        stats = manager.statistics()
        assert stats["enabled"] is True
        assert stats["memory_limit"] == 3
        assert stats["eviction_policy"] == "lru"
        assert stats["backend"] == "memory"
        assert stats["pools"] == 1
        assert stats["hot"] + stats["cold"] == 5
        assert stats["hot"] <= 3
        assert stats["peak_hot"] >= stats["hot"]
        assert stats["evictions"] >= stats["cold"]
        assert stats["page_ins"] == 1
        assert stats["avg_page_in_ms"] >= 0.0

    def test_close_is_idempotent(self):
        manager = TieringManager(MemoryPendingStore(), memory_limit=4)
        manager.close()
        manager.close()


SCHEMA = [
    "CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)",
    "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris')",
]


def build_system(**config_kwargs) -> YoutopiaSystem:
    system = YoutopiaSystem(
        config=SystemConfig(seed=0, cold_store="memory", **config_kwargs)
    )
    for statement in SCHEMA:
        system.execute(statement)
    system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return system


def partner_sql(index: int) -> str:
    return (
        f"SELECT 'G{index}', fno INTO ANSWER Reservation "
        f"WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        f"AND ('U{index}', fno) IN ANSWER Reservation CHOOSE 1"
    )


class TestCoordinatorIntegration:
    def test_inline_coordinator_bounds_hot_set(self):
        system = build_system(pending_memory_limit=4)
        try:
            for index in range(12):
                system.submit_entangled(parked_sql(index), owner=f"U{index}")
            stats = system.coordinator.tiering_statistics()
            assert stats["enabled"]
            assert stats["hot"] <= 4
            assert stats["hot"] + stats["cold"] == 12
            assert system.coordinator.pending_count() == 12
        finally:
            system.close()

    def test_tiering_disabled_without_limit(self):
        system = YoutopiaSystem(config=SystemConfig(seed=0))
        try:
            assert system.coordinator.tiering_statistics() == {"enabled": False}
        finally:
            system.close()

    def test_cold_query_answers_via_page_in(self):
        system = build_system(pending_memory_limit=2)
        try:
            requests = [
                system.submit_entangled(parked_sql(index), owner=f"U{index}")
                for index in range(8)
            ]
            cold_before = system.coordinator.tiering_statistics()["cold"]
            assert cold_before > 0
            partner = system.submit_entangled(partner_sql(0), owner="G0")
            assert partner.is_answered
            assert requests[0].is_answered
            assert system.coordinator.tiering_statistics()["page_ins"] >= 1
        finally:
            system.close()

    def test_eviction_swaps_request_record_to_stub(self):
        system = build_system(pending_memory_limit=1)
        try:
            first = system.submit_entangled(parked_sql(0), owner="U0")
            system.submit_entangled(parked_sql(1), owner="U1")
            # first has been evicted; its request record now carries the stub
            record = system.coordinator.request(first.query_id)
            assert record.query.domains == ()
            assert record.query.sql  # materialized for journaling
            # paging it back in restores the full query on the record
            partner = system.submit_entangled(partner_sql(0), owner="G0")
            assert partner.is_answered
        finally:
            system.close()

    def test_cancel_of_cold_query(self):
        system = build_system(pending_memory_limit=1)
        try:
            first = system.submit_entangled(parked_sql(0), owner="U0")
            system.submit_entangled(parked_sql(1), owner="U1")
            assert system.coordinator.tiering_statistics()["cold"] >= 1
            system.coordinator.cancel(first.query_id)
            assert system.coordinator.pending_count() == 1
            stats = system.coordinator.tiering_statistics()
            assert stats["hot"] + stats["cold"] == 1
        finally:
            system.close()

    def test_checkpoint_and_recovery_rebuild_placement(self, tmp_path):
        config = dict(
            data_dir=str(tmp_path),
            fsync_policy="always",
            snapshot_interval=5,
            pending_memory_limit=3,
            cold_store="sqlite",
        )

        def build(**extra):
            system = YoutopiaSystem(config=SystemConfig(seed=0, **config, **extra))
            return system

        system = build()
        for statement in SCHEMA:
            system.execute(statement)
        system.declare_answer_relation(
            "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
        )
        parked_ids = [
            system.submit_entangled(parked_sql(index), owner=f"U{index}").query_id
            for index in range(10)
        ]
        assert system.coordinator.tiering_statistics()["cold"] > 0
        system.checkpoint()
        # crash: skip close() so no final checkpoint or cleanup runs
        system.durability.close()
        system.coordinator._tiering.close()

        recovered = build()
        try:
            assert recovered.coordinator.pending_count() == 10
            stats = recovered.coordinator.tiering_statistics()
            assert stats["hot"] <= 3
            assert stats["hot"] + stats["cold"] == 10
            # a query that was cold at snapshot time still answers
            partner = recovered.submit_entangled(partner_sql(0), owner="G0")
            assert partner.is_answered
            assert recovered.coordinator.request(parked_ids[0]).is_answered
        finally:
            recovered.close()

    def test_sharded_coordinator_splits_budget(self):
        system = build_system(pending_memory_limit=6, match_workers=2, shard_count=2)
        try:
            for index in range(12):
                system.submit_entangled(parked_sql(index), owner=f"U{index}")
            system.coordinator.drain(10)
            stats = system.coordinator.tiering_statistics()
            assert stats["pools"] == 3  # two shards + the global residence
            assert stats["hot"] <= 6
            assert stats["hot"] + stats["cold"] == 12
        finally:
            system.close()
