"""Unit tests for the snapshot-based transaction manager."""

from __future__ import annotations

import pytest

from repro.core.transactions import TransactionManager
from repro.errors import TransactionError
from repro.storage.database import Database


@pytest.fixture
def database() -> Database:
    database = Database()
    database.create_table(name="T", columns=[("a", "INT")])
    database.insert("T", (1,))
    return database


@pytest.fixture
def transactions(database: Database) -> TransactionManager:
    return TransactionManager(database)


class TestExplicitAPI:
    def test_commit_keeps_changes(self, database, transactions):
        transactions.begin()
        database.insert("T", (2,))
        transactions.commit()
        assert len(database.table("T")) == 2
        assert transactions.commits == 1

    def test_rollback_restores_snapshot(self, database, transactions):
        transactions.begin()
        database.insert("T", (2,))
        database.delete_where("T", lambda row: row["a"] == 1)
        transactions.rollback()
        assert [row["a"] for row in database.table("T").scan()] == [1]
        assert transactions.rollbacks == 1

    def test_commit_without_begin_rejected(self, transactions):
        with pytest.raises(TransactionError):
            transactions.commit()
        with pytest.raises(TransactionError):
            transactions.rollback()

    def test_in_transaction_flag(self, transactions):
        assert not transactions.in_transaction
        transactions.begin()
        assert transactions.in_transaction
        transactions.commit()
        assert not transactions.in_transaction


class TestNesting:
    def test_nested_commits_count_once(self, database, transactions):
        transactions.begin()
        transactions.begin()
        database.insert("T", (2,))
        transactions.commit()
        transactions.commit()
        assert transactions.commits == 1
        assert len(database.table("T")) == 2

    def test_inner_rollback_aborts_outer(self, database, transactions):
        transactions.begin()
        database.insert("T", (2,))
        transactions.begin()
        database.insert("T", (3,))
        transactions.rollback()
        transactions.commit()
        # everything since the outermost begin is gone, and the whole
        # transaction is counted as a rollback rather than a commit
        assert [row["a"] for row in database.table("T").scan()] == [1]
        assert transactions.commits == 0
        assert transactions.rollbacks == 1


class TestAtomicContextManager:
    def test_atomic_commits_on_success(self, database, transactions):
        with transactions.atomic():
            database.insert("T", (5,))
        assert len(database.table("T")) == 2

    def test_atomic_rolls_back_on_exception(self, database, transactions):
        with pytest.raises(RuntimeError):
            with transactions.atomic():
                database.insert("T", (5,))
                raise RuntimeError("boom")
        assert len(database.table("T")) == 1
        assert transactions.rollbacks == 1

    def test_atomic_can_be_nested(self, database, transactions):
        with transactions.atomic():
            database.insert("T", (2,))
            with transactions.atomic():
                database.insert("T", (3,))
        assert len(database.table("T")) == 3
        assert transactions.commits == 1
