"""Unit tests for the answer-relation registry."""

from __future__ import annotations

import pytest

from repro.core.answer import AnswerRelationRegistry
from repro.errors import EntanglementError
from repro.storage.database import Database


@pytest.fixture
def registry() -> AnswerRelationRegistry:
    return AnswerRelationRegistry(Database())


class TestDeclaration:
    def test_declare_with_columns_and_types(self, registry):
        spec = registry.declare("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
        assert spec.arity == 2
        assert registry.is_declared("reservation")
        schema = registry._database.schema("Reservation")
        assert schema.column_names == ("traveler", "fno")

    def test_declare_by_arity_uses_generic_columns(self, registry):
        spec = registry.declare("Chosen", arity=3)
        assert spec.column_names == ("a1", "a2", "a3")

    def test_declare_requires_columns_or_arity(self, registry):
        with pytest.raises(EntanglementError):
            registry.declare("Broken")

    def test_redeclare_with_same_arity_is_noop(self, registry):
        first = registry.declare("R", arity=2)
        second = registry.declare("R", ["x", "y"])
        assert second is first

    def test_redeclare_with_different_arity_rejected(self, registry):
        registry.declare("R", arity=2)
        with pytest.raises(EntanglementError):
            registry.declare("R", arity=3)

    def test_types_length_must_match_columns(self, registry):
        with pytest.raises(EntanglementError):
            registry.declare("R", ["a", "b"], ["TEXT"])

    def test_existing_table_can_be_adopted(self, registry):
        database = registry._database
        database.create_table(name="Legacy", columns=[("who", "TEXT"), ("what", "INT")])
        spec = registry.declare("Legacy", arity=2)
        assert spec.column_names == ("who", "what")

    def test_existing_table_with_wrong_arity_rejected(self, registry):
        registry._database.create_table(name="Legacy", columns=[("who", "TEXT")])
        with pytest.raises(EntanglementError):
            registry.declare("Legacy", arity=2)

    def test_ensure_auto_declares_and_checks_arity(self, registry):
        registry.ensure("Auto", 2)
        assert registry.spec("Auto").arity == 2
        with pytest.raises(EntanglementError):
            registry.ensure("Auto", 3)

    def test_names_sorted(self, registry):
        registry.declare("Zeta", arity=1)
        registry.declare("Alpha", arity=1)
        assert registry.names() == ["Alpha", "Zeta"]


class TestContents:
    def test_insert_and_read_tuples(self, registry):
        registry.declare("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
        registry.insert("Reservation", ("Jerry", 122))
        registry.insert("Reservation", ("Kramer", 122))
        assert registry.tuples("Reservation") == [("Jerry", 122), ("Kramer", 122)]
        assert registry.contains("Reservation", ("Jerry", 122))
        assert not registry.contains("Reservation", ("Jerry", 999))

    def test_insert_wrong_arity_rejected(self, registry):
        registry.declare("R", arity=2)
        with pytest.raises(EntanglementError):
            registry.insert("R", (1,))

    def test_unknown_relation_rejected(self, registry):
        with pytest.raises(EntanglementError):
            registry.tuples("Nothing")

    def test_clear(self, registry):
        registry.declare("R", arity=1)
        registry.insert("R", (1,))
        registry.clear("R")
        assert registry.tuples("R") == []

    def test_generic_columns_accept_mixed_types(self, registry):
        registry.declare("Mixed", arity=2)
        registry.insert("Mixed", ("text", 42))
        registry.insert("Mixed", (3.5, True))
        assert len(registry.tuples("Mixed")) == 2
