"""Unit tests for the event bus."""

from __future__ import annotations

from repro.core.events import Event, EventBus, EventType


class TestEventBus:
    def test_publish_reaches_wildcard_subscribers(self):
        bus = EventBus()
        received: list[Event] = []
        bus.subscribe(received.append)
        bus.publish(EventType.QUERY_REGISTERED, query_id="q1")
        assert len(received) == 1
        assert received[0].query_id == "q1"

    def test_type_filtered_subscription(self):
        bus = EventBus()
        answered: list[Event] = []
        bus.subscribe(answered.append, EventType.QUERY_ANSWERED)
        bus.publish(EventType.QUERY_REGISTERED, query_id="q1")
        bus.publish(EventType.QUERY_ANSWERED, query_id="q1")
        assert [event.type for event in answered] == [EventType.QUERY_ANSWERED]

    def test_unsubscribe(self):
        bus = EventBus()
        received: list[Event] = []
        bus.subscribe(received.append)
        bus.unsubscribe(received.append)
        bus.publish(EventType.QUERY_REGISTERED, query_id="q1")
        assert received == []

    def test_history_and_filtering(self):
        bus = EventBus()
        bus.publish(EventType.QUERY_REGISTERED, query_id="q1")
        bus.publish(EventType.QUERY_ANSWERED, query_id="q1")
        assert len(bus.history()) == 2
        assert len(bus.history(EventType.QUERY_ANSWERED)) == 1
        bus.clear_history()
        assert bus.history() == []

    def test_history_is_bounded(self):
        bus = EventBus(history_limit=5)
        for index in range(12):
            bus.publish(EventType.MATCH_ATTEMPTED, query_id=f"q{index}")
        history = bus.history()
        assert len(history) == 5
        assert history[-1].payload["query_id"] == "q11"

    def test_sequence_numbers_increase(self):
        bus = EventBus()
        first = bus.publish(EventType.QUERY_REGISTERED)
        second = bus.publish(EventType.QUERY_REGISTERED)
        assert second.sequence > first.sequence

    def test_event_without_query_id_payload(self):
        event = Event(type=EventType.MATCH_ATTEMPTED, payload={"pool_size": 3})
        assert event.query_id is None
