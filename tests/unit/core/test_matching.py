"""Unit tests for the two-phase matching algorithm."""

from __future__ import annotations

import random

import pytest

from repro.core import ir
from repro.core.compiler import EntangledQueryBuilder, var
from repro.core.matching import Matcher, ProviderIndex
from repro.relalg.engine import QueryEngine, run_script
from repro.storage.database import Database


@pytest.fixture
def engine() -> QueryEngine:
    engine = QueryEngine(Database())
    run_script(
        engine,
        """
        CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT, price REAL);
        CREATE TABLE Hotels (hid INT PRIMARY KEY, city TEXT, price REAL);
        INSERT INTO Flights VALUES
            (122, 'Paris', 450.0), (123, 'Paris', 500.0), (134, 'Paris', 700.0),
            (136, 'Rome', 300.0);
        INSERT INTO Hotels VALUES (7, 'Paris', 120.0), (8, 'Paris', 300.0), (9, 'Rome', 80.0);
        """,
    )
    return engine


@pytest.fixture
def matcher(engine) -> Matcher:
    return Matcher(engine, rng=random.Random(0))


def flight_query(owner: str, partner: str, dest: str = "Paris", max_price: float | None = None,
                 query_id: str | None = None):
    conditions = [f"dest = '{dest}'"]
    if max_price is not None:
        conditions.append(f"price <= {max_price}")
    return (
        EntangledQueryBuilder(owner=owner)
        .head("Reservation", owner, var("fno"))
        .domain("fno", f"SELECT fno FROM Flights WHERE {' AND '.join(conditions)}")
        .require("Reservation", partner, var("fno"))
        .build(query_id=query_id or owner)
    )


def as_pool(*queries):
    return {query.query_id: query for query in queries}


def build_index(pool, use_constant_index=True):
    index = ProviderIndex(use_constant_index=use_constant_index)
    for query in pool.values():
        index.add_query(query)
    return index


class TestPairMatching:
    def test_symmetric_pair_matches_on_shared_flight(self, matcher):
        kramer = flight_query("Kramer", "Jerry")
        jerry = flight_query("Jerry", "Kramer")
        pool = as_pool(kramer, jerry)
        group = matcher.find_group(jerry, pool, build_index(pool))
        assert group is not None
        assert set(group.query_ids) == {"Kramer", "Jerry"}
        contents = group.answer_relation_contents()["Reservation"]
        fnos = {fno for _traveler, fno in contents}
        assert len(fnos) == 1 and fnos.pop() in (122, 123, 134)
        travelers = {traveler for traveler, _ in contents}
        assert travelers == {"Kramer", "Jerry"}

    def test_single_query_with_constraint_does_not_match_alone(self, matcher):
        kramer = flight_query("Kramer", "Jerry")
        pool = as_pool(kramer)
        assert matcher.find_group(kramer, pool, build_index(pool)) is None

    def test_self_contained_query_matches_alone(self, matcher):
        solo = (
            EntangledQueryBuilder(owner="Newman")
            .head("Reservation", "Newman", var("fno"))
            .domain("fno", "SELECT fno FROM Flights WHERE dest = 'Rome'")
            .build(query_id="solo")
        )
        pool = as_pool(solo)
        group = matcher.find_group(solo, pool, build_index(pool))
        assert group is not None
        assert group.answer_relation_contents()["Reservation"] == [("Newman", 136)]

    def test_incompatible_price_constraints_prevent_grounding(self, matcher):
        cheap = flight_query("Kramer", "Jerry", max_price=460.0)
        pricey = (
            EntangledQueryBuilder(owner="Jerry")
            .head("Reservation", "Jerry", var("fno"))
            .domain("fno", "SELECT fno FROM Flights WHERE dest = 'Paris' AND price >= 600")
            .require("Reservation", "Kramer", var("fno"))
            .build(query_id="Jerry")
        )
        pool = as_pool(cheap, pricey)
        assert matcher.find_group(pricey, pool, build_index(pool)) is None

    def test_overlapping_price_windows_pick_common_flight(self, matcher):
        below_510 = flight_query("Kramer", "Jerry", max_price=510.0)
        above_480 = (
            EntangledQueryBuilder(owner="Jerry")
            .head("Reservation", "Jerry", var("fno"))
            .domain("fno", "SELECT fno FROM Flights WHERE dest = 'Paris' AND price >= 480")
            .require("Reservation", "Kramer", var("fno"))
            .build(query_id="Jerry")
        )
        pool = as_pool(below_510, above_480)
        group = matcher.find_group(above_480, pool, build_index(pool))
        assert group is not None
        fnos = {fno for _t, fno in group.answer_relation_contents()["Reservation"]}
        assert fnos == {123}

    def test_different_destinations_do_not_match(self, matcher):
        paris = flight_query("Kramer", "Jerry", dest="Paris")
        rome = flight_query("Jerry", "Kramer", dest="Rome")
        pool = as_pool(paris, rome)
        assert matcher.find_group(rome, pool, build_index(pool)) is None

    def test_wrong_partner_name_does_not_match(self, matcher):
        kramer = flight_query("Kramer", "Jerry")
        elaine = flight_query("Elaine", "Kramer")
        pool = as_pool(kramer, elaine)
        assert matcher.find_group(elaine, pool, build_index(pool)) is None


class TestGroupsAndMultiRelation:
    def group_queries(self, members, dest="Paris"):
        queries = []
        for member in members:
            builder = (
                EntangledQueryBuilder(owner=member)
                .head("Reservation", member, var("fno"))
                .domain("fno", f"SELECT fno FROM Flights WHERE dest = '{dest}'")
            )
            for other in members:
                if other != member:
                    builder.require("Reservation", other, var("fno"))
            queries.append(builder.build(query_id=member))
        return queries

    def test_group_of_four_on_same_flight(self, matcher):
        members = ["A", "B", "C", "D"]
        queries = self.group_queries(members)
        pool = as_pool(*queries)
        group = matcher.find_group(queries[-1], pool, build_index(pool))
        assert group is not None
        assert set(group.query_ids) == set(members)
        fnos = {fno for _t, fno in group.answer_relation_contents()["Reservation"]}
        assert len(fnos) == 1

    def test_partial_group_does_not_match(self, matcher):
        members = ["A", "B", "C"]
        queries = self.group_queries(members)[:2]  # C never submits
        pool = as_pool(*queries)
        assert matcher.find_group(queries[0], pool, build_index(pool)) is None

    def test_flight_and_hotel_coordination(self, matcher):
        def query(owner, partner):
            return (
                EntangledQueryBuilder(owner=owner)
                .head("Reservation", owner, var("fno"))
                .head("HotelReservation", owner, var("hid"))
                .domain("fno", "SELECT fno FROM Flights WHERE dest = 'Paris'")
                .domain("hid", "SELECT hid FROM Hotels WHERE city = 'Paris'")
                .require("Reservation", partner, var("fno"))
                .require("HotelReservation", partner, var("hid"))
                .build(query_id=owner)
            )

        jerry, kramer = query("Jerry", "Kramer"), query("Kramer", "Jerry")
        pool = as_pool(jerry, kramer)
        group = matcher.find_group(kramer, pool, build_index(pool))
        assert group is not None
        contents = group.answer_relation_contents()
        flight_choice = {fno for _t, fno in contents["Reservation"]}
        hotel_choice = {hid for _t, hid in contents["HotelReservation"]}
        assert len(flight_choice) == 1 and len(hotel_choice) == 1

    def test_max_group_size_limits_search(self, engine):
        matcher = Matcher(engine, rng=random.Random(0), max_group_size=2)
        queries = self.group_queries(["A", "B", "C"])
        pool = as_pool(*queries)
        assert matcher.find_group(queries[0], pool, build_index(pool)) is None


class TestChooseK:
    def test_choose_two_returns_two_distinct_tuples(self, matcher):
        query = (
            EntangledQueryBuilder(owner="Newman")
            .head("Reservation", "Newman", var("fno"))
            .domain("fno", "SELECT fno FROM Flights WHERE dest = 'Paris'")
            .choose(2)
            .build(query_id="newman")
        )
        pool = as_pool(query)
        group = matcher.find_group(query, pool, build_index(pool))
        assert group is not None
        tuples = group.answer_relation_contents()["Reservation"]
        assert len(tuples) == 2
        assert len(set(tuples)) == 2

    def test_choose_more_than_available_fails(self, matcher):
        query = (
            EntangledQueryBuilder(owner="Newman")
            .head("Reservation", "Newman", var("fno"))
            .domain("fno", "SELECT fno FROM Flights WHERE dest = 'Rome'")
            .choose(3)
            .build(query_id="newman")
        )
        pool = as_pool(query)
        assert matcher.find_group(query, pool, build_index(pool)) is None


class TestStatisticsAndDeterminism:
    def test_statistics_are_recorded(self, matcher):
        kramer = flight_query("Kramer", "Jerry")
        jerry = flight_query("Jerry", "Kramer")
        pool = as_pool(kramer, jerry)
        group = matcher.find_group(jerry, pool, build_index(pool))
        stats = group.statistics
        assert stats.structural_nodes >= 1
        assert stats.unification_attempts >= 1
        assert stats.grounding_attempts >= 1
        assert stats.domain_queries >= 1

    def test_same_seed_gives_same_choice(self, engine):
        def run(seed):
            matcher = Matcher(engine, rng=random.Random(seed))
            kramer = flight_query("Kramer", "Jerry")
            jerry = flight_query("Jerry", "Kramer")
            pool = as_pool(kramer, jerry)
            group = matcher.find_group(jerry, pool, build_index(pool))
            return sorted(group.answer_relation_contents()["Reservation"])

        assert run(7) == run(7)

    def test_trigger_must_be_in_pool(self, matcher):
        from repro.errors import EntanglementError

        stray = flight_query("Kramer", "Jerry")
        with pytest.raises(EntanglementError):
            matcher.find_group(stray, {}, ProviderIndex())

    def test_minimality_answer_relation_equals_group_heads(self, matcher):
        """The produced answer relation contains exactly the group's head tuples."""
        kramer = flight_query("Kramer", "Jerry")
        jerry = flight_query("Jerry", "Kramer")
        bystander = flight_query("Elaine", "George")
        pool = as_pool(kramer, jerry, bystander)
        group = matcher.find_group(jerry, pool, build_index(pool))
        contents = group.answer_relation_contents()["Reservation"]
        travelers = sorted(traveler for traveler, _ in contents)
        assert travelers == ["Jerry", "Kramer"]  # Elaine is not dragged in
