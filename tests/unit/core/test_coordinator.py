"""Unit tests for the coordination component (pending pool, retries, waiting)."""

from __future__ import annotations

import threading

import pytest

from repro.core.coordinator import PENDING_TABLE, QueryStatus
from repro.core.events import EventType
from repro.core.system import YoutopiaSystem
from repro.errors import (
    CoordinationTimeoutError,
    EntanglementError,
    QueryAlreadyAnsweredError,
    QueryNotPendingError,
    SafetyError,
)

KRAMER_SQL = (
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
)
JERRY_SQL = (
    "SELECT 'Jerry', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1"
)


@pytest.fixture
def system() -> YoutopiaSystem:
    system = YoutopiaSystem(seed=0)
    system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
    system.execute(
        "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (136, 'Rome')"
    )
    system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return system


class TestSubmission:
    def test_first_query_stays_pending(self, system):
        request = system.submit_entangled(KRAMER_SQL, owner="Kramer")
        assert request.status is QueryStatus.PENDING
        assert system.coordinator.pending_count() == 1
        assert not request.is_answered

    def test_matching_pair_is_answered_jointly(self, system):
        kramer = system.submit_entangled(KRAMER_SQL, owner="Kramer")
        jerry = system.submit_entangled(JERRY_SQL, owner="Jerry")
        assert kramer.status is QueryStatus.ANSWERED
        assert jerry.status is QueryStatus.ANSWERED
        assert set(kramer.group_query_ids) == {kramer.query_id, jerry.query_id}
        assert system.coordinator.pending_count() == 0
        fnos = {fno for _traveler, fno in system.answers("Reservation")}
        assert len(fnos) == 1

    def test_unsafe_query_is_rejected(self, system):
        with pytest.raises(SafetyError):
            system.submit_entangled(
                "SELECT 'K', fno INTO ANSWER Reservation WHERE ('J', fno) IN ANSWER Reservation"
            )
        assert system.statistics()["queries_rejected"] == 1

    def test_duplicate_query_id_rejected(self, system):
        query = system.compile(KRAMER_SQL, owner="Kramer")
        system.submit_entangled(query)
        with pytest.raises(EntanglementError):
            system.submit_entangled(query)

    def test_owner_attached_to_compiled_queries(self, system):
        query = system.compile(KRAMER_SQL)
        request = system.coordinator.submit(query, owner="Kramer")
        assert request.owner == "Kramer"

    def test_pending_table_mirrors_status(self, system):
        kramer = system.submit_entangled(KRAMER_SQL, owner="Kramer")
        rows = system.query(f"SELECT query_id, status FROM {PENDING_TABLE}").rows
        assert (kramer.query_id, "pending") in rows
        system.submit_entangled(JERRY_SQL, owner="Jerry")
        rows = dict(system.query(f"SELECT query_id, status FROM {PENDING_TABLE}").rows)
        assert rows[kramer.query_id] == "answered"


class TestWaitAndCancel:
    def test_wait_returns_answer_from_other_thread(self, system):
        kramer = system.submit_entangled(KRAMER_SQL, owner="Kramer")

        def later():
            system.submit_entangled(JERRY_SQL, owner="Jerry")

        thread = threading.Thread(target=later)
        thread.start()
        answer = system.wait(kramer.query_id, timeout=5.0)
        thread.join()
        assert answer.tuples["Reservation"][0][0] == "Kramer"

    def test_wait_timeout(self, system):
        kramer = system.submit_entangled(KRAMER_SQL, owner="Kramer")
        with pytest.raises(CoordinationTimeoutError):
            system.wait(kramer.query_id, timeout=0.05)
        assert system.statistics()["queries_timed_out"] == 1
        # the query is still pending (not rejected) after the timeout
        assert system.status(kramer.query_id) is QueryStatus.PENDING

    def test_wait_unknown_query(self, system):
        with pytest.raises(QueryNotPendingError):
            system.wait("does-not-exist", timeout=0.01)

    def test_cancel_removes_from_pool(self, system):
        kramer = system.submit_entangled(KRAMER_SQL, owner="Kramer")
        system.cancel(kramer.query_id)
        assert system.status(kramer.query_id) is QueryStatus.CANCELLED
        assert system.coordinator.pending_count() == 0
        # the partner can no longer match
        jerry = system.submit_entangled(JERRY_SQL, owner="Jerry")
        assert jerry.status is QueryStatus.PENDING

    def test_cancel_twice_rejected(self, system):
        kramer = system.submit_entangled(KRAMER_SQL, owner="Kramer")
        system.cancel(kramer.query_id)
        with pytest.raises(QueryNotPendingError):
            system.cancel(kramer.query_id)

    def test_cancel_answered_query_raises_typed_error(self, system):
        """Regression: cancelling a matched query must fail loudly and typed.

        The group's effects (answer tuples, side effects) are durable; the
        request record must stay ANSWERED and untouched.
        """
        kramer = system.submit_entangled(KRAMER_SQL, owner="Kramer")
        jerry = system.submit_entangled(JERRY_SQL, owner="Jerry")
        assert kramer.status is QueryStatus.ANSWERED
        with pytest.raises(QueryAlreadyAnsweredError) as excinfo:
            system.cancel(kramer.query_id)
        assert excinfo.value.query_id == kramer.query_id
        # typed error is still a QueryNotPendingError for generic handlers
        assert isinstance(excinfo.value, QueryNotPendingError)
        # nothing was mutated by the failed cancel
        assert kramer.status is QueryStatus.ANSWERED
        assert kramer.answer is not None
        assert set(kramer.group_query_ids) == {kramer.query_id, jerry.query_id}
        assert system.statistics()["queries_cancelled"] == 0
        assert len(system.answers("Reservation")) == 2

    def test_wait_on_cancelled_query_raises(self, system):
        kramer = system.submit_entangled(KRAMER_SQL, owner="Kramer")
        system.cancel(kramer.query_id)
        with pytest.raises(EntanglementError):
            system.wait(kramer.query_id, timeout=0.01)


class TestRetry:
    def test_retry_after_data_change(self):
        system = YoutopiaSystem(seed=0)
        system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
        system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
        kramer = system.submit_entangled(KRAMER_SQL, owner="Kramer")
        jerry = system.submit_entangled(JERRY_SQL, owner="Jerry")
        # no Paris flights yet: both wait
        assert kramer.status is QueryStatus.PENDING and jerry.status is QueryStatus.PENDING
        system.execute("INSERT INTO Flights VALUES (122, 'Paris')")
        answered = system.retry_pending()
        assert answered == 2
        assert kramer.status is QueryStatus.ANSWERED and jerry.status is QueryStatus.ANSWERED

    def test_auto_retry_on_data_change(self):
        system = YoutopiaSystem(seed=0, auto_retry_on_data_change=True)
        system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
        system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
        kramer = system.submit_entangled(KRAMER_SQL, owner="Kramer")
        jerry = system.submit_entangled(JERRY_SQL, owner="Jerry")
        assert jerry.status is QueryStatus.PENDING
        system.execute("INSERT INTO Flights VALUES (122, 'Paris')")
        # the retry happens on the next submission (arrival-driven, as in the paper)
        noise = system.submit_entangled(
            "SELECT 'Elaine', fno INTO ANSWER Reservation "
            "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Nowhere') "
            "AND ('George', fno) IN ANSWER Reservation",
            owner="Elaine",
        )
        assert noise.status is QueryStatus.PENDING
        assert kramer.status is QueryStatus.ANSWERED
        assert jerry.status is QueryStatus.ANSWERED


class TestEventsAndStatistics:
    def test_lifecycle_events_emitted(self, system):
        events = []
        system.subscribe(lambda event: events.append(event.type))
        kramer = system.submit_entangled(KRAMER_SQL, owner="Kramer")
        system.submit_entangled(JERRY_SQL, owner="Jerry")
        system.cancel_safe = None  # noqa: B010 - just to keep lints quiet about unused var
        assert EventType.QUERY_REGISTERED in events
        assert EventType.MATCH_ATTEMPTED in events
        assert EventType.GROUP_MATCHED in events
        assert EventType.QUERY_ANSWERED in events
        answered_events = system.events.history(EventType.QUERY_ANSWERED)
        assert {event.payload["owner"] for event in answered_events} == {"Kramer", "Jerry"}
        assert kramer.query_id in {event.query_id for event in answered_events}

    def test_statistics_track_matches(self, system):
        system.submit_entangled(KRAMER_SQL, owner="Kramer")
        system.submit_entangled(JERRY_SQL, owner="Jerry")
        stats = system.statistics()
        assert stats["queries_registered"] == 2
        assert stats["queries_answered"] == 2
        assert stats["groups_matched"] == 1
        assert stats["match_attempts"] == 2
        assert stats["failed_match_attempts"] == 1
        assert stats["transactions_committed"] == 1

    def test_requests_listing(self, system):
        system.submit_entangled(KRAMER_SQL, owner="Kramer")
        requests = system.coordinator.requests()
        assert len(requests) == 1 and requests[0].owner == "Kramer"
        assert system.coordinator.provider_index_size() == 1
