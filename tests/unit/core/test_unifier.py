"""Unit tests for the union-find unifier used by the matching algorithm."""

from __future__ import annotations

from repro.core import ir
from repro.core.matching import Unifier


class TestBindAndUnion:
    def test_bind_then_conflicting_bind_fails(self):
        unifier = Unifier()
        assert unifier.bind(("q1", "x"), 122)
        assert unifier.bind(("q1", "x"), 122)
        assert not unifier.bind(("q1", "x"), 123)

    def test_union_propagates_constants(self):
        unifier = Unifier()
        assert unifier.bind(("q1", "x"), 5)
        assert unifier.union(("q1", "x"), ("q2", "y"))
        assert unifier.value_of(("q2", "y")) == 5

    def test_union_of_two_different_constants_fails(self):
        unifier = Unifier()
        unifier.bind(("q1", "x"), 1)
        unifier.bind(("q2", "y"), 2)
        assert not unifier.union(("q1", "x"), ("q2", "y"))

    def test_union_is_transitive(self):
        unifier = Unifier()
        unifier.union(("q1", "x"), ("q2", "y"))
        unifier.union(("q2", "y"), ("q3", "z"))
        assert unifier.find(("q1", "x")) == unifier.find(("q3", "z"))
        unifier.bind(("q3", "z"), 9)
        assert unifier.value_of(("q1", "x")) == 9

    def test_same_class_union_is_noop(self):
        unifier = Unifier()
        unifier.union(("q1", "x"), ("q2", "y"))
        assert unifier.union(("q2", "y"), ("q1", "x"))


class TestUndo:
    def test_undo_restores_bindings_and_classes(self):
        unifier = Unifier()
        unifier.bind(("q1", "x"), 1)
        mark = unifier.mark()
        unifier.union(("q1", "x"), ("q2", "y"))
        unifier.bind(("q3", "z"), 3)
        unifier.undo_to(mark)
        # q2.y is back in its own singleton class with no constant attached
        assert unifier.find(("q2", "y")) == ("q2", "y")
        assert unifier.value_of(("q2", "y")) != 1
        assert unifier.value_of(("q1", "x")) == 1

    def test_nested_marks(self):
        unifier = Unifier()
        outer = unifier.mark()
        unifier.bind(("q1", "x"), 1)
        inner = unifier.mark()
        unifier.bind(("q1", "y"), 2)
        unifier.undo_to(inner)
        assert unifier.value_of(("q1", "x")) == 1
        unifier.undo_to(outer)
        assert unifier.find(("q1", "x")) == ("q1", "x")


class TestTermAndAtomUnification:
    def test_constant_constant(self):
        unifier = Unifier()
        assert unifier.unify_terms("q1", ir.Constant(1), "q2", ir.Constant(1))
        assert not unifier.unify_terms("q1", ir.Constant(1), "q2", ir.Constant(2))

    def test_constant_variable_both_directions(self):
        unifier = Unifier()
        assert unifier.unify_terms("q1", ir.Constant("K"), "q2", ir.Variable("who"))
        assert unifier.value_of(("q2", "who")) == "K"
        assert unifier.unify_terms("q2", ir.Variable("who"), "q1", ir.Constant("K"))
        assert not unifier.unify_terms("q2", ir.Variable("who"), "q1", ir.Constant("J"))

    def test_unify_atoms_matching(self):
        unifier = Unifier()
        answer_atom = ir.Atom("Reservation", (ir.Constant("Jerry"), ir.Variable("fno")))
        head_atom = ir.Atom("Reservation", (ir.Constant("Jerry"), ir.Variable("fno")))
        assert unifier.unify_atoms("kramer", answer_atom, "jerry", head_atom)
        assert unifier.find(("kramer", "fno")) == unifier.find(("jerry", "fno"))

    def test_unify_atoms_relation_and_arity_mismatch(self):
        unifier = Unifier()
        left = ir.Atom("R", (ir.Constant(1),))
        assert not unifier.unify_atoms("a", left, "b", ir.Atom("S", (ir.Constant(1),)))
        assert not unifier.unify_atoms(
            "a", left, "b", ir.Atom("R", (ir.Constant(1), ir.Constant(2)))
        )

    def test_unify_atoms_constant_conflict(self):
        unifier = Unifier()
        left = ir.Atom("R", (ir.Constant("Jerry"), ir.Variable("x")))
        right = ir.Atom("R", (ir.Constant("Kramer"), ir.Variable("y")))
        assert not unifier.unify_atoms("a", left, "b", right)
