"""WAL + snapshot recovery edge cases (the durability subsystem).

Covers the corners a crash can leave behind: a torn tail record from a crash
mid-append, double replay of the same log, a snapshot cut between a group's
registration and its commit record, a commit record lost to the crash (the
group must simply re-match), and recovery of cancelled query ids (the fresh
process's id counter must not collide with them).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.config import SystemConfig
from repro.core.coordinator import QueryStatus
from repro.core.durability import (
    DurabilityManager,
    WriteAheadLog,
    load_snapshot,
    read_wal,
)
from repro.core.system import YoutopiaSystem
from repro.errors import StorageError
from repro.service.remote import codec


def booking_sql(traveler: str, companion: str, dest: str = "Paris") -> str:
    return (
        f"SELECT '{traveler}', fno INTO ANSWER Reservation "
        f"WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') "
        f"AND ('{companion}', fno) IN ANSWER Reservation CHOOSE 1"
    )


def build_system(data_dir, **overrides) -> YoutopiaSystem:
    defaults = dict(seed=0, data_dir=data_dir, fsync_policy="always", snapshot_interval=0)
    defaults.update(overrides)
    system = YoutopiaSystem(config=SystemConfig(**defaults))
    return system


def crash(system: YoutopiaSystem) -> None:
    """Simulate kill -9 in-process: release the WAL handle and data-dir lock
    *without* the clean-shutdown checkpoint (``DurabilityManager.close`` never
    checkpoints; only ``system.close`` does)."""
    system.coordinator.journal = None
    system.coordinator.shutdown()
    system.durability.close()


def load_base_data(system: YoutopiaSystem) -> None:
    system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
    system.execute(
        "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (136, 'Rome')"
    )
    system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])


# ---------------------------------------------------------------------------
# The log itself
# ---------------------------------------------------------------------------


class TestWriteAheadLog:
    def test_appends_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync_policy="batch")
        wal.append("submit", {"query_id": "q1"})
        wal.append("cancel", {"query_id": "q1"})
        wal.close()
        records, valid = read_wal(tmp_path / "wal.log")
        assert [(r["lsn"], r["type"]) for r in records] == [(1, "submit"), (2, "cancel")]
        assert valid == (tmp_path / "wal.log").stat().st_size

    def test_rejects_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(StorageError):
            WriteAheadLog(tmp_path / "wal.log", fsync_policy="sometimes")

    def test_always_fsyncs_every_record_and_batch_once_per_scope(self, tmp_path):
        always = WriteAheadLog(tmp_path / "a.log", fsync_policy="always")
        for index in range(5):
            always.append("data", {"sql": str(index)})
        assert always.fsync_count == 5
        always.close()

        batch = WriteAheadLog(tmp_path / "b.log", fsync_policy="batch")
        with batch.group_commit():
            for index in range(5):
                batch.append("data", {"sql": str(index)})
        # the whole scope costs one fsync (group commit)
        assert batch.fsync_count == 1
        assert batch.group_commits == 1
        batch.close()

    def test_single_append_fsyncs_under_another_threads_batch_scope(self, tmp_path):
        """Group-commit deferral is thread-local: other threads keep their
        acknowledge-after-durable guarantee while a batch scope is open."""
        import threading

        wal = WriteAheadLog(tmp_path / "wal.log", fsync_policy="batch")
        in_scope = threading.Event()
        release = threading.Event()

        def batcher() -> None:
            with wal.group_commit():
                wal.append("submit", {"query_id": "a1"})
                in_scope.set()
                release.wait(5)

        thread = threading.Thread(target=batcher)
        thread.start()
        try:
            assert in_scope.wait(5)
            before = wal.fsync_count
            wal.append("submit", {"query_id": "b1"})  # no scope on this thread
            assert wal.fsync_count == before + 1
        finally:
            release.set()
            thread.join(5)
        # b1's fsync already covered a1; the scope-end sync is skipped
        records, _ = read_wal(tmp_path / "wal.log")
        assert [r["data"]["query_id"] for r in records] == ["a1", "b1"]
        wal.close()

    def test_truncated_tail_record_is_ignored_and_repaired(self, tmp_path):
        """A crash mid-append leaves a partial record; it must not poison the log."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync_policy="batch")
        wal.append("submit", {"query_id": "q1"})
        wal.append("submit", {"query_id": "q2"})
        wal.close()
        intact_size = path.stat().st_size

        # crash mid-write: a header promising more bytes than were written
        frame = codec.encode_frame(
            {"v": codec.PROTOCOL_VERSION, "lsn": 3, "type": "submit", "data": {}}
        )
        with open(path, "ab") as handle:
            handle.write(frame[: len(frame) - 7])

        records, valid = read_wal(path)
        assert [r["lsn"] for r in records] == [1, 2]
        assert valid == intact_size

        # the manager repairs the torn tail and appends continue cleanly
        manager = DurabilityManager(tmp_path, fsync_policy="batch")
        assert path.stat().st_size == intact_size
        assert manager.wal.append("cancel", {"query_id": "q1"}) == 3
        manager.close()
        records, _ = read_wal(path)
        assert [(r["lsn"], r["type"]) for r in records] == [
            (1, "submit"),
            (2, "submit"),
            (3, "cancel"),
        ]

    def test_failed_append_rolls_back_to_a_record_boundary(self, tmp_path):
        """ENOSPC mid-frame must not leave a torn frame ahead of later records."""
        wal = WriteAheadLog(tmp_path / "wal.log", fsync_policy="batch")
        wal.append("submit", {"query_id": "q1"})

        real_write = wal._file.write

        def failing_write(frame: bytes) -> int:
            real_write(frame[: len(frame) // 2])  # half the frame lands...
            raise OSError(28, "No space left on device")  # ...then the disk fills

        wal._file.write = failing_write
        with pytest.raises(OSError):
            wal.append("submit", {"query_id": "q2"})
        wal._file.write = real_write

        # the partial frame was truncated away, so later appends are readable
        lsn = wal.append("submit", {"query_id": "q3"})
        assert lsn == 2  # the failed append's LSN was reusable
        wal.close()
        records, valid = read_wal(tmp_path / "wal.log")
        assert [r["data"]["query_id"] for r in records] == ["q1", "q3"]
        assert valid == (tmp_path / "wal.log").stat().st_size

    def test_garbage_tail_is_ignored(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync_policy="never")
        wal.append("data", {"sql": "CREATE TABLE T (x INT)"})
        wal.close()
        with open(path, "ab") as handle:
            handle.write(b"\xff\xff\xff\xff garbage that is not a frame")
        records, _valid = read_wal(path)
        assert len(records) == 1

    def test_future_format_version_is_an_error_not_a_torn_tail(self, tmp_path):
        """A well-formed record from a newer WAL format must refuse to load —
        truncating it away as 'repair' would silently destroy a valid log."""
        from repro.core.durability import WAL_VERSION

        path = tmp_path / "wal.log"
        frame = codec.encode_frame(
            {"v": WAL_VERSION + 1, "lsn": 1, "type": "submit", "data": {}}
        )
        path.write_bytes(frame)
        with pytest.raises(StorageError, match="format version"):
            read_wal(path)
        with pytest.raises(StorageError, match="format version"):
            DurabilityManager(tmp_path)
        assert path.stat().st_size == len(frame)  # nothing was truncated

    def test_data_dir_is_single_process(self, tmp_path):
        """A second live manager on the same directory must fail fast, not
        truncate the first one's in-flight WAL tail."""
        first = DurabilityManager(tmp_path)
        try:
            with pytest.raises(StorageError, match="already in use"):
                DurabilityManager(tmp_path)
        finally:
            first.close()
        # released on close: the directory is reusable afterwards
        second = DurabilityManager(tmp_path)
        second.close()

    def test_corrupt_snapshot_is_a_hard_error(self, tmp_path):
        """Snapshot writes are atomic, so an unreadable snapshot is real
        corruption — silently discarding it would drop all checkpointed
        state; refusing to start is the only safe answer."""
        (tmp_path / "snapshot.json").write_text('{"last_lsn": 3, "tab', encoding="utf-8")
        with pytest.raises(StorageError, match="unreadable"):
            load_snapshot(tmp_path / "snapshot.json")
        with pytest.raises(StorageError, match="unreadable"):
            DurabilityManager(tmp_path)

    def test_future_snapshot_version_is_a_hard_error(self, tmp_path):
        (tmp_path / "snapshot.json").write_text(
            '{"version": 99, "last_lsn": 1}', encoding="utf-8"
        )
        with pytest.raises(StorageError, match="format version"):
            DurabilityManager(tmp_path)

    def test_missing_snapshot_is_fine(self, tmp_path):
        assert load_snapshot(tmp_path / "snapshot.json") is None
        manager = DurabilityManager(tmp_path)
        assert manager.applied_lsn == 0
        manager.close()


# ---------------------------------------------------------------------------
# Recovery scenarios
# ---------------------------------------------------------------------------


class TestRecovery:
    def test_replay_is_idempotent(self, tmp_path):
        """Replaying the same log twice equals replaying it once."""
        system = build_system(tmp_path)
        load_base_data(system)
        system.submit_entangled(booking_sql("Jerry", "Kramer"), owner="Jerry")
        crash(system)  # the WAL is the only surviving state

        records, _ = read_wal(tmp_path / "wal.log")
        assert records  # the crash left a non-trivial log

        recovered = build_system(tmp_path)
        assert recovered.recovery is not None
        first = recovered.statistics()
        assert len(recovered.pending_queries()) == 1

        # a second replay of the very same records applies nothing: every
        # LSN is at or below the already-applied watermark
        report = recovered.durability.replay(recovered, records)
        assert report.records_replayed == 0
        assert report.records_skipped == len(records)
        assert recovered.statistics() == first
        assert len(recovered.pending_queries()) == 1
        flights = recovered.query("SELECT fno FROM Flights")
        assert len(flights.rows) == 3  # the INSERT was not re-applied
        recovered.close()

    def test_snapshot_between_registration_and_commit_record(self, tmp_path):
        """A commit in the log tail lands on queries the snapshot holds pending."""
        system = build_system(tmp_path)
        load_base_data(system)
        jerry = system.submit_entangled(booking_sql("Jerry", "Kramer", "Oslo"), owner="Jerry")
        kramer = system.submit_entangled(booking_sql("Kramer", "Jerry", "Oslo"), owner="Kramer")
        assert jerry.status is QueryStatus.PENDING  # no Oslo flights yet

        assert system.checkpoint()  # snapshot: both queries pending
        snapshot = load_snapshot(tmp_path / "snapshot.json")
        assert {r["query_id"] for r in snapshot["requests"]} == {
            jerry.query_id,
            kramer.query_id,
        }
        assert all(r["status"] == "pending" for r in snapshot["requests"])

        system.execute("INSERT INTO Flights VALUES (777, 'Oslo')")
        assert system.retry_pending() == 2  # the match commits into the log tail
        answers = sorted(system.answers("Reservation"))
        records, _ = read_wal(tmp_path / "wal.log")
        assert [r["type"] for r in records] == ["data", "commit"]
        crash(system)

        recovered = build_system(tmp_path)
        assert recovered.recovered
        assert sorted(recovered.answers("Reservation")) == answers
        assert recovered.status(jerry.query_id) is QueryStatus.ANSWERED
        assert recovered.status(kramer.query_id) is QueryStatus.ANSWERED
        assert recovered.pending_queries() == []
        assert (
            recovered.coordinator.request(jerry.query_id).group_query_ids
            == (jerry.query_id, kramer.query_id)
        )
        recovered.close()

    def test_crash_between_match_and_commit_record_rematches(self, tmp_path):
        """Without the commit record the group recovers as pending and re-matches."""
        system = build_system(tmp_path)
        load_base_data(system)
        jerry = system.submit_entangled(booking_sql("Jerry", "Kramer"), owner="Jerry")
        kramer = system.submit_entangled(booking_sql("Kramer", "Jerry"), owner="Kramer")
        assert kramer.status is QueryStatus.ANSWERED
        answers = sorted(system.answers("Reservation"))
        crash(system)

        # simulate the crash window: drop the commit record from the log
        records, _ = read_wal(tmp_path / "wal.log")
        with open(tmp_path / "wal.log", "wb") as handle:
            for record in records:
                if record["type"] != "commit":
                    handle.write(codec.encode_frame(record))

        recovered = build_system(tmp_path)
        assert {q.query_id for q in recovered.pending_queries()} == {
            jerry.query_id,
            kramer.query_id,
        }
        assert recovered.retry_pending() == 2  # deterministic re-match (same seed)
        assert sorted(recovered.answers("Reservation")) == answers
        recovered.close()

    def test_cancelled_then_resubmitted_query_id(self, tmp_path):
        """Recovered cancelled ids stay reserved; fresh submissions never collide."""
        system = build_system(tmp_path)
        load_base_data(system)
        jerry = system.submit_entangled(booking_sql("Jerry", "Kramer"), owner="Jerry")
        system.cancel(jerry.query_id)
        crash(system)

        recovered = build_system(tmp_path)
        assert recovered.status(jerry.query_id) is QueryStatus.CANCELLED
        assert recovered.pending_queries() == []

        # Jerry resubmits the identical SQL: it must get a *fresh* id (the
        # recovered process's id counter restarts at q1 and would otherwise
        # hand out the cancelled id again).
        retry = recovered.submit_entangled(booking_sql("Jerry", "Kramer"), owner="Jerry")
        assert retry.query_id != jerry.query_id
        assert retry.status is QueryStatus.PENDING
        partner = recovered.submit_entangled(booking_sql("Kramer", "Jerry"), owner="Kramer")
        assert partner.status is QueryStatus.ANSWERED
        assert recovered.status(retry.query_id) is QueryStatus.ANSWERED
        # the cancelled record survives alongside the answered retry
        assert recovered.status(jerry.query_id) is QueryStatus.CANCELLED
        recovered.close()

    def test_builder_query_with_quoted_constant_recovers(self, tmp_path):
        """Programmatic IR records no SQL; the journal renders it with SQL
        literal escaping so recovery can recompile it faithfully."""
        from repro.core.compiler import EntangledQueryBuilder, var

        system = build_system(tmp_path)
        load_base_data(system)
        query = (
            EntangledQueryBuilder(owner="Jerry")
            .head("Reservation", "it's \"J\"", var("fno"))
            .domain("fno", "SELECT fno FROM Flights WHERE dest = 'Paris'")
            .require("Reservation", "K", var("fno"))
            .build()
        )
        request = system.submit_entangled(query)
        assert request.status is QueryStatus.PENDING
        crash(system)

        recovered = build_system(tmp_path)
        (pending,) = recovered.pending_queries()
        assert pending.query_id == request.query_id
        assert pending.heads[0].terms[0].value == "it's \"J\""
        # and it still coordinates
        partner = recovered.submit_entangled(
            "SELECT 'K', fno INTO ANSWER Reservation "
            "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
            "AND ('it''s \"J\"', fno) IN ANSWER Reservation CHOOSE 1"
        )
        assert partner.status is QueryStatus.ANSWERED
        assert recovered.status(request.query_id) is QueryStatus.ANSWERED
        recovered.close()

    def test_snapshot_interval_checkpoints_and_truncates(self, tmp_path):
        system = build_system(tmp_path, snapshot_interval=4, fsync_policy="batch")
        load_base_data(system)  # 3 records: create, insert, declare
        system.submit_entangled(booking_sql("Jerry", "Kramer"), owner="Jerry")
        # the 4th record crossed the interval: a snapshot was cut and the log reset
        assert system.durability.snapshots_taken >= 1
        assert (tmp_path / "snapshot.json").exists()
        records, _ = read_wal(tmp_path / "wal.log")
        assert records == []
        crash(system)

        recovered = build_system(tmp_path, snapshot_interval=4)
        assert len(recovered.pending_queries()) == 1
        assert len(recovered.query("SELECT fno FROM Flights").rows) == 3
        recovered.close()

    def test_recovery_restores_tables_indexes_and_counters(self, tmp_path):
        system = build_system(tmp_path)
        load_base_data(system)
        system.database.table("Flights").create_index("by_dest", ["dest"])
        jerry = system.submit_entangled(booking_sql("Jerry", "Kramer"), owner="Jerry")
        kramer = system.submit_entangled(booking_sql("Kramer", "Jerry"), owner="Kramer")
        assert kramer.status is QueryStatus.ANSWERED
        assert system.checkpoint()
        before = system.statistics()
        crash(system)

        recovered = build_system(tmp_path)
        table = recovered.database.table("Flights")
        assert "by_dest" in table.indexes()
        after = recovered.statistics()
        for key in ("queries_registered", "queries_answered", "groups_matched"):
            assert after[key] == before[key], key
        assert recovered.status(jerry.query_id) is QueryStatus.ANSWERED
        envelope = recovered.coordinator.request(jerry.query_id).answer
        assert envelope is not None and envelope.tuples
        recovered.close()

    def test_sharded_system_recovers_pending_pool(self, tmp_path):
        system = build_system(tmp_path, match_workers=2, fsync_policy="batch")
        load_base_data(system)
        handles = system.submit_many(
            [booking_sql(f"solo-{i}", f"ghost-{i}") for i in range(6)]
        )
        assert system.drain(10.0)
        assert all(handle.status is QueryStatus.PENDING for handle in handles)
        crash(system)

        recovered = build_system(tmp_path, match_workers=2, fsync_policy="batch")
        assert {q.query_id for q in recovered.pending_queries()} == {
            handle.query_id for handle in handles
        }
        partner = recovered.submit_entangled(booking_sql("ghost-3", "solo-3"))
        assert recovered.drain(10.0)
        assert recovered.status(partner.query_id) is QueryStatus.ANSWERED
        recovered.close()

    def test_close_checkpoints_cleanly(self, tmp_path):
        system = build_system(tmp_path)
        load_base_data(system)
        system.submit_entangled(booking_sql("Jerry", "Kramer"), owner="Jerry")
        system.close()
        # a clean shutdown leaves a snapshot and an empty log
        records, _ = read_wal(tmp_path / "wal.log")
        assert records == []
        snapshot = load_snapshot(tmp_path / "snapshot.json")
        assert snapshot is not None and snapshot["requests"]

        recovered = build_system(tmp_path)
        assert recovered.recovery.records_replayed == 0
        assert len(recovered.pending_queries()) == 1
        recovered.close()

    def test_batch_commit_record_is_durable_before_answers_are_visible(self, tmp_path):
        """A submit_many that matches inline must fsync the commit record
        even though the batch's submit records share a group-commit scope."""
        system = build_system(tmp_path, fsync_policy="batch")
        load_base_data(system)
        jerry, kramer = system.submit_many(
            [booking_sql("Jerry", "Kramer"), booking_sql("Kramer", "Jerry")]
        )
        assert kramer.status is QueryStatus.ANSWERED
        answers = sorted(system.answers("Reservation"))
        # everything visible is on disk: a crash right now loses nothing
        records, _ = read_wal(tmp_path / "wal.log")
        assert [r["type"] for r in records][-3:] == ["submit", "submit", "commit"]
        assert system.durability.wal._unsynced == 0
        crash(system)

        recovered = build_system(tmp_path)
        assert recovered.status(jerry.query_id) is QueryStatus.ANSWERED
        assert sorted(recovered.answers("Reservation")) == answers
        recovered.close()

    def test_background_checkpoint_failure_does_not_fail_submits(self, tmp_path):
        """A snapshot-write error is recorded, not raised out of submit()."""
        system = build_system(tmp_path, snapshot_interval=2, fsync_policy="batch")
        load_base_data(system)
        # make os.replace(tmp, snapshot.json) fail: the target is a directory
        snapshot_path = system.durability.snapshot_path
        if snapshot_path.exists():
            snapshot_path.unlink()
        snapshot_path.mkdir()
        request = system.submit_entangled(booking_sql("Jerry", "Kramer"), owner="Jerry")
        assert request.status is QueryStatus.PENDING  # the submit succeeded
        stats = system.durability_stats()
        assert stats["checkpoint_failures"] >= 1
        assert stats["last_checkpoint_error"]
        assert not snapshot_path.with_suffix(".tmp").exists()  # no stale tmp
        snapshot_path.rmdir()
        system.close()

    def test_mirror_without_data_dir_keeps_full_synchronous(self, tmp_path):
        """persist_to alone must not inherit the WAL's relaxed fsync policy."""
        system = YoutopiaSystem(
            config=SystemConfig(seed=0, persist_to=tmp_path / "mirror.sqlite")
        )
        (level,) = system._mirror._connection.execute("PRAGMA synchronous").fetchone()
        assert level == 2  # FULL
        system.close()

    def test_submit_append_failure_registers_nothing(self, tmp_path):
        """A failed submit journal append propagates with no half state: the
        query is not in the pool, so a clean resubmit works."""
        system = build_system(tmp_path)
        load_base_data(system)
        original = system.durability.log_submit

        def failing(request):
            raise OSError(28, "No space left on device")

        system.durability.log_submit = failing
        with pytest.raises(OSError):
            system.submit_entangled(booking_sql("Jerry", "Kramer"), owner="Jerry")
        assert system.pending_queries() == []
        assert system.coordinator.requests() == []
        system.durability.log_submit = original
        retry = system.submit_entangled(booking_sql("Jerry", "Kramer"), owner="Jerry")
        assert retry.status is QueryStatus.PENDING
        system.close()

    def test_cancel_append_failure_keeps_query_cancellable(self, tmp_path):
        """A failed cancel journal append leaves the query cleanly pending
        (still waitable and cancellable), not popped into a zombie."""
        system = build_system(tmp_path)
        load_base_data(system)
        request = system.submit_entangled(booking_sql("Jerry", "Kramer"), owner="Jerry")
        original = system.durability.log_cancel

        def failing(query_id):
            raise OSError(28, "No space left on device")

        system.durability.log_cancel = failing
        with pytest.raises(OSError):
            system.cancel(request.query_id)
        assert request.status is QueryStatus.PENDING
        assert [q.query_id for q in system.pending_queries()] == [request.query_id]
        system.durability.log_cancel = original
        system.cancel(request.query_id)  # succeeds once the disk recovered
        assert request.status is QueryStatus.CANCELLED
        system.close()

    def test_failed_declare_is_not_journaled(self, tmp_path):
        """An inconsistent re-declare raises and leaves no phantom record."""
        from repro.errors import EntanglementError

        system = build_system(tmp_path)
        load_base_data(system)
        before, _ = read_wal(tmp_path / "wal.log")
        with pytest.raises(EntanglementError):
            system.declare_answer_relation("Reservation", arity=5)  # arity clash
        after, _ = read_wal(tmp_path / "wal.log")
        assert len(after) == len(before)
        system.close()

    def test_data_append_failure_after_apply_is_recorded_not_raised(self, tmp_path):
        """A WAL failure after a successful statement must not report the
        statement as failed (a retry would double-apply); the durability gap
        is recorded in stats instead."""
        system = build_system(tmp_path)
        load_base_data(system)
        original = system.durability.wal.append

        def failing_append(record_type, data):
            raise OSError(28, "No space left on device")

        system.durability.wal.append = failing_append
        result = system.execute("INSERT INTO Flights VALUES (999, 'Oslo')")
        system.durability.wal.append = original
        assert result.affected == 1  # the statement succeeded for the caller
        assert len(system.query("SELECT fno FROM Flights").rows) == 4
        assert system.durability_stats()["append_failures"] == 1
        system.close()

    def test_close_is_idempotent(self, tmp_path):
        """A second close() must not checkpoint through the closed WAL."""
        system = build_system(tmp_path)
        load_base_data(system)
        with system:
            pass  # __exit__ closes once
        system.close()  # and again, explicitly
        recovered = build_system(tmp_path)
        assert len(recovered.query("SELECT fno FROM Flights").rows) == 3
        recovered.close()

    def test_wal_disabled_stats(self, tmp_path):
        system = YoutopiaSystem(config=SystemConfig(seed=0))
        assert system.durability_stats() == {"enabled": False}
        system.close()

    def test_snapshot_file_is_json(self, tmp_path):
        """The snapshot is plain JSON: inspectable with standard tools."""
        system = build_system(tmp_path)
        load_base_data(system)
        system.checkpoint()
        with open(tmp_path / "snapshot.json", "r", encoding="utf-8") as handle:
            state = json.load(handle)
        assert {t["name"] for t in state["tables"]} >= {"Flights", "Reservation"}
        assert state["answer_relations"] == ["Reservation"]
        system.close()

    def test_data_records_fsync_is_crash_consistent(self, tmp_path):
        """Applied statements are journaled; failing statements are not."""
        system = build_system(tmp_path)
        load_base_data(system)
        records, _ = read_wal(tmp_path / "wal.log")
        kinds = [r["type"] for r in records]
        assert kinds == ["data", "data", "declare"]
        assert "CREATE TABLE" in records[0]["data"]["sql"].upper()

        # a statement that fails to execute leaves no record behind — it
        # would otherwise re-fail on every recovery as a phantom error
        with pytest.raises(Exception):
            system.execute("INSERT INTO Flights VALUES (122, 'Dup')")  # pk clash
        records_after, _ = read_wal(tmp_path / "wal.log")
        assert len(records_after) == len(records)
        system.close()
        assert os.path.exists(tmp_path / "snapshot.json")

    def test_commit_append_failure_still_finalizes_the_group(self, tmp_path):
        """A non-fatal journal failure at commit time must not strand an
        executed group as pending (a later re-match would duplicate its
        answer tuples); the gap is recorded in the durability stats."""
        system = build_system(tmp_path)
        load_base_data(system)
        original = system.durability.log_commit

        def failing_log_commit(*args, **kwargs):
            raise OSError(28, "No space left on device")

        system.durability.log_commit = failing_log_commit
        jerry = system.submit_entangled(booking_sql("Jerry", "Kramer"), owner="Jerry")
        kramer = system.submit_entangled(booking_sql("Kramer", "Jerry"), owner="Kramer")
        system.durability.log_commit = original

        assert jerry.status is QueryStatus.ANSWERED
        assert kramer.status is QueryStatus.ANSWERED
        answers = sorted(system.answers("Reservation"))
        assert len(answers) == 2
        # the pool is clean: a retry sweep finds nothing to re-match
        assert system.retry_pending() == 0
        assert sorted(system.answers("Reservation")) == answers  # no duplicates
        stats = system.durability_stats()
        assert stats["append_failures"] == 1
        assert "No space left" in stats["last_append_error"]
        system.close()
