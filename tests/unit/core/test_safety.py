"""Unit tests for the safety / uniqueness (origin) static analysis."""

from __future__ import annotations

import pytest

from repro.core.compiler import EntangledQueryBuilder, var
from repro.core.safety import analyze, check, mutual_match_possible
from repro.errors import SafetyError, UniquenessError


def safe_query(owner="Kramer", partner="Jerry"):
    return (
        EntangledQueryBuilder(owner=owner)
        .head("Reservation", owner, var("fno"))
        .domain("fno", "SELECT fno FROM Flights WHERE dest = 'Paris'")
        .require("Reservation", partner, var("fno"))
        .build()
    )


class TestSafety:
    def test_paper_query_is_safe_and_unique(self):
        report = analyze(safe_query())
        assert report.safe and report.unique and report.admissible
        assert check(safe_query()).admissible

    def test_head_variable_without_domain_is_unsafe(self):
        query = (
            EntangledQueryBuilder()
            .head("Reservation", "Kramer", var("fno"))
            .require("Reservation", "Jerry", var("fno"))
            .build()
        )
        report = analyze(query)
        assert not report.safe
        assert report.unsafe_variables == ("fno",)
        with pytest.raises(SafetyError):
            check(query)

    def test_predicate_variable_without_domain_is_unsafe(self):
        query = (
            EntangledQueryBuilder()
            .head("R", "K", var("x"))
            .domain("x", "SELECT a FROM T")
            .predicate("y > 3")
            .build()
        )
        assert analyze(query).unsafe_variables == ("y",)

    def test_fully_constant_query_is_safe(self):
        query = EntangledQueryBuilder().head("Ping", "hello").build()
        report = analyze(query)
        assert report.safe and report.unique

    def test_answer_variable_not_determined_violates_origin(self):
        # 'other' appears only in the answer constraint: the query cannot say
        # which concrete tuple it is waiting for.
        query = (
            EntangledQueryBuilder()
            .head("R", "K", var("x"))
            .domain("x", "SELECT a FROM T")
            .require("R", var("other"), var("x"))
            .build()
        )
        report = analyze(query)
        assert report.safe is False or report.unique is False
        with pytest.raises((SafetyError, UniquenessError)):
            check(query)

    def test_warning_for_constant_head_with_constraints(self):
        query = (
            EntangledQueryBuilder()
            .head("R", "K", 1)
            .domain("x", "SELECT a FROM T")
            .require("R", "J", var("x"))
            .build()
        )
        report = analyze(query)
        assert any("fully constant" in warning for warning in report.warnings)

    def test_warning_for_doubly_constrained_variable(self):
        query = (
            EntangledQueryBuilder()
            .head("R", "K", var("x"))
            .domain("x", "SELECT a FROM T")
            .domain("x", "SELECT b FROM S")
            .build()
        )
        report = analyze(query)
        assert any("more than one domain" in warning for warning in report.warnings)


class TestMutualMatchPossible:
    def test_symmetric_pair_is_possible(self):
        assert mutual_match_possible(safe_query("Kramer", "Jerry"), safe_query("Jerry", "Kramer"))

    def test_missing_provider_relation_is_impossible(self):
        needs_hotel = (
            EntangledQueryBuilder()
            .head("Reservation", "A", var("fno"))
            .domain("fno", "SELECT fno FROM Flights")
            .require("HotelReservation", "B", var("hid"))
            .domain("hid", "SELECT hid FROM Hotels")
            .build()
        )
        assert not mutual_match_possible(needs_hotel, safe_query("B", "A"))

    def test_arity_mismatch_is_impossible(self):
        # This query *requires* a 3-ary Reservation tuple, but neither query
        # has a 3-ary Reservation head to provide it.
        wide = (
            EntangledQueryBuilder()
            .head("Reservation", "A", var("fno"))
            .domain("fno", "SELECT fno FROM Flights")
            .domain("seat", "SELECT seat FROM Seats")
            .require("Reservation", "B", var("fno"), var("seat"))
            .build()
        )
        narrow = safe_query("B", "A")
        assert not mutual_match_possible(wide, narrow)
