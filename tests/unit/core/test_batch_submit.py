"""Unit tests for batch submission (`submit_many`) and its helpers."""

from __future__ import annotations

import pytest

from repro.core import ir
from repro.core.compiler import compile_entangled
from repro.core.config import SystemConfig
from repro.core.coordinator import QueryStatus
from repro.core.system import YoutopiaSystem
from repro.errors import ScriptError, UnknownTableError

SETUP = """
CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT);
INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (136, 'Rome');
"""


def entangled_sql(me: str, partner: str) -> str:
    return (
        f"SELECT '{me}', fno INTO ANSWER Reservation "
        "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        f"AND ('{partner}', fno) IN ANSWER Reservation CHOOSE 1"
    )


@pytest.fixture
def system() -> YoutopiaSystem:
    system = YoutopiaSystem(config=SystemConfig(seed=0))
    system.execute_script(SETUP)
    system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return system


class TestSubmitMany:
    def test_batch_pair_uses_single_match_pass(self, system):
        kramer, jerry = system.submit_many(
            [entangled_sql("Kramer", "Jerry"), entangled_sql("Jerry", "Kramer")]
        )
        assert kramer.status is QueryStatus.ANSWERED
        assert jerry.status is QueryStatus.ANSWERED
        stats = system.statistics()
        assert stats["match_attempts"] == 1
        assert stats["failed_match_attempts"] == 0
        # loop-of-submit would have taken two passes (one failing)
        assert stats["groups_matched"] == 1

    def test_batch_many_pairs_one_attempt_per_group(self, system):
        names = [(f"L{i}", f"R{i}") for i in range(10)]
        queries = []
        for left, right in names:
            queries.append(entangled_sql(left, right))
            queries.append(entangled_sql(right, left))
        requests = system.submit_many(queries)
        assert all(request.status is QueryStatus.ANSWERED for request in requests)
        stats = system.statistics()
        assert stats["groups_matched"] == 10
        assert stats["match_attempts"] == 10

    def test_unmatchable_member_gets_exactly_one_sweep_attempt(self, system):
        requests = system.submit_many(
            [
                entangled_sql("Kramer", "Jerry"),
                entangled_sql("Jerry", "Kramer"),
                entangled_sql("Elaine", "Ghost"),
            ]
        )
        assert requests[0].status is QueryStatus.ANSWERED
        assert requests[1].status is QueryStatus.ANSWERED
        assert requests[2].status is QueryStatus.PENDING
        stats = system.statistics()
        assert stats["match_attempts"] == 2  # one per group + one sweep attempt
        assert stats["failed_match_attempts"] == 1

    def test_rejected_query_recorded_not_raised(self, system):
        unsafe = (
            "SELECT 'Kramer', fno INTO ANSWER Reservation "
            "WHERE ('Jerry', fno) IN ANSWER Reservation"
        )
        ok, bad = system.submit_many([entangled_sql("Kramer", "Jerry"), unsafe])
        assert ok.status is QueryStatus.PENDING
        assert bad.status is QueryStatus.REJECTED
        assert bad.error

    def test_duplicate_id_in_batch_rejected(self, system):
        query = compile_entangled(entangled_sql("Kramer", "Jerry"), owner="Kramer")
        first, second = system.submit_many([query, query])
        assert first.status is QueryStatus.PENDING
        assert second.status is QueryStatus.REJECTED
        assert "already registered" in (second.error or "")

    def test_batch_owner_default(self, system):
        requests = system.submit_many([entangled_sql("Kramer", "Jerry")], owner="Kramer")
        assert requests[0].owner == "Kramer"

    def test_empty_batch_is_a_noop(self, system):
        assert system.submit_many([]) == []
        assert system.statistics()["match_attempts"] == 0


class TestReplaceOwner:
    def test_replace_owner_copies_every_field(self, system):
        query = compile_entangled(entangled_sql("Kramer", "Jerry"))
        owned = query.replace_owner("Kramer")
        assert owned.owner == "Kramer"
        # every other field carried over verbatim
        for field_name in (
            "query_id",
            "heads",
            "answer_atoms",
            "domains",
            "predicates",
            "choose",
            "sql",
        ):
            assert getattr(owned, field_name) == getattr(query, field_name)

    def test_submit_attaches_owner_to_precompiled_ir(self, system):
        query = compile_entangled(entangled_sql("Kramer", "Jerry"))
        assert query.owner is None
        request = system.submit_entangled(query, owner="Kramer")
        assert request.owner == "Kramer"
        assert isinstance(request.query, ir.EntangledQuery)


class TestScriptErrors:
    def test_execute_script_reports_failing_statement(self, system):
        script = "SELECT COUNT(*) FROM Flights; SELECT * FROM Nowhere; SELECT 1"
        with pytest.raises(ScriptError) as excinfo:
            system.execute_script(script)
        error = excinfo.value
        assert error.statement_index == 1
        assert "Nowhere" in error.statement_sql
        assert "statement #2" in str(error)
        assert isinstance(error.__cause__, UnknownTableError)
        assert isinstance(error.cause, UnknownTableError)


class TestSystemConfig:
    def test_config_object_builds_equivalent_system(self):
        config = SystemConfig(seed=7, max_group_size=8, auto_retry_on_data_change=True)
        system = YoutopiaSystem(config=config)
        assert system.config is config
        assert system.coordinator.config.max_group_size == 8

    def test_legacy_kwargs_fold_into_config(self):
        system = YoutopiaSystem(seed=3, max_group_size=16, use_constant_index=False)
        assert system.config.seed == 3
        assert system.config.max_group_size == 16
        assert system.config.use_constant_index is False

    def test_replace_returns_modified_copy(self):
        base = SystemConfig(seed=1)
        tweaked = base.replace(max_group_size=4)
        assert tweaked.seed == 1 and tweaked.max_group_size == 4
        assert base.max_group_size == 32
        assert "max_group_size" in base.as_dict()
