"""Unit tests for the exhaustive baseline evaluator (the correctness oracle)."""

from __future__ import annotations

import random

import pytest

from repro.core.baseline import ExhaustiveEvaluator
from repro.core.compiler import EntangledQueryBuilder, var
from repro.core.matching import Matcher, ProviderIndex
from repro.relalg.engine import QueryEngine, run_script
from repro.storage.database import Database


@pytest.fixture
def engine() -> QueryEngine:
    engine = QueryEngine(Database())
    run_script(
        engine,
        """
        CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT, price REAL);
        INSERT INTO Flights VALUES
            (122, 'Paris', 450.0), (123, 'Paris', 500.0), (136, 'Rome', 300.0);
        """,
    )
    return engine


def flight_query(owner, partner, dest="Paris", query_id=None):
    return (
        EntangledQueryBuilder(owner=owner)
        .head("Reservation", owner, var("fno"))
        .domain("fno", f"SELECT fno FROM Flights WHERE dest = '{dest}'")
        .require("Reservation", partner, var("fno"))
        .build(query_id=query_id or owner)
    )


def as_pool(*queries):
    return {query.query_id: query for query in queries}


class TestExhaustiveEvaluator:
    def test_pair_match_found(self, engine):
        evaluator = ExhaustiveEvaluator(engine, rng=random.Random(0))
        kramer, jerry = flight_query("Kramer", "Jerry"), flight_query("Jerry", "Kramer")
        pool = as_pool(kramer, jerry)
        group = evaluator.find_group(jerry, pool)
        assert group is not None
        contents = group.answer_relation_contents()["Reservation"]
        assert len({fno for _t, fno in contents}) == 1

    def test_unmatchable_query_returns_none(self, engine):
        evaluator = ExhaustiveEvaluator(engine)
        lonely = flight_query("Kramer", "Jerry")
        assert evaluator.find_group(lonely, as_pool(lonely)) is None

    def test_self_contained_query_answers_alone(self, engine):
        evaluator = ExhaustiveEvaluator(engine)
        solo = (
            EntangledQueryBuilder(owner="Newman")
            .head("Reservation", "Newman", var("fno"))
            .domain("fno", "SELECT fno FROM Flights WHERE dest = 'Rome'")
            .build(query_id="solo")
        )
        group = evaluator.find_group(solo, as_pool(solo))
        assert group is not None and group.query_ids == ["solo"]

    def test_group_size_limit_prevents_larger_matches(self, engine):
        evaluator = ExhaustiveEvaluator(engine, max_group_size=2)
        members = ["A", "B", "C"]
        queries = []
        for member in members:
            builder = (
                EntangledQueryBuilder(owner=member)
                .head("Reservation", member, var("fno"))
                .domain("fno", "SELECT fno FROM Flights WHERE dest = 'Paris'")
            )
            for other in members:
                if other != member:
                    builder.require("Reservation", other, var("fno"))
            queries.append(builder.build(query_id=member))
        pool = as_pool(*queries)
        assert evaluator.find_group(queries[0], pool) is None
        # a bigger budget finds it
        assert ExhaustiveEvaluator(engine, max_group_size=3).find_group(queries[0], pool)

    def test_agrees_with_matcher_on_pair_scenarios(self, engine):
        """Oracle check: optimized matcher and exhaustive semantics agree."""
        matcher = Matcher(engine, rng=random.Random(1))
        evaluator = ExhaustiveEvaluator(engine, rng=random.Random(1))
        scenarios = [
            (flight_query("Kramer", "Jerry"), flight_query("Jerry", "Kramer"), True),
            (flight_query("Kramer", "Jerry"), flight_query("Elaine", "Kramer"), False),
            (flight_query("Kramer", "Jerry", dest="Rome"), flight_query("Jerry", "Kramer"), False),
        ]
        for left, right, expected in scenarios:
            pool = as_pool(left, right)
            index = ProviderIndex()
            for query in pool.values():
                index.add_query(query)
            fast = matcher.find_group(right, pool, index) is not None
            slow = evaluator.find_group(right, pool) is not None
            assert fast == slow == expected
