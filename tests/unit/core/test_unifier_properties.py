"""Property-based tests for the matcher's :class:`Unifier`.

The structural matching phase leans on three guarantees of the union-find
trail machinery, exercised here over randomly generated operation sequences:

1. ``mark`` / ``undo_to`` round-trips: undoing to a mark restores *exactly*
   the union-find state (parents and class values) present at the mark.
2. Order independence: a conflict-free set of ``union`` / ``bind`` operations
   produces the same variable partition and the same per-class constants in
   whatever order it is applied.
3. Idempotence: re-applying an already-successful ``bind`` / ``union`` /
   ``unify_terms`` / ``unify_atoms`` succeeds again *without* growing the
   undo trail (so redundant unifications are free to backtrack over).

Uses ``hypothesis`` when it is installed and falls back to a deterministic
seeded sweep otherwise, per the repo's no-new-dependencies rule.
"""

from __future__ import annotations

import random

import pytest

from repro.core import ir
from repro.core.matching import _UNBOUND, Unifier, VarNode

try:  # pragma: no cover - exercised implicitly by whichever branch runs
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


NODES: list[VarNode] = [
    (query_id, name) for query_id in ("q1", "q2", "q3") for name in ("x", "y", "z", "w")
]
VALUES = list(range(4))


def apply_random_ops(unifier: Unifier, rng: random.Random, count: int) -> None:
    """A random mix of unions and binds (failures allowed — they must not mutate)."""
    for _ in range(count):
        if rng.random() < 0.5:
            unifier.union(rng.choice(NODES), rng.choice(NODES))
        else:
            unifier.bind(rng.choice(NODES), rng.choice(VALUES))


def snapshot(unifier: Unifier) -> tuple[dict, dict]:
    return dict(unifier._parent), dict(unifier._value)


def canonical_state(unifier: Unifier) -> dict[frozenset[VarNode], object]:
    """The observable state: the node partition and each class's constant."""
    classes: dict[VarNode, set[VarNode]] = {}
    for node in NODES:
        classes.setdefault(unifier.find(node), set()).add(node)
    return {
        frozenset(members): unifier.value_of(next(iter(members)))
        for members in classes.values()
    }


def conflict_free_script(rng: random.Random) -> list[tuple]:
    """Unions + binds guaranteed to succeed in any order.

    Nodes are pre-partitioned into target groups; unions only connect nodes
    within a group and every group gets at most one bind value (possibly
    issued several times through different member nodes).
    """
    nodes = list(NODES)
    rng.shuffle(nodes)
    group_count = rng.randint(1, 5)
    groups: list[list[VarNode]] = [[] for _ in range(group_count)]
    for index, node in enumerate(nodes):
        groups[index % group_count].append(node)
    script: list[tuple] = []
    for group in groups:
        for left, right in zip(group, group[1:]):
            script.append(("union", left, right))
        if group and rng.random() < 0.7:
            value = rng.choice(VALUES)
            for _ in range(rng.randint(1, 2)):
                script.append(("bind", rng.choice(group), value))
    return script


def run_script(script: list[tuple]) -> Unifier:
    unifier = Unifier()
    for op in script:
        if op[0] == "union":
            assert unifier.union(op[1], op[2])
        else:
            assert unifier.bind(op[1], op[2])
    return unifier


# -- the three properties, as plain seeded checks -------------------------------------


def check_mark_undo_roundtrip(seed: int) -> None:
    rng = random.Random(seed)
    unifier = Unifier()
    apply_random_ops(unifier, rng, rng.randint(0, 15))
    states = [snapshot(unifier)]
    marks = [unifier.mark()]
    for _ in range(rng.randint(1, 4)):
        apply_random_ops(unifier, rng, rng.randint(1, 10))
        states.append(snapshot(unifier))
        marks.append(unifier.mark())
    # undo the nested marks in reverse; each must restore its exact state
    for mark, state in zip(reversed(marks), reversed(states)):
        unifier.undo_to(mark)
        assert snapshot(unifier) == state


def check_order_independence(seed: int) -> None:
    rng = random.Random(seed)
    script = conflict_free_script(rng)
    shuffled = list(script)
    rng.shuffle(shuffled)
    assert canonical_state(run_script(script)) == canonical_state(run_script(shuffled))


def check_idempotence(seed: int) -> None:
    rng = random.Random(seed)
    unifier = Unifier()
    apply_random_ops(unifier, rng, rng.randint(0, 12))

    node, other = rng.sample(NODES, 2)
    value = rng.choice(VALUES)

    if unifier.bind(node, value):
        trail = unifier.mark()
        assert unifier.bind(node, value)
        assert unifier.mark() == trail

    if unifier.union(node, other):
        trail = unifier.mark()
        assert unifier.union(node, other)
        assert unifier.mark() == trail

    # unify_terms over already-unified variable terms must also be free
    left = ir.Variable("x")
    right = ir.Variable("y")
    if unifier.unify_terms("q1", left, "q2", right):
        trail = unifier.mark()
        state = snapshot(unifier)
        assert unifier.unify_terms("q1", left, "q2", right)
        assert unifier.mark() == trail
        assert snapshot(unifier) == state


def check_find_and_union_consistency(seed: int) -> None:
    """Absorbed from the former ``tests/property`` suite: find is idempotent,
    every class member reports the class constant, and a successful union
    really merges (a refused one implies conflicting constants)."""
    rng = random.Random(seed)
    unifier = Unifier()
    apply_random_ops(unifier, rng, rng.randint(0, 30))
    for node in NODES:
        root = unifier.find(node)
        assert unifier.find(root) == root
        assert unifier.value_of(node) == unifier.value_of(root)
    left, right = rng.sample(NODES, 2)
    if unifier.union(left, right):
        assert unifier.find(left) == unifier.find(right)
    else:
        value_left = unifier.value_of(left)
        value_right = unifier.value_of(right)
        assert value_left is not _UNBOUND
        assert value_right is not _UNBOUND
        assert value_left != value_right


def check_rebind_stability(seed: int) -> None:
    rng = random.Random(seed)
    unifier = Unifier()
    apply_random_ops(unifier, rng, rng.randint(0, 20))
    node = rng.choice(NODES)
    if unifier.bind(node, 7):
        assert unifier.bind(node, 7)
        assert not unifier.bind(node, 8)
        assert unifier.value_of(node) == 7


def check_failed_ops_do_not_mutate(seed: int) -> None:
    rng = random.Random(seed)
    unifier = Unifier()
    left, right = rng.sample(NODES, 2)
    assert unifier.bind(left, 0)
    assert unifier.bind(right, 1)
    state = snapshot(unifier)
    trail = unifier.mark()
    assert not unifier.union(left, right)  # conflicting class constants
    assert not unifier.bind(left, 1)  # conflicting rebind
    assert unifier.mark() == trail
    assert snapshot(unifier) == state
    # constant/constant term unification never touches the trail either
    assert not unifier.unify_terms("q1", ir.Constant(1), "q2", ir.Constant(2))
    assert snapshot(unifier) == state


def check_unify_atoms_atomicity(seed: int) -> None:
    """A failing unify_atoms may leave partial bindings — callers undo to the
    mark they took first; verify the mark covers everything it did."""
    rng = random.Random(seed)
    unifier = Unifier()
    apply_random_ops(unifier, rng, rng.randint(0, 10))
    state = snapshot(unifier)
    mark = unifier.mark()
    atom_left = ir.Atom("R", (ir.Variable("x"), ir.Constant(rng.choice(VALUES))))
    atom_right = ir.Atom("R", (ir.Constant(rng.choice(VALUES)), ir.Variable("y")))
    unifier.unify_atoms("q1", atom_left, "q2", atom_right)
    unifier.undo_to(mark)
    assert snapshot(unifier) == state


ALL_CHECKS = [
    check_mark_undo_roundtrip,
    check_order_independence,
    check_idempotence,
    check_find_and_union_consistency,
    check_rebind_stability,
    check_failed_ops_do_not_mutate,
    check_unify_atoms_atomicity,
]


if HAVE_HYPOTHESIS:

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_mark_undo_roundtrip(seed: int) -> None:
        check_mark_undo_roundtrip(seed)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_union_bind_order_independent(seed: int) -> None:
        check_order_independence(seed)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_substitution_idempotence(seed: int) -> None:
        check_idempotence(seed)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_find_and_union_consistency(seed: int) -> None:
        check_find_and_union_consistency(seed)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_rebind_stability(seed: int) -> None:
        check_rebind_stability(seed)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_failed_ops_do_not_mutate(seed: int) -> None:
        check_failed_ops_do_not_mutate(seed)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_unify_atoms_undo_covers_partial_work(seed: int) -> None:
        check_unify_atoms_atomicity(seed)

else:  # pragma: no cover - fallback when hypothesis is unavailable

    @pytest.mark.parametrize("seed", range(60))
    @pytest.mark.parametrize("check", ALL_CHECKS, ids=lambda fn: fn.__name__)
    def test_unifier_properties_seeded(check, seed: int) -> None:
        check(seed)


def test_value_of_unbound_sentinel() -> None:
    """Anchor the `_UNBOUND` contract the property helpers rely on."""
    unifier = Unifier()
    assert unifier.value_of(("q1", "x")) is _UNBOUND
    assert unifier.bind(("q1", "x"), 7)
    assert unifier.value_of(("q1", "x")) == 7
