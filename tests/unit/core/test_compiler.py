"""Unit tests for the entangled-query compiler and the programmatic builder."""

from __future__ import annotations

import pytest

from repro.core import ir
from repro.core.compiler import (
    EntangledQueryBuilder,
    compile_entangled,
    entangled_to_sql,
    var,
)
from repro.errors import CompilationError

KRAMER_SQL = (
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
)


class TestCompileFromSQL:
    def test_paper_example_structure(self):
        query = compile_entangled(KRAMER_SQL, owner="Kramer")
        assert query.owner == "Kramer"
        assert query.choose == 1
        assert len(query.heads) == 1
        head = query.heads[0]
        assert head.relation == "Reservation"
        assert head.terms == (ir.Constant("Kramer"), ir.Variable("fno"))
        assert len(query.domains) == 1
        assert query.domains[0].variables == ("fno",)
        assert len(query.answer_atoms) == 1
        assert query.answer_atoms[0].terms == (ir.Constant("Jerry"), ir.Variable("fno"))
        assert query.predicates == ()
        assert query.sql is not None

    def test_multi_head_flight_and_hotel(self):
        query = compile_entangled(
            "SELECT 'Jerry', fno INTO ANSWER Reservation, "
            "'Jerry', hid INTO ANSWER HotelReservation "
            "WHERE fno IN (SELECT fno FROM Flights) AND hid IN (SELECT hid FROM Hotels) "
            "AND ('Kramer', fno) IN ANSWER Reservation "
            "AND ('Kramer', hid) IN ANSWER HotelReservation CHOOSE 1"
        )
        assert [head.relation for head in query.heads] == ["Reservation", "HotelReservation"]
        assert len(query.domains) == 2
        assert len(query.answer_atoms) == 2

    def test_residual_predicates_are_kept(self):
        query = compile_entangled(
            "SELECT 'K', fno INTO ANSWER R "
            "WHERE fno IN (SELECT fno FROM Flights) AND fno > 100 AND fno < 200"
        )
        assert len(query.predicates) == 2
        assert all(predicate.variables == ("fno",) for predicate in query.predicates)

    def test_tuple_domain_constraint(self):
        query = compile_entangled(
            "SELECT 'K', fno, block INTO ANSWER SeatBlock "
            "WHERE (fno, block) IN (SELECT fno, block_id FROM Seats)"
        )
        assert query.domains[0].variables == ("fno", "block")

    def test_negative_constant_head(self):
        query = compile_entangled(
            "SELECT -1, fno INTO ANSWER R WHERE fno IN (SELECT fno FROM Flights)"
        )
        assert query.heads[0].terms[0] == ir.Constant(-1)

    def test_variable_names_are_lowercased(self):
        query = compile_entangled(
            "SELECT 'K', FNO INTO ANSWER R WHERE Fno IN (SELECT fno FROM Flights)"
        )
        assert query.heads[0].terms[1] == ir.Variable("fno")
        assert query.domains[0].variables == ("fno",)

    def test_choose_k_without_constraints_allowed(self):
        query = compile_entangled(
            "SELECT 'K', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM Flights) CHOOSE 3"
        )
        assert query.choose == 3


class TestCompileErrors:
    def test_plain_select_rejected(self):
        with pytest.raises(CompilationError):
            compile_entangled("SELECT fno FROM Flights")

    def test_from_clause_rejected(self):
        with pytest.raises(CompilationError):
            compile_entangled(
                "SELECT 'K', fno INTO ANSWER R FROM Flights WHERE dest = 'Paris'"
            )

    def test_null_in_head_rejected(self):
        with pytest.raises(CompilationError):
            compile_entangled("SELECT NULL, fno INTO ANSWER R WHERE fno IN (SELECT fno FROM F)")

    def test_arbitrary_expression_in_head_rejected(self):
        with pytest.raises(CompilationError):
            compile_entangled("SELECT fno + 1 INTO ANSWER R WHERE fno IN (SELECT fno FROM F)")

    def test_qualified_reference_rejected(self):
        with pytest.raises(CompilationError):
            compile_entangled("SELECT 'K', f.fno INTO ANSWER R WHERE fno IN (SELECT fno FROM F)")

    def test_negated_answer_constraint_rejected(self):
        with pytest.raises(CompilationError):
            compile_entangled(
                "SELECT 'K', fno INTO ANSWER R "
                "WHERE fno IN (SELECT fno FROM F) AND ('J', fno) NOT IN ANSWER R"
            )

    def test_answer_constraint_inside_or_rejected(self):
        with pytest.raises(CompilationError):
            compile_entangled(
                "SELECT 'K', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM F) "
                "AND (('J', fno) IN ANSWER R OR fno = 1)"
            )

    def test_choose_k_with_constraints_rejected(self):
        with pytest.raises(CompilationError):
            compile_entangled(
                "SELECT 'K', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM F) "
                "AND ('J', fno) IN ANSWER R CHOOSE 2"
            )


class TestBuilder:
    def test_builder_equivalent_to_sql_compilation(self):
        from_sql = compile_entangled(KRAMER_SQL, owner="Kramer")
        built = (
            EntangledQueryBuilder(owner="Kramer")
            .head("Reservation", "Kramer", var("fno"))
            .domain("fno", "SELECT fno FROM Flights WHERE dest = 'Paris'")
            .require("Reservation", "Jerry", var("fno"))
            .build()
        )
        assert built.heads == from_sql.heads
        assert built.answer_atoms == from_sql.answer_atoms
        assert built.domains[0].variables == from_sql.domains[0].variables
        assert built.choose == from_sql.choose

    def test_builder_predicate_parsing(self):
        query = (
            EntangledQueryBuilder()
            .head("R", "K", var("x"))
            .domain("x", "SELECT a FROM T")
            .predicate("x BETWEEN 1 AND 5")
            .build()
        )
        assert query.predicates[0].variables == ("x",)

    def test_builder_rejects_empty_heads_and_bad_choose(self):
        with pytest.raises(CompilationError):
            EntangledQueryBuilder().build()
        with pytest.raises(CompilationError):
            EntangledQueryBuilder().choose(0)

    def test_builder_rejects_choose_k_with_requirements(self):
        builder = (
            EntangledQueryBuilder()
            .head("R", "K", var("x"))
            .domain("x", "SELECT a FROM T")
            .require("R", "J", var("x"))
            .choose(2)
        )
        with pytest.raises(CompilationError):
            builder.build()

    def test_builder_rejects_answer_constraint_in_predicate(self):
        builder = EntangledQueryBuilder().head("R", "K", var("x"))
        with pytest.raises(CompilationError):
            builder.predicate("('J', x) IN ANSWER R")

    def test_builder_rejects_unusable_terms(self):
        with pytest.raises(CompilationError):
            EntangledQueryBuilder().head("R", object())

    def test_var_lowercases(self):
        assert var("FNO") == ir.Variable("fno")


class TestRendering:
    def test_entangled_to_sql_prefers_original_text(self):
        query = compile_entangled(KRAMER_SQL)
        assert entangled_to_sql(query) == query.sql

    def test_entangled_to_sql_for_built_queries(self):
        query = (
            EntangledQueryBuilder(owner="Jerry")
            .head("Reservation", "Jerry", var("fno"))
            .domain("fno", "SELECT fno FROM Flights")
            .require("Reservation", "Kramer", var("fno"))
            .build()
        )
        text = entangled_to_sql(query)
        assert "INTO ANSWER Reservation" in text
        assert "IN ANSWER Reservation" in text
        assert text.endswith("CHOOSE 1")
