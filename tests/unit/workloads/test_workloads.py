"""Unit tests for workload generation and the named demo scenarios."""

from __future__ import annotations

import pytest

from repro.core.coordinator import QueryStatus
from repro.core.safety import check
from repro.workloads import (
    SCENARIOS,
    WorkloadConfig,
    WorkloadGenerator,
    adhoc_chain,
    build_loaded_system,
    group_flight,
    group_flight_hotel,
    loaded_system,
    many_pairs,
    pair_flight,
    pair_flight_hotel,
    run_workload,
)


@pytest.fixture(scope="module")
def loaded():
    return build_loaded_system(num_flights=24, num_hotels=12, num_users=32, seed=0)


class TestGenerator:
    def test_pair_items_are_symmetric_and_safe(self, loaded):
        _system, service, _friends = loaded
        generator = WorkloadGenerator(service, WorkloadConfig(seed=1))
        items = generator.pair_items(3)
        assert len(items) == 6
        for item in items:
            assert check(item.query).admissible
        # partners reference each other
        first, second = items[0], items[1]
        assert first.owner in str(second.query.answer_atoms[0])
        assert second.owner in str(first.query.answer_atoms[0])

    def test_group_items_require_all_companions(self, loaded):
        _system, service, _friends = loaded
        generator = WorkloadGenerator(service, WorkloadConfig(seed=2))
        items = generator.group_items(1, 4)
        assert len(items) == 4
        assert all(len(item.query.answer_atoms) == 3 for item in items)

    def test_group_items_with_hotel_have_two_heads(self, loaded):
        _system, service, _friends = loaded
        generator = WorkloadGenerator(service, WorkloadConfig(seed=2))
        items = generator.group_items(1, 3, book_hotel=True)
        assert all(len(item.query.heads) == 2 for item in items)

    def test_unmatchable_items_reference_ghost_partners(self, loaded):
        _system, service, _friends = loaded
        generator = WorkloadGenerator(service, WorkloadConfig(seed=3))
        items = generator.unmatchable_items(2)
        assert all("ghost" in str(item.query.answer_atoms[0]) for item in items)

    def test_generate_respects_config_and_is_deterministic(self, loaded):
        _system, service, _friends = loaded
        config = WorkloadConfig(num_pairs=4, num_groups=1, group_size=3,
                                num_unmatchable=2, seed=9)
        first = WorkloadGenerator(service, config).generate()
        second = WorkloadGenerator(service, config).generate()
        assert len(first) == 4 * 2 + 3 + 2
        assert [item.owner for item in first] == [item.owner for item in second]

    def test_users_are_fresh_across_calls(self, loaded):
        _system, service, _friends = loaded
        generator = WorkloadGenerator(service, WorkloadConfig(seed=4))
        first = generator.pair_items(1)
        second = generator.pair_items(1)
        assert {item.owner for item in first}.isdisjoint({item.owner for item in second})


class TestRunWorkload:
    def test_run_workload_reports_counts(self):
        system, service, _friends = build_loaded_system(
            num_flights=12, num_hotels=6, num_users=8, seed=5
        )
        generator = WorkloadGenerator(service, WorkloadConfig(seed=5))
        items = generator.pair_items(2) + generator.unmatchable_items(1)
        result = run_workload(system, items)
        assert result.submitted == 5
        assert result.answered == 4
        assert result.pending == 1
        assert not result.all_answered
        assert result.statistics["groups_matched"] == 2
        assert result.elapsed_seconds >= 0


class TestScenarios:
    @pytest.mark.parametrize("scenario", [pair_flight, pair_flight_hotel])
    def test_pair_scenarios_coordinate(self, scenario):
        outcome = scenario(seed=0)
        assert outcome.coordinated
        assert len(outcome.answer_relation("Reservation")) == 2

    def test_group_scenarios_coordinate(self):
        outcome = group_flight(group_size=4, seed=0)
        assert outcome.coordinated
        flights = {fno for _t, fno in outcome.answer_relation("Reservation")}
        assert len(flights) == 1

        hotel_outcome = group_flight_hotel(group_size=3, seed=0)
        assert hotel_outcome.coordinated
        assert len(hotel_outcome.answer_relation("HotelReservation")) == 3

    def test_many_pairs_scenario(self):
        outcome = many_pairs(num_pairs=5, seed=0)
        assert outcome.coordinated
        assert outcome.result.submitted == 10

    def test_adhoc_chain_scenario(self):
        outcome = adhoc_chain(length=3, seed=0)
        assert outcome.coordinated
        # the whole chain ends up on one flight
        assert len({fno for _t, fno in outcome.answer_relation("Reservation")}) == 1

    def test_loaded_system_with_noise(self):
        outcome = loaded_system(num_pairs=10, num_unmatchable=3, seed=0)
        assert outcome.result.submitted == 23
        assert outcome.result.answered == 20
        assert outcome.result.pending == 3
        assert outcome.system.coordinator.pending_count() == 3

    def test_scenario_registry_contains_all(self):
        assert set(SCENARIOS) == {
            "pair_flight", "pair_flight_hotel", "many_pairs", "group_flight",
            "group_flight_hotel", "adhoc_chain", "loaded_system",
        }
