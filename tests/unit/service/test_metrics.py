"""Unit tests for the transport metrics block and its wire round trip."""

from __future__ import annotations

import threading

from repro.service.metrics import TransportMetrics


class TestTransportMetrics:
    def test_counters_track_lifecycles(self):
        metrics = TransportMetrics()
        metrics.connection_opened()
        metrics.connection_opened()
        metrics.connection_closed()
        metrics.request_started()
        metrics.request_started()
        metrics.request_finished()
        metrics.request_rejected()
        metrics.add_bytes_in(100)
        metrics.add_bytes_in(50)
        metrics.add_bytes_out(200)
        assert metrics.snapshot() == {
            "connections_open": 1,
            "connections_total": 2,
            "requests_in_flight": 1,
            "requests_total": 2,
            "bytes_in": 150,
            "bytes_out": 200,
            "rejected_backpressure": 1,
        }

    def test_snapshot_is_a_copy(self):
        metrics = TransportMetrics()
        snapshot = metrics.snapshot()
        metrics.connection_opened()
        assert snapshot["connections_open"] == 0

    def test_concurrent_updates_do_not_lose_counts(self):
        metrics = TransportMetrics()
        rounds = 500

        def hammer() -> None:
            for _ in range(rounds):
                metrics.request_started()
                metrics.add_bytes_in(1)
                metrics.request_finished()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = metrics.snapshot()
        assert snapshot["requests_total"] == 8 * rounds
        assert snapshot["bytes_in"] == 8 * rounds
        assert snapshot["requests_in_flight"] == 0


class TestThreadedServerMetrics:
    def test_threaded_server_populates_transport_stats(self):
        from repro.service import RemoteService, SystemConfig
        from repro.service.remote import CoordinationServer

        server = CoordinationServer(config=SystemConfig(seed=0))
        host, port = server.start()
        try:
            with RemoteService.connect(host, port) as client:
                client.query("SELECT 1")
                transport = dict(client.stats().transport)
                assert transport["connections_open"] == 1
                assert transport["connections_total"] == 1
                assert transport["requests_total"] >= 2  # hello + query + stats
                assert transport["bytes_in"] > 0 and transport["bytes_out"] > 0
                assert transport["rejected_backpressure"] == 0  # never rejects
        finally:
            server.stop()

    def test_connection_close_decrements_open_count(self):
        from repro.service import RemoteService, SystemConfig
        from repro.service.remote import CoordinationServer

        server = CoordinationServer(config=SystemConfig(seed=0))
        host, port = server.start()
        try:
            client = RemoteService.connect(host, port)
            assert server.metrics.snapshot()["connections_open"] == 1
            client.close()
            deadline = 50
            while server.metrics.snapshot()["connections_open"] and deadline:
                import time

                time.sleep(0.01)
                deadline -= 1
            assert server.metrics.snapshot()["connections_open"] == 0
            assert server.metrics.snapshot()["connections_total"] == 1
        finally:
            server.stop()
