"""Unit tests for the transport-agnostic coordination service layer."""

from __future__ import annotations

import pytest

from repro.core.coordinator import QueryStatus
from repro.core.system import YoutopiaSystem
from repro.errors import CoordinationTimeoutError, EntanglementError, PlanError
from repro.service import (
    AnswerEnvelope,
    CoordinationService,
    InProcessService,
    IntrospectionService,
    RelationResult,
    RequestHandle,
    SubmitRequest,
    SystemConfig,
)

SETUP = """
CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT);
INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (136, 'Rome');
"""

KRAMER_SQL = (
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
)
JERRY_SQL = (
    "SELECT 'Jerry', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1"
)


@pytest.fixture
def service() -> InProcessService:
    service = InProcessService(config=SystemConfig(seed=0))
    service.execute_script(SETUP)
    service.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return service


class TestDTOs:
    def test_submit_request_needs_exactly_one_payload(self):
        with pytest.raises(ValueError):
            SubmitRequest()
        with pytest.raises(ValueError):
            SubmitRequest(sql="x", query=object())  # type: ignore[arg-type]
        assert SubmitRequest(sql="SELECT 1").payload() == "SELECT 1"

    def test_relation_result_scalar_and_iteration(self, service):
        result = service.query("SELECT COUNT(*) FROM Flights")
        assert isinstance(result, RelationResult)
        assert result.scalar() == 3
        rows = service.query("SELECT fno FROM Flights ORDER BY fno")
        assert len(rows) == 3
        assert list(rows) == [(122,), (123,), (136,)]
        with pytest.raises(ValueError):
            rows.scalar()

    def test_query_rejects_entangled_sql(self, service):
        with pytest.raises(PlanError):
            service.query(KRAMER_SQL)


class TestProtocols:
    def test_inprocess_satisfies_both_protocols(self, service):
        assert isinstance(service, CoordinationService)
        assert isinstance(service, IntrospectionService)

    def test_service_builds_own_system_when_not_given_one(self):
        fresh = InProcessService()
        assert isinstance(fresh.system, YoutopiaSystem)
        assert fresh.stats().pending == 0

    def test_system_service_accessor_round_trips(self):
        system = YoutopiaSystem(seed=0)
        service = system.service()
        assert service.system is system


class TestSubmission:
    def test_submit_returns_future_style_handle(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer", tag="k"))
        assert isinstance(kramer, RequestHandle)
        assert kramer.owner == "Kramer" and kramer.tag == "k"
        assert not kramer.done()
        jerry = service.submit(JERRY_SQL, owner="Jerry")
        assert jerry.done() and kramer.done()
        assert kramer.is_answered and jerry.is_answered

    def test_result_returns_answer_envelope(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
        envelope = kramer.result(timeout=1.0)
        assert isinstance(envelope, AnswerEnvelope)
        assert envelope.owner == "Kramer"
        assert kramer.query_id in envelope.group and len(envelope.group) == 2
        (relation, values), *_ = envelope.all_tuples()
        assert relation == "Reservation" and values[0] == "Kramer"

    def test_result_timeout_raises(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        with pytest.raises(CoordinationTimeoutError):
            kramer.result(timeout=0.01)

    def test_exception_surfaces_cancellation(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        kramer.cancel()
        assert kramer.cancelled()
        error = kramer.exception()
        assert isinstance(error, EntanglementError)
        with pytest.raises(EntanglementError):
            kramer.result(timeout=0.1)

    def test_done_callback_fires_on_answer(self, service):
        fired: list[str] = []
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        kramer.add_done_callback(lambda handle: fired.append(handle.query_id))
        assert fired == []
        service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
        assert fired == [kramer.query_id]

    def test_done_callback_fires_immediately_when_terminal(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
        fired: list[str] = []
        kramer.add_done_callback(lambda handle: fired.append(handle.query_id))
        assert fired == [kramer.query_id]

    def test_broken_callback_does_not_poison_coordination(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        kramer.add_done_callback(lambda _handle: 1 / 0)
        jerry = service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
        assert kramer.is_answered and jerry.is_answered

    def test_handle_equality_is_by_query_id(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        assert kramer == service.request(kramer.query_id)
        assert kramer in {service.request(kramer.query_id)}


class TestBatchSubmission:
    def test_submit_many_answers_cross_referencing_pair(self, service):
        kramer, jerry = service.submit_many(
            [
                SubmitRequest(sql=KRAMER_SQL, owner="Kramer", tag="left"),
                SubmitRequest(sql=JERRY_SQL, owner="Jerry", tag="right"),
            ]
        )
        assert kramer.is_answered and jerry.is_answered
        assert (kramer.tag, jerry.tag) == ("left", "right")
        stats = service.stats()
        assert stats["match_attempts"] == 1
        assert stats["groups_matched"] == 1
        assert stats["failed_match_attempts"] == 0

    def test_submit_many_rejected_item_does_not_abort_batch(self, service):
        unsafe = (
            "SELECT 'Loner', fno INTO ANSWER Reservation "
            "WHERE ('Ghost', fno) IN ANSWER Reservation"
        )
        handles = service.submit_many(
            [
                SubmitRequest(sql=KRAMER_SQL, owner="Kramer"),
                SubmitRequest(sql=unsafe, owner="Loner"),
                SubmitRequest(sql=JERRY_SQL, owner="Jerry"),
            ]
        )
        assert handles[0].is_answered and handles[2].is_answered
        assert handles[1].status is QueryStatus.REJECTED
        assert handles[1].error
        assert handles[1].exception() is not None

    def test_submit_many_default_owner_applies(self, service):
        (handle,) = service.submit_many([KRAMER_SQL], owner="Kramer")
        assert handle.owner == "Kramer"

    def test_duplicate_batch_handle_is_terminal_and_self_contained(self, service):
        """A batch-rejected duplicate shares its id with the original; its
        handle must resolve against its own record, not the registered one."""
        from repro.core.compiler import compile_entangled

        query = compile_entangled(KRAMER_SQL, owner="Kramer")
        original, duplicate = service.submit_many([query, query])
        assert original.status is QueryStatus.PENDING
        assert duplicate.status is QueryStatus.REJECTED
        with pytest.raises(EntanglementError):
            duplicate.result(timeout=1.0)
        fired: list[str] = []
        duplicate.add_done_callback(lambda handle: fired.append(handle.status.value))
        assert fired == ["rejected"]
        # the original registration is untouched by the duplicate's handle
        assert original.status is QueryStatus.PENDING

    def test_callback_sees_whole_group_in_final_state(self, service):
        """Done callbacks fire only after every group member is answered."""
        observed: dict[str, object] = {}
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))

        def observe(handle) -> None:
            partner_id = next(
                qid for qid in handle.group_query_ids if qid != handle.query_id
            )
            partner = service.request(partner_id)
            observed["partner_status"] = partner.status
            observed["partner_result"] = partner.result(timeout=0)

        kramer.add_done_callback(observe)
        service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
        assert observed["partner_status"] is QueryStatus.ANSWERED
        assert observed["partner_result"].owner == "Jerry"

    def test_wait_many_returns_envelope_per_query(self, service):
        handles = service.submit_many(
            [
                SubmitRequest(sql=KRAMER_SQL, owner="Kramer"),
                SubmitRequest(sql=JERRY_SQL, owner="Jerry"),
            ]
        )
        envelopes = service.wait_many([handle.query_id for handle in handles], timeout=1.0)
        assert [envelope.owner for envelope in envelopes] == ["Kramer", "Jerry"]


class TestIntrospection:
    def test_requests_pending_and_retry(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        assert [query.query_id for query in service.pending_queries()] == [kramer.query_id]
        assert service.requests() == [kramer]
        assert service.retry_pending() == 0
        stats = service.stats()
        assert stats.pending == 1
        assert stats["queries_registered"] == 1

    def test_stats_includes_transaction_counters(self, service):
        counters = service.stats().as_dict()
        assert "transactions_committed" in counters
        assert "transactions_rolled_back" in counters
