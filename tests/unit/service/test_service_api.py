"""Unit tests for the transport-agnostic coordination service layer.

The behavioural scenarios live in ``tests/service_conformance.py`` and run
here against :class:`~repro.service.InProcessService`;
``tests/integration/test_remote_conformance.py`` runs the same classes
against a live network transport.  This module keeps only what is specific
to the in-process implementation: DTO validation and the protocol /
constructor surface.
"""

from __future__ import annotations

import pytest

from service_conformance import (
    SETUP,
    BatchConformance,
    ConcurrencyConformance,
    IntrospectionConformance,
    PlainQueryConformance,
    PolicyConformance,
    SubmissionConformance,
)
from repro.core.system import YoutopiaSystem
from repro.service import (
    CoordinationService,
    InProcessService,
    IntrospectionService,
    RelationResult,
    RequestHandle,
    SubmitRequest,
    SystemConfig,
)


@pytest.fixture
def service() -> InProcessService:
    service = InProcessService(config=SystemConfig(seed=0))
    service.execute_script(SETUP)
    service.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return service


class TestDTOs:
    def test_submit_request_needs_exactly_one_payload(self):
        with pytest.raises(ValueError):
            SubmitRequest()
        with pytest.raises(ValueError):
            SubmitRequest(sql="x", query=object())  # type: ignore[arg-type]
        assert SubmitRequest(sql="SELECT 1").payload() == "SELECT 1"

    def test_relation_result_type(self, service):
        assert isinstance(service.query("SELECT COUNT(*) FROM Flights"), RelationResult)


class TestProtocols:
    def test_inprocess_satisfies_both_protocols(self, service):
        assert isinstance(service, CoordinationService)
        assert isinstance(service, IntrospectionService)

    def test_service_builds_own_system_when_not_given_one(self):
        fresh = InProcessService()
        assert isinstance(fresh.system, YoutopiaSystem)
        assert fresh.stats().pending == 0

    def test_system_service_accessor_round_trips(self):
        system = YoutopiaSystem(seed=0)
        service = system.service()
        assert service.system is system

    def test_submit_returns_request_handle(self, service):
        from service_conformance import KRAMER_SQL

        handle = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        assert isinstance(handle, RequestHandle)


# -- transport-agnostic conformance, in-process flavour -------------------------------------


class TestSubmission(SubmissionConformance):
    pass


class TestBatchSubmission(BatchConformance):
    pass


class TestPlainQueries(PlainQueryConformance):
    pass


class TestIntrospection(IntrospectionConformance):
    pass


class TestConcurrency(ConcurrencyConformance):
    pass


class TestPolicy(PolicyConformance):
    pass
