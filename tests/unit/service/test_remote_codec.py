"""Unit tests for the remote wire format (framing + typed error marshalling)."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro import errors
from repro.service.remote import codec


def roundtrip(payload: dict) -> dict:
    """Write one frame through a socketpair and read it back."""
    left, right = socket.socketpair()
    try:
        left.sendall(codec.encode_frame(payload))
        left.shutdown(socket.SHUT_WR)
        return codec.read_frame(right)
    finally:
        left.close()
        right.close()


class TestFraming:
    def test_frame_roundtrip(self):
        payload = codec.request_frame(7, "submit", {"item": {"sql": "SELECT 1", "owner": "K"}})
        assert roundtrip(payload) == payload

    def test_frames_preserve_order_on_one_stream(self):
        left, right = socket.socketpair()
        try:
            for index in range(5):
                left.sendall(codec.encode_frame(codec.response_frame(index, index * 10)))
            left.shutdown(socket.SHUT_WR)
            received = [codec.read_frame(right) for _ in range(5)]
            assert [frame["id"] for frame in received] == list(range(5))
            assert codec.read_frame(right) is None  # clean EOF between frames
        finally:
            left.close()
            right.close()

    def test_partial_delivery_is_reassembled(self):
        """A frame trickling in byte-by-byte still decodes."""
        payload = codec.push_frame("done", {"query_id": "q1", "status": "answered"})
        raw = codec.encode_frame(payload)
        left, right = socket.socketpair()
        try:
            def drip() -> None:
                for offset in range(len(raw)):
                    left.sendall(raw[offset : offset + 1])
                left.shutdown(socket.SHUT_WR)

            writer = threading.Thread(target=drip)
            writer.start()
            assert codec.read_frame(right) == payload
            writer.join(timeout=5.0)
        finally:
            left.close()
            right.close()

    def test_truncated_frame_raises_protocol_error(self):
        raw = codec.encode_frame(codec.response_frame(1, "x"))
        left, right = socket.socketpair()
        try:
            left.sendall(raw[:-3])
            left.shutdown(socket.SHUT_WR)
            with pytest.raises(errors.ProtocolError, match="mid-frame"):
                codec.read_frame(right)
        finally:
            left.close()
            right.close()

    def test_version_mismatch_raises_protocol_error(self):
        frame = codec.response_frame(1, "x")
        frame["v"] = codec.PROTOCOL_VERSION + 1
        with pytest.raises(errors.ProtocolError, match="version mismatch"):
            roundtrip(frame)

    def test_non_json_body_raises_protocol_error(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 4) + b"\xff\xfe\x00\x01")
            left.shutdown(socket.SHUT_WR)
            with pytest.raises(errors.ProtocolError, match="not valid JSON"):
                codec.read_frame(right)
        finally:
            left.close()
            right.close()

    def test_oversized_declared_length_rejected_before_reading(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", codec.MAX_FRAME_BYTES + 1))
            left.shutdown(socket.SHUT_WR)
            with pytest.raises(errors.ProtocolError, match="exceeds"):
                codec.read_frame(right)
        finally:
            left.close()
            right.close()

    def test_non_object_payload_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 2) + b"[]")
            left.shutdown(socket.SHUT_WR)
            with pytest.raises(errors.ProtocolError, match="JSON object"):
                codec.read_frame(right)
        finally:
            left.close()
            right.close()

    def test_unserialisable_payload_raises_protocol_error(self):
        with pytest.raises(errors.ProtocolError, match="JSON-serialisable"):
            codec.encode_frame({"v": codec.PROTOCOL_VERSION, "bad": object()})


class TestErrorMarshalling:
    def marshal(self, exc: BaseException) -> Exception:
        return codec.decode_error(codec.encode_error(exc))

    def test_same_type_and_message_survive(self):
        for original in (
            errors.SafetyError("unsafe variable 'x'"),
            errors.UniquenessError("ambiguous origin"),
            errors.PlanError("expected a plain SELECT"),
            errors.CompilationError("bad head"),
            errors.EvaluationError("division by zero"),
            errors.ProtocolError("bad frame"),
        ):
            decoded = self.marshal(original)
            assert type(decoded) is type(original)
            assert str(decoded) == str(original)

    def test_structured_attributes_survive(self):
        timeout = self.marshal(errors.CoordinationTimeoutError("q7", 1.5))
        assert isinstance(timeout, errors.CoordinationTimeoutError)
        assert timeout.query_id == "q7" and timeout.timeout == 1.5

        not_pending = self.marshal(errors.QueryNotPendingError("q3"))
        assert isinstance(not_pending, errors.QueryNotPendingError)
        assert not_pending.query_id == "q3"

        answered = self.marshal(errors.QueryAlreadyAnsweredError("q4"))
        assert isinstance(answered, errors.QueryAlreadyAnsweredError)
        assert answered.query_id == "q4" and "durable" in str(answered)

        unknown_table = self.marshal(errors.UnknownTableError("Flights"))
        assert isinstance(unknown_table, errors.UnknownTableError)
        assert unknown_table.table_name == "Flights"

        unknown_column = self.marshal(errors.UnknownColumnError("dest", "Flights"))
        assert isinstance(unknown_column, errors.UnknownColumnError)
        assert (unknown_column.column, unknown_column.table) == ("dest", "Flights")

        unavailable = self.marshal(errors.ServiceUnavailableError("gone fishing"))
        assert isinstance(unavailable, errors.ServiceUnavailableError)
        assert unavailable.reason == "gone fishing"

    def test_parse_error_position_survives_without_duplicating_location(self):
        decoded = self.marshal(errors.ParseError("boom", line=3, column=7))
        assert isinstance(decoded, errors.ParseError)
        assert decoded.line == 3 and decoded.column == 7
        assert str(decoded).count("line 3") == 1

    def test_script_error_nests_its_cause(self):
        original = errors.ScriptError(2, "SELECT * FROM Nowhere", errors.UnknownTableError("Nowhere"))
        decoded = self.marshal(original)
        assert isinstance(decoded, errors.ScriptError)
        assert decoded.statement_index == 2
        assert decoded.statement_sql == "SELECT * FROM Nowhere"
        assert isinstance(decoded.cause, errors.UnknownTableError)
        assert decoded.cause.table_name == "Nowhere"

    def test_unknown_subclass_degrades_to_marshalled_ancestor(self):
        class ExoticStorageError(errors.StorageError):
            pass

        decoded = self.marshal(ExoticStorageError("disk on fire"))
        assert type(decoded) is errors.StorageError
        assert "disk on fire" in str(decoded)

    def test_unknown_code_becomes_protocol_error(self):
        decoded = codec.decode_error({"code": "FlyingSaucerError", "message": "??"})
        assert isinstance(decoded, errors.ProtocolError)
        assert "FlyingSaucerError" in str(decoded)

    def test_recognised_code_with_garbage_data_keeps_message(self):
        decoded = codec.decode_error(
            {"code": "CoordinationTimeoutError", "message": "q9 timed out", "data": {}}
        )
        assert isinstance(decoded, errors.YoutopiaError)
        assert "q9 timed out" in str(decoded)


class TestValueCodecs:
    def test_relation_result_roundtrip(self):
        from repro.service.api import RelationResult

        original = RelationResult(
            command="SELECT", columns=("fno", "dest"), rows=((122, "Paris"), (136, None)), affected=0
        )
        decoded = codec.decode_relation_result(codec.encode_relation_result(original))
        assert decoded == original
        assert isinstance(decoded.rows[0], tuple)

    def test_answer_roundtrip(self):
        from repro.core import ir

        original = ir.GroundAnswer(
            query_id="q1",
            binding={"fno": 122},
            tuples={"Reservation": (("Kramer", 122),)},
        )
        decoded = codec.decode_answer("q1", codec.encode_answer(original))
        assert decoded == original
        assert decoded.tuples["Reservation"][0] == ("Kramer", 122)
