"""Unit tests for the asyncio-native service layer.

Two angles on :class:`~repro.service.aio.AsyncInProcessService`:

* the **async-adapter runner** — every transport-agnostic scenario class
  from ``tests/service_conformance.py`` runs against the async service
  through :class:`~repro.service.aio.bridge.BridgedService`, certifying
  that the async stack is behaviourally indistinguishable from the sync
  in-process service;
* **native asyncio semantics** the sync suite cannot express: ``await
  handle``, loop-side done callbacks, timeout mapping, concurrent awaiters
  multiplexed over one loop, protocol conformance of the async surface.

The integration twin (``tests/integration/test_aio_conformance.py``) does
the same against a live :class:`AsyncCoordinationServer`.
"""

from __future__ import annotations

import asyncio

import pytest

from service_conformance import (
    JERRY_SQL,
    KRAMER_SQL,
    SETUP,
    BatchConformance,
    ConcurrencyConformance,
    IntrospectionConformance,
    PlainQueryConformance,
    SubmissionConformance,
    fresh_owner,
    pair_sql,
    unmatchable_sql,
)
from repro.errors import CoordinationTimeoutError, EntanglementError, QueryNotPendingError
from repro.service import SubmitRequest, SystemConfig
from repro.service.aio import (
    AsyncCoordinationService,
    AsyncInProcessService,
    AsyncIntrospectionService,
    AsyncRequestHandle,
    BridgedService,
)


# -- the async-adapter runner: sync conformance over the bridged async service ------------------


@pytest.fixture
def service():
    bridged = BridgedService(service=AsyncInProcessService(config=SystemConfig(seed=0)))
    bridged.execute_script(SETUP)
    bridged.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    yield bridged
    bridged.close()


class TestBridgedSubmission(SubmissionConformance):
    pass


class TestBridgedBatchSubmission(BatchConformance):
    pass


class TestBridgedPlainQueries(PlainQueryConformance):
    pass


class TestBridgedIntrospection(IntrospectionConformance):
    pass


class TestBridgedConcurrency(ConcurrencyConformance):
    pass


# -- native asyncio semantics -------------------------------------------------------------------


def run(coro):
    return asyncio.run(coro)


async def fresh_async_service() -> AsyncInProcessService:
    service = AsyncInProcessService(config=SystemConfig(seed=0))
    await service.execute_script(SETUP)
    await service.declare_answer_relation(
        "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
    )
    return service


class TestAsyncProtocols:
    def test_async_service_satisfies_both_protocols(self):
        async def scenario():
            async with await fresh_async_service() as service:
                assert isinstance(service, AsyncCoordinationService)
                assert isinstance(service, AsyncIntrospectionService)

        run(scenario())

    def test_submit_returns_awaitable_handle(self):
        async def scenario():
            async with await fresh_async_service() as service:
                handle = await service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
                assert isinstance(handle, AsyncRequestHandle)
                assert not handle.done()

        run(scenario())


class TestAwaitableHandles:
    def test_await_handle_yields_answer_envelope(self):
        async def scenario():
            async with await fresh_async_service() as service:
                kramer = await service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
                jerry = await service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
                envelope = await kramer
                assert envelope.owner == "Kramer"
                assert kramer.query_id in envelope.group and len(envelope.group) == 2
                assert (await jerry).owner == "Jerry"

        run(scenario())

    def test_many_tasks_await_one_handle(self):
        """One pending query, many concurrent awaiters — all resolve."""

        async def scenario():
            async with await fresh_async_service() as service:
                kramer = await service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
                waiters = [asyncio.ensure_future(kramer.result(timeout=5.0)) for _ in range(16)]
                await asyncio.sleep(0)
                await service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
                envelopes = await asyncio.gather(*waiters)
                assert {envelope.owner for envelope in envelopes} == {"Kramer"}

        run(scenario())

    def test_result_timeout_raises_typed_error_with_real_deadline(self):
        async def scenario():
            async with await fresh_async_service() as service:
                handle = await service.submit(
                    SubmitRequest(sql=unmatchable_sql(fresh_owner("at")))
                )
                with pytest.raises(CoordinationTimeoutError) as excinfo:
                    await handle.result(timeout=0.05)
                assert excinfo.value.timeout == pytest.approx(0.05)
                # the timeout abandoned the wait without poisoning the handle
                assert not handle.done()

        run(scenario())

    def test_timeout_does_not_kill_other_awaiters(self):
        """wait_for cancellation must not propagate into the shared future."""

        async def scenario():
            async with await fresh_async_service() as service:
                kramer = await service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
                with pytest.raises(CoordinationTimeoutError):
                    await kramer.result(timeout=0.01)
                await service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
                assert (await kramer.result(timeout=5.0)).owner == "Kramer"

        run(scenario())

    def test_await_cancelled_query_raises_entanglement_error(self):
        async def scenario():
            async with await fresh_async_service() as service:
                handle = await service.submit(
                    SubmitRequest(sql=unmatchable_sql(fresh_owner("ac")))
                )
                await handle.cancel()
                assert handle.cancelled()
                with pytest.raises(EntanglementError):
                    await handle
                assert isinstance(await handle.exception(), EntanglementError)

        run(scenario())

    def test_done_callback_runs_on_the_loop(self):
        async def scenario():
            async with await fresh_async_service() as service:
                fired: list[str] = []
                kramer = await service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
                kramer.add_done_callback(lambda handle: fired.append(handle.query_id))
                await service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
                await kramer
                await asyncio.sleep(0)  # callbacks run via call_soon
                assert fired == [kramer.query_id]
                # terminal registration still fires (next loop iteration)
                kramer.add_done_callback(lambda handle: fired.append("again"))
                await asyncio.sleep(0)
                assert fired == [kramer.query_id, "again"]

        run(scenario())

    def test_broken_callback_does_not_poison_the_loop(self):
        async def scenario():
            async with await fresh_async_service() as service:
                kramer = await service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
                kramer.add_done_callback(lambda _handle: 1 / 0)
                jerry = await service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
                assert (await jerry).owner == "Jerry"
                assert (await kramer).owner == "Kramer"

        run(scenario())


class TestAsyncServiceSurface:
    def test_wait_is_callback_driven_and_typed(self):
        async def scenario():
            async with await fresh_async_service() as service:
                kramer = await service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
                waiter = asyncio.ensure_future(service.wait(kramer.query_id, timeout=5.0))
                await asyncio.sleep(0)
                await service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
                assert (await waiter).owner == "Kramer"
                with pytest.raises(QueryNotPendingError):
                    await service.wait("no-such-query")

        run(scenario())

    def test_repeated_timed_out_waits_share_one_coordinator_callback(self):
        """A timeout-retry polling loop must not leak a callback per poll."""

        async def scenario():
            async with await fresh_async_service() as service:
                handle = await service.submit(
                    SubmitRequest(sql=unmatchable_sql(fresh_owner("wl")))
                )
                for _ in range(5):
                    with pytest.raises(CoordinationTimeoutError):
                        await service.wait(handle.query_id, timeout=0.01)
                registered = service.system.coordinator._done_callbacks.get(
                    handle.query_id, []
                )
                assert len(registered) == 1  # the shared wait handle's bridge

        run(scenario())

    def test_wait_many_shares_one_deadline(self):
        async def scenario():
            async with await fresh_async_service() as service:
                handles = await service.submit_many(
                    [
                        SubmitRequest(sql=KRAMER_SQL, owner="Kramer"),
                        SubmitRequest(sql=JERRY_SQL, owner="Jerry"),
                    ]
                )
                envelopes = await service.wait_many(
                    [handle.query_id for handle in handles], timeout=5.0
                )
                assert [envelope.owner for envelope in envelopes] == ["Kramer", "Jerry"]

        run(scenario())

    def test_thousands_of_pending_queries_hold_no_threads(self):
        """The multiplexing claim: N idle pending awaits ≪ N threads."""

        async def scenario():
            import threading

            async with await fresh_async_service() as service:
                before = threading.active_count()
                handles = await service.submit_many(
                    [
                        SubmitRequest(sql=unmatchable_sql(fresh_owner("mp")))
                        for _ in range(200)
                    ]
                )
                waiters = [
                    asyncio.ensure_future(handle.result(timeout=30.0)) for handle in handles
                ]
                await asyncio.sleep(0.05)
                # 200 suspended waits must not have spawned 200 threads
                assert threading.active_count() - before < 20
                for waiter in waiters:
                    waiter.cancel()
                stats = await service.stats()
                assert stats.pending == 200

        run(scenario())

    def test_stats_transport_is_empty_in_process(self):
        async def scenario():
            async with await fresh_async_service() as service:
                stats = await service.stats()
                assert dict(stats.transport) == {}

        run(scenario())

    def test_pair_of_owners_coordinates_through_gather(self):
        async def scenario():
            async with await fresh_async_service() as service:
                left, right = fresh_owner("ga"), fresh_owner("gb")
                first, second = await asyncio.gather(
                    service.submit(SubmitRequest(sql=pair_sql(left, right), owner=left)),
                    service.submit(SubmitRequest(sql=pair_sql(right, left), owner=right)),
                )
                first_env, second_env = await asyncio.gather(
                    first.result(timeout=5.0), second.result(timeout=5.0)
                )
                assert {first_env.owner, second_env.owner} == {left, right}
                booked = dict(await service.answers("Reservation"))
                assert booked[left] == booked[right]

        run(scenario())
