"""Unit tests for the travel middle tier (TravelService)."""

from __future__ import annotations

import pytest

from repro.apps.travel.dataset import generate_dataset, install_and_load
from repro.apps.travel.models import TripRequest
from repro.apps.travel.service import TravelService
from repro.apps.travel.social import FriendGraph
from repro.core.coordinator import QueryStatus
from repro.core.system import YoutopiaSystem
from repro.errors import BookingError


@pytest.fixture
def setup():
    system = YoutopiaSystem(seed=0)
    install_and_load(system, generate_dataset(num_flights=24, num_hotels=12, num_users=8, seed=7))
    friends = FriendGraph(["Jerry", "Kramer", "Elaine", "George", "Newman"])
    friends.add_friendship("Jerry", "Kramer")
    friends.add_friendship("Jerry", "Elaine")
    friends.add_friendship("Kramer", "Elaine")
    friends.add_friendship("Kramer", "George")
    service = TravelService(system, friends=friends)
    return system, service


class TestSearchAndBrowse:
    def test_search_flights_filters_and_sorts(self, setup):
        _system, service = setup
        flights = service.search_flights("Paris")
        assert flights
        assert all(flight.dest == "Paris" for flight in flights)
        prices = [flight.price for flight in flights]
        assert prices == sorted(prices)

    def test_search_flights_with_price_cap(self, setup):
        _system, service = setup
        capped = service.search_flights("Paris", max_price=500)
        assert all(flight.price <= 500 for flight in capped)

    def test_search_hotels(self, setup):
        _system, service = setup
        hotels = service.search_hotels("Paris", min_stars=3)
        assert all(hotel.stars >= 3 and hotel.city == "Paris" for hotel in hotels)

    def test_flight_lookup_unknown_number(self, setup):
        _system, service = setup
        with pytest.raises(BookingError):
            service.flight(99999)

    def test_friends_of_uses_graph(self, setup):
        _system, service = setup
        assert service.friends_of("Jerry") == ["Elaine", "Kramer"]

    def test_browse_flights_with_friends_shows_existing_bookings(self, setup):
        _system, service = setup
        flights = service.search_flights("Paris")
        target = flights[0]
        service.book_flight("Kramer", target.fno)
        listing = dict(
            (flight.fno, friends)
            for flight, friends in service.browse_flights_with_friends("Jerry", "Paris")
        )
        assert listing[target.fno] == ["Kramer"]
        # Newman is not Jerry's friend, so his bookings never show up
        service.book_flight("Newman", target.fno)
        listing = dict(
            (flight.fno, friends)
            for flight, friends in service.browse_flights_with_friends("Jerry", "Paris")
        )
        assert listing[target.fno] == ["Kramer"]


class TestDirectBooking:
    def test_book_flight_decrements_inventory(self, setup):
        system, service = setup
        target = service.search_flights("Rome")[0]
        request = service.book_flight("Jerry", target.fno)
        assert request.status is QueryStatus.ANSWERED
        assert service.flight(target.fno).seats == target.seats - 1
        assert ("Jerry", target.fno) in system.answers("Reservation")
        assert service.bookings_of("Jerry").flight.fno == target.fno

    def test_book_full_flight_rejected(self, setup):
        system, service = setup
        target = service.search_flights("Rome")[0]
        system.execute(f"UPDATE Flights SET seats = 0 WHERE fno = {target.fno}")
        with pytest.raises(BookingError):
            service.book_flight("Jerry", target.fno)


class TestCoordinationRequests:
    def test_pair_flight_coordination(self, setup):
        system, service = setup
        jerry = service.request_flight_with_friend("Jerry", "Kramer", "Paris")
        assert jerry.status is QueryStatus.PENDING
        kramer = service.request_flight_with_friend("Kramer", "Jerry", "Paris")
        assert jerry.status is QueryStatus.ANSWERED and kramer.status is QueryStatus.ANSWERED
        jerry_confirmation = service.confirmation_for(jerry)
        kramer_confirmation = service.confirmation_for(kramer)
        assert jerry_confirmation.flight.fno == kramer_confirmation.flight.fno
        assert jerry_confirmation.coordinated_with == ("Kramer",)
        # mailbox notifications (the "Facebook message")
        assert service.notifications_for("Jerry")
        assert service.notifications_for("Kramer")

    def test_non_friends_cannot_coordinate(self, setup):
        _system, service = setup
        with pytest.raises(BookingError):
            service.request_flight_with_friend("Jerry", "Newman", "Paris")
        with pytest.raises(BookingError):
            service.request_flight_with_friend("Jerry", "Jerry", "Paris")

    def test_trip_request_must_book_something(self, setup):
        _system, service = setup
        with pytest.raises(BookingError):
            service.request_trip(TripRequest(user="Jerry", destination="Paris", book_flight=False))

    def test_flight_and_hotel_coordination(self, setup):
        system, service = setup
        jerry = service.request_flight_and_hotel_with_friend("Jerry", "Kramer", "Paris")
        kramer = service.request_flight_and_hotel_with_friend("Kramer", "Jerry", "Paris")
        assert jerry.status is QueryStatus.ANSWERED and kramer.status is QueryStatus.ANSWERED
        flights = {fno for _t, fno in system.answers("Reservation")}
        hotels = {hid for _t, hid in system.answers("HotelReservation")}
        assert len(flights) == 1 and len(hotels) == 1

    def test_adjacent_seats_coordinate_on_seat_block(self, setup):
        system, service = setup
        jerry = service.request_flight_with_friend("Jerry", "Kramer", "Paris", adjacent_seats=True)
        kramer = service.request_flight_with_friend("Kramer", "Jerry", "Paris", adjacent_seats=True)
        assert jerry.status is QueryStatus.ANSWERED and kramer.status is QueryStatus.ANSWERED
        blocks = system.answers("SeatBlock")
        assert len(blocks) == 2
        assert len({(fno, block) for _traveler, fno, block in blocks}) == 1
        confirmation = service.confirmation_for(jerry)
        assert confirmation.seat is not None
        assert confirmation.seat.fno == confirmation.flight.fno

    def test_group_flight_booking(self, setup):
        system, service = setup
        members = ["Jerry", "Kramer", "Elaine"]
        service.friends.add_friendship("Jerry", "Elaine")
        requests = service.submit_group_flight(members, "Paris")
        assert all(request.status is QueryStatus.ANSWERED for request in requests.values())
        flights = {fno for _t, fno in system.answers("Reservation")}
        assert len(flights) == 1
        assert {t for t, _ in system.answers("Reservation")} == set(members)

    def test_group_needs_two_members(self, setup):
        _system, service = setup
        with pytest.raises(BookingError):
            service.submit_group_flight(["Jerry"], "Paris")
        with pytest.raises(BookingError):
            service.submit_group_flight_hotel(["Jerry"], "Paris")

    def test_inventory_decremented_per_traveler(self, setup):
        system, service = setup
        before = {flight.fno: flight.seats for flight in service.search_flights("Paris")}
        service.request_flight_with_friend("Jerry", "Kramer", "Paris")
        service.request_flight_with_friend("Kramer", "Jerry", "Paris")
        booked_fno = system.answers("Reservation")[0][1]
        assert service.flight(booked_fno).seats == before[booked_fno] - 2

    def test_price_constrained_coordination(self, setup):
        system, service = setup
        flights = service.search_flights("Paris")
        cheap_cap = flights[0].price  # only the cheapest flight qualifies
        jerry = service.request_flight_with_friend("Jerry", "Kramer", "Paris", max_price=cheap_cap)
        kramer = service.request_flight_with_friend("Kramer", "Jerry", "Paris", max_price=cheap_cap)
        assert jerry.status is QueryStatus.ANSWERED and kramer.status is QueryStatus.ANSWERED
        booked = {fno for _t, fno in system.answers("Reservation")}
        assert booked == {flights[0].fno}

    def test_confirmation_for_pending_request_is_none(self, setup):
        _system, service = setup
        jerry = service.request_flight_with_friend("Jerry", "Kramer", "Paris")
        assert service.confirmation_for(jerry) is None

    def test_enforcement_can_be_disabled(self, setup):
        system, _service = setup
        permissive = TravelService(system, friends=None, enforce_friendship=False,
                                   manage_inventory=False)
        request = permissive.request_flight_with_friend("Jerry", "Newman", "Rome")
        assert request.status is QueryStatus.PENDING
