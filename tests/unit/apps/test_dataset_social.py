"""Unit tests for the travel dataset generator and the synthetic friend graph."""

from __future__ import annotations

import pytest

from repro.apps.travel.dataset import (
    ANSWER_RELATIONS,
    figure1_rows,
    generate_dataset,
    install_and_load,
)
from repro.apps.travel.social import FriendGraph, generate_friend_graph
from repro.core.system import YoutopiaSystem
from repro.errors import UnknownUserError


class TestDatasetGeneration:
    def test_deterministic_for_same_seed(self):
        first = generate_dataset(seed=5)
        second = generate_dataset(seed=5)
        assert first.flights == second.flights
        assert first.hotels == second.hotels
        assert first.users == second.users

    def test_every_destination_has_flights_and_hotels(self):
        dataset = generate_dataset(num_flights=16, num_hotels=16, seed=1)
        flight_cities = {flight.dest for flight in dataset.flights}
        hotel_cities = {hotel.city for hotel in dataset.hotels}
        assert flight_cities == hotel_cities
        assert dataset.destinations == sorted(flight_cities)

    def test_requested_sizes_respected(self):
        dataset = generate_dataset(num_flights=10, num_hotels=5, num_users=7, seed=0)
        assert len(dataset.flights) == 10
        assert len(dataset.hotels) == 5
        assert len(dataset.users) == 7
        assert len(dataset.seat_blocks) == 20  # two blocks per flight

    def test_flight_numbers_unique(self):
        dataset = generate_dataset(num_flights=50, seed=2)
        fnos = [flight.fno for flight in dataset.flights]
        assert len(set(fnos)) == len(fnos)

    def test_figure1_rows_match_paper(self):
        flights, airlines = figure1_rows()
        assert flights == [(122, "Paris"), (123, "Paris"), (134, "Paris"), (136, "Rome")]
        assert airlines[2] == (134, "Lufthansa")

    def test_install_and_load_populates_tables(self):
        system = YoutopiaSystem(seed=0)
        dataset = install_and_load(system, generate_dataset(num_flights=8, num_hotels=4,
                                                            num_users=6, seed=3))
        assert system.query("SELECT COUNT(*) FROM Flights").scalar() == 8
        assert system.query("SELECT COUNT(*) FROM Hotels").scalar() == 4
        assert system.query("SELECT COUNT(*) FROM Users").scalar() == 6
        assert system.query("SELECT COUNT(*) FROM Seats").scalar() == 16
        for relation in ANSWER_RELATIONS:
            assert system.answer_relations.is_declared(relation)
        assert dataset.destinations

    def test_install_default_dataset_when_none_given(self):
        system = YoutopiaSystem(seed=0)
        dataset = install_and_load(system, seed=11)
        assert system.query("SELECT COUNT(*) FROM Flights").scalar() == len(dataset.flights)


class TestFriendGraph:
    def test_add_and_query_friendships(self):
        graph = FriendGraph(["Jerry", "Kramer", "Elaine"])
        graph.add_friendship("Jerry", "Kramer")
        graph.add_friendship("Kramer", "Elaine")
        assert graph.are_friends("Jerry", "Kramer")
        assert not graph.are_friends("Jerry", "Elaine")
        assert graph.friends_of("Kramer") == ["Elaine", "Jerry"]
        assert graph.mutual_friends("Jerry", "Elaine") == ["Kramer"]

    def test_self_friendship_rejected(self):
        graph = FriendGraph(["Jerry"])
        with pytest.raises(ValueError):
            graph.add_friendship("Jerry", "Jerry")

    def test_unknown_user_raises(self):
        graph = FriendGraph(["Jerry"])
        with pytest.raises(UnknownUserError):
            graph.friends_of("Newman")

    def test_remove_friendship(self):
        graph = FriendGraph()
        graph.add_friendship("A", "B")
        graph.remove_friendship("A", "B")
        assert not graph.are_friends("A", "B")
        assert len(graph) == 2

    def test_friend_pairs_listed_once(self):
        graph = FriendGraph()
        graph.add_friendship("A", "B")
        graph.add_friendship("B", "C")
        assert list(graph.friend_pairs()) == [("A", "B"), ("B", "C")]

    def test_generated_graph_is_connected_and_deterministic(self):
        users = [f"u{i}" for i in range(12)]
        first = generate_friend_graph(users, average_friends=3, seed=9)
        second = generate_friend_graph(users, average_friends=3, seed=9)
        assert list(first.friend_pairs()) == list(second.friend_pairs())
        # ring construction guarantees every user has at least two friends
        assert all(len(first.friends_of(user)) >= 2 for user in users)

    def test_generated_graph_export_to_networkx(self):
        graph = generate_friend_graph([f"u{i}" for i in range(6)], seed=0)
        exported = graph.to_networkx()
        assert exported.number_of_nodes() == 6
        import networkx

        assert networkx.is_connected(exported)

    def test_tiny_graphs(self):
        assert len(generate_friend_graph([], seed=0)) == 0
        single = generate_friend_graph(["only"], seed=0)
        assert single.friends_of("only") == []
