"""Unit tests for the notification mailbox (the Facebook-message stand-in)."""

from __future__ import annotations

import pytest

from repro.apps.travel.notifications import Mailbox
from repro.core.system import YoutopiaSystem

KRAMER_SQL = (
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
)
JERRY_SQL = (
    "SELECT 'Jerry', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1"
)


@pytest.fixture
def system() -> YoutopiaSystem:
    system = YoutopiaSystem(seed=0)
    system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
    system.execute("INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris')")
    system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return system


def test_answered_queries_notify_both_owners(system):
    mailbox = Mailbox(system)
    system.execute(KRAMER_SQL, owner="Kramer")
    system.execute(JERRY_SQL, owner="Jerry")
    kramer_messages = mailbox.messages_for("Kramer")
    jerry_messages = mailbox.messages_for("Jerry")
    assert len(kramer_messages) == 1 and len(jerry_messages) == 1
    assert "confirmed" in kramer_messages[0].subject
    assert "Reservation" in kramer_messages[0].body
    assert mailbox.unread_count("Kramer") == 1


def test_pending_queries_do_not_notify(system):
    mailbox = Mailbox(system)
    system.execute(KRAMER_SQL, owner="Kramer")
    assert mailbox.messages_for("Kramer") == []


def test_cancellation_notifies_owner(system):
    mailbox = Mailbox(system)
    request = system.execute(KRAMER_SQL, owner="Kramer")
    system.cancel(request.query_id)
    messages = mailbox.messages_for("Kramer")
    assert len(messages) == 1
    assert "withdrawn" in messages[0].subject


def test_clear_mailbox(system):
    mailbox = Mailbox(system)
    system.execute(KRAMER_SQL, owner="Kramer")
    system.execute(JERRY_SQL, owner="Jerry")
    mailbox.clear("Kramer")
    assert mailbox.unread_count("Kramer") == 0
    assert mailbox.unread_count("Jerry") == 1


def test_anonymous_queries_do_not_crash_mailbox(system):
    mailbox = Mailbox(system)
    system.execute(KRAMER_SQL)  # no owner
    system.execute(JERRY_SQL)
    assert mailbox.messages_for("Kramer") == []
