"""Unit tests for the administrative inspection interface."""

from __future__ import annotations

import pytest

from repro.apps.admin import AdminInterface
from repro.core.system import YoutopiaSystem

KRAMER_SQL = (
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
)
JERRY_SQL = (
    "SELECT 'Jerry', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1"
)
ELAINE_SQL = (
    "SELECT 'Elaine', hid INTO ANSWER HotelReservation "
    "WHERE hid IN (SELECT hid FROM Hotels WHERE city = 'Paris') "
    "AND ('George', hid) IN ANSWER HotelReservation CHOOSE 1"
)


@pytest.fixture
def system() -> YoutopiaSystem:
    system = YoutopiaSystem(seed=0)
    system.execute_script(
        """
        CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT);
        CREATE TABLE Hotels (hid INT PRIMARY KEY, city TEXT);
        INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris');
        INSERT INTO Hotels VALUES (7, 'Paris');
        """
    )
    system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    system.declare_answer_relation("HotelReservation", ["traveler", "hid"], ["TEXT", "INTEGER"])
    return system


@pytest.fixture
def admin(system) -> AdminInterface:
    return AdminInterface(system)


class TestPendingInspection:
    def test_describe_query_shows_ir_and_analysis(self, system, admin):
        request = system.execute(KRAMER_SQL, owner="Kramer")
        text = admin.describe_query(request.query_id)
        assert "Reservation('Kramer', fno)" in text
        assert "status       : pending" in text
        assert "safe         : True" in text

    def test_describe_answered_query_includes_group(self, system, admin):
        kramer = system.execute(KRAMER_SQL, owner="Kramer")
        system.execute(JERRY_SQL, owner="Jerry")
        text = admin.describe_query(kramer.query_id)
        assert "status       : answered" in text
        assert "group" in text

    def test_pending_queries_listing(self, system, admin):
        system.execute(KRAMER_SQL, owner="Kramer")
        assert len(admin.pending_queries()) == 1


class TestMatchGraph:
    def test_edge_between_compatible_pending_queries(self, system, admin):
        system.execute(KRAMER_SQL, owner="Kramer")
        system.execute(ELAINE_SQL, owner="Elaine")
        # Kramer (flight) and Elaine (hotel) cannot provide for each other
        assert admin.match_graph() == []
        assert "no potential matches" in admin.match_graph_text()

    def test_edge_for_matching_relations_but_failed_grounding(self, system, admin):
        # Different destinations: structurally compatible, no common flight.
        system.execute(KRAMER_SQL.replace("'Paris'", "'Rome'"), owner="Kramer")
        system.execute(JERRY_SQL, owner="Jerry")
        edges = admin.match_graph()
        assert len(edges) == 1
        assert edges[0].relations == ("Reservation",)
        assert "<->" in admin.match_graph_text()


class TestStateDump:
    def test_render_state_contains_all_sections(self, system, admin):
        system.execute(KRAMER_SQL, owner="Kramer")
        system.execute(JERRY_SQL, owner="Jerry")
        text = admin.render_state()
        assert "== Youtopia system state ==" in text
        assert "Flights: 2 rows" in text
        assert "Reservation: 2 tuples" in text
        assert "queries_answered = 2" in text
        assert "-- transport --" in text
        assert "(no transport: in-process service)" in text

    def test_transport_section_renders_server_counters(self, admin, monkeypatch):
        # a service fronted by a network server reports transport counters
        from repro.service.api import ServiceStats
        from repro.service.metrics import TransportMetrics

        metrics = TransportMetrics()
        metrics.connection_opened()
        metrics.request_started()
        metrics.add_bytes_in(120)
        metrics.add_bytes_out(450)
        metrics.request_rejected()
        base = admin.service.stats()
        monkeypatch.setattr(
            admin.service,
            "stats",
            lambda: ServiceStats(
                counters=base.counters,
                pending=base.pending,
                shards=base.shards,
                durability=base.durability,
                transport=metrics.snapshot(),
            ),
        )
        text = admin.transport_text()
        assert "connections: open=1 total=1" in text
        assert "in_flight=1" in text
        assert "rejected_backpressure=1" in text
        assert "bytes_in=120" in text and "bytes_out=450" in text

    def test_answer_relation_text(self, system, admin):
        system.execute(KRAMER_SQL, owner="Kramer")
        system.execute(JERRY_SQL, owner="Jerry")
        text = admin.answer_relation_text("Reservation")
        assert "traveler" in text and "(2 rows)" in text

    def test_event_log_text(self, system, admin):
        system.execute(KRAMER_SQL, owner="Kramer")
        log = admin.event_log_text()
        assert "query_registered" in log
        assert len(admin.event_log(limit=1)) == 1

    def test_statistics_and_table_statistics(self, system, admin):
        system.execute(KRAMER_SQL, owner="Kramer")
        assert admin.statistics()["queries_registered"] == 1
        assert admin.table_statistics()["Flights"] == 2

    def test_explain_passthrough(self, admin):
        plan = admin.explain("SELECT fno FROM Flights WHERE dest = 'Paris'")
        assert "IndexLookup" in plan or "Filter" in plan


class TestClusterSection:
    def test_single_node_renders_placeholder(self, admin):
        assert admin.cluster_text() == "(no cluster: single-node deployment)"
        assert "-- cluster --" in admin.render_state()

    def test_node_role_renders_key_values(self, admin):
        admin.service.cluster_info = {"role": "node", "node": 1, "node_count": 4}
        text = admin.cluster_text()
        assert "role = node" in text
        assert "node = 1" in text
        assert "node_count = 4" in text

    def test_router_role_renders_topology_and_members(self, admin):
        admin.service.cluster_info = {
            "role": "router",
            "node_count": 2,
            "shard_count": 4,
            "residence": "per-signature",
            "routed_submits": 7,
            "cross_node_submits": 2,
            "relocations": 1,
            "duplicate_rejections": 0,
            "failovers": 1,
            "recovered_queries": 5,
            "resharded_relocations": 0,
            "introspection_gaps": 1,
            "unreachable_nodes": [1],
            "hot_relations": ["hotel", "reservation"],
            "hot_nodes": {"hotel": 1, "reservation": 1},
            "nodes": [
                {
                    "index": 0,
                    "address": "127.0.0.1:7401",
                    "shards": [0, 2],
                    "pending": 3,
                    "routed_pending": 3,
                    "wal_last_lsn": 41,
                    "reachable": True,
                    "standby": {
                        "address": "127.0.0.1:7501",
                        "reachable": True,
                        "lag_lsns": 2,
                    },
                },
                {"index": 1, "address": "127.0.0.1:7402", "reachable": False},
            ],
        }
        text = admin.cluster_text()
        assert "role = router" in text
        assert "topology: nodes=2 shards=4 residence=per-signature" in text
        assert "routed=7 cross_node=2 relocations=1" in text
        assert "recovery: recovered=5 resharded=0 introspection_gaps=1" in text
        assert "hot relations: hotel@1, reservation@1" in text
        assert "unreachable nodes: 1" in text
        assert "node 0 @ 127.0.0.1:7401: shards=[0, 2] pending=3" in text
        assert "standby@127.0.0.1:7501 lag=2 lsns" in text
        assert "node 1 @ 127.0.0.1:7402: UNREACHABLE" in text
