"""Unit tests for the SQL command-line interface."""

from __future__ import annotations

import pytest

from repro.apps.cli import CommandLine, format_result_table
from repro.core.system import YoutopiaSystem


@pytest.fixture
def shell() -> CommandLine:
    shell = CommandLine(YoutopiaSystem(seed=0))
    shell.run_line("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
    shell.run_line("INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (136, 'Rome')")
    return shell


KRAMER_SQL = (
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
)
JERRY_SQL = (
    "SELECT 'Jerry', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1"
)


class TestFormatting:
    def test_format_result_table_alignment_and_count(self):
        text = format_result_table(["fno", "dest"], [(122, "Paris"), (136, None)])
        lines = text.splitlines()
        assert lines[0].startswith("fno")
        assert "(2 rows)" in lines[-1]
        assert "Paris" in text
        # NULLs render as empty cells
        assert lines[3].split("|")[1].strip() == ""

    def test_format_empty_result(self):
        assert "(0 rows)" in format_result_table(["a"], [])


class TestPlainSQL:
    def test_select_renders_table(self, shell):
        output = shell.run_line("SELECT fno FROM Flights WHERE dest = 'Rome'")
        assert "136" in output and "(1 row)" in output

    def test_dml_reports_affected_rows(self, shell):
        assert "1 row(s) affected" in shell.run_line("DELETE FROM Flights WHERE fno = 136")

    def test_ddl_reports_ok(self, shell):
        assert "ok" in shell.run_line("CREATE TABLE Hotels (hid INT)")

    def test_errors_are_reported_not_raised(self, shell):
        assert shell.run_line("SELECT * FROM Nowhere").startswith("error:")
        assert shell.run_line("SELEC typo").startswith("error:")

    def test_empty_line_is_silent(self, shell):
        assert shell.run_line("   ") == ""

    def test_multiple_statements_per_line(self, shell):
        output = shell.run_line("SELECT 1; SELECT 2")
        assert output.count("(1 row)") == 2


class TestEntangledQueries:
    def test_pending_then_answered(self, shell):
        first = shell.run_line(KRAMER_SQL)
        assert "PENDING" in first
        second = shell.run_line(JERRY_SQL)
        assert "ANSWERED" in second
        answers = shell.run_line(".answers Reservation")
        assert "(2 rows)" in answers

    def test_pending_listing_and_cancel(self, shell):
        shell.run_line(KRAMER_SQL)
        pending = shell.run_line(".pending")
        assert "Reservation" in pending
        query_id = pending.split()[0]
        assert "cancelled" in shell.run_line(f".cancel {query_id}")
        assert "(no pending entangled queries)" in shell.run_line(".pending")

    def test_user_command_sets_owner(self, shell):
        shell.run_line(".user Kramer")
        shell.run_line(KRAMER_SQL)
        requests = shell.run_line(".requests")
        assert "[Kramer]" in requests

    def test_retry_command(self, shell):
        assert "0 newly answered" in shell.run_line(".retry")


class TestDotCommands:
    def test_tables_and_schema(self, shell):
        tables = shell.run_line(".tables")
        assert "Flights" in tables and "_pending_queries" in tables
        schema = shell.run_line(".schema Flights")
        assert "fno INTEGER" in schema and "PRIMARY KEY (fno)" in schema

    def test_stats(self, shell):
        shell.run_line(KRAMER_SQL)
        stats = shell.run_line(".stats")
        assert "queries_registered = 1" in stats

    def test_help_quit_unknown(self, shell):
        assert "Dot-commands" in shell.run_line(".help")
        assert "unknown command" in shell.run_line(".frobnicate")
        assert shell.run_line(".quit") == "bye"
        assert shell.done

    def test_usage_messages(self, shell):
        assert "usage" in shell.run_line(".schema")
        assert "usage" in shell.run_line(".answers")
        assert "usage" in shell.run_line(".cancel")
        assert "usage" in shell.run_line(".describe")
        assert "usage" in shell.run_line(".explain")

    def test_describe_and_graph(self, shell):
        shell.run_line(".user Kramer")
        shell.run_line(KRAMER_SQL)
        pending = shell.run_line(".pending")
        query_id = pending.split()[0]
        described = shell.run_line(f".describe {query_id}")
        assert "Reservation('Kramer', fno)" in described
        assert "safe         : True" in described
        assert "no potential matches" in shell.run_line(".graph")
        # a structurally compatible partner (wrong destination) creates an edge
        shell.run_line(".user Jerry")
        shell.run_line(JERRY_SQL.replace("'Paris'", "'Atlantis'"))
        assert "<->" in shell.run_line(".graph")

    def test_explain_command(self, shell):
        plan = shell.run_line(".explain SELECT fno FROM Flights WHERE dest = 'Paris'")
        assert "IndexLookup" in plan or "Filter" in plan
        assert "error" in shell.run_line(".explain SELEC nonsense")

    def test_run_script_returns_one_output_per_line(self, shell):
        outputs = shell.run_script(["SELECT 1", ".tables"])
        assert len(outputs) == 2


class TestRemoteShell:
    """The same shell, driven over the network transport."""

    @pytest.fixture
    def remote_shell(self, tmp_path):
        from repro.apps.cli import build_server
        from repro.service.remote import RemoteService

        script = tmp_path / "schema.sql"
        script.write_text(
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT);\n"
            "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (136, 'Rome');\n"
        )
        server = build_server(port=0, seed=0, script=str(script))
        client = RemoteService.connect(*server.address)
        yield CommandLine(client)
        client.close()
        server.stop()

    def test_plain_sql_round_trips(self, remote_shell):
        output = remote_shell.run_line("SELECT fno FROM Flights WHERE dest = 'Rome'")
        assert "136" in output and "(1 row)" in output
        assert "1 row(s) affected" in remote_shell.run_line(
            "DELETE FROM Flights WHERE fno = 136"
        )

    def test_entangled_pair_answers_through_the_shell(self, remote_shell):
        remote_shell.service.declare_answer_relation(
            "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
        )
        first = remote_shell.run_line(KRAMER_SQL)
        assert "PENDING" in first
        second = remote_shell.run_line(JERRY_SQL)
        assert "ANSWERED" in second
        answers = remote_shell.run_line(".answers Reservation")
        assert "Kramer" in answers and "Jerry" in answers

    def test_pending_stats_retry_and_cancel_work_remotely(self, remote_shell):
        remote_shell.service.declare_answer_relation(
            "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
        )
        remote_shell.run_line(KRAMER_SQL)
        pending = remote_shell.run_line(".pending")
        assert "Reservation" in pending
        assert "queries_registered = 1" in remote_shell.run_line(".stats")
        assert "0 newly answered" in remote_shell.run_line(".retry")
        query_id = pending.split()[0]
        assert f"cancelled {query_id}" in remote_shell.run_line(f".cancel {query_id}")

    def test_inprocess_only_commands_degrade_gracefully(self, remote_shell):
        for command in (".tables", ".schema Flights", ".explain SELECT 1", ".graph"):
            output = remote_shell.run_line(command)
            assert "not available over a remote connection" in output

    def test_errors_are_reported_not_raised(self, remote_shell):
        assert remote_shell.run_line("SELECT * FROM Nowhere").startswith("error:")


class TestAsyncTransportShell:
    """serve --transport asyncio + connect --async: the same shell over the
    asyncio request plane (build_server and the bridge, exactly as main())."""

    @pytest.fixture
    def async_shell(self, tmp_path):
        from repro.apps.cli import build_server
        from repro.service.aio import connect_bridged

        script = tmp_path / "schema.sql"
        script.write_text(
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT);\n"
            "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (136, 'Rome');\n"
        )
        server = build_server(port=0, seed=0, script=str(script), transport="asyncio")
        client = connect_bridged(*server.address)
        yield CommandLine(client)
        client.close()
        server.stop()

    def test_plain_sql_round_trips(self, async_shell):
        output = async_shell.run_line("SELECT fno FROM Flights WHERE dest = 'Rome'")
        assert "136" in output and "(1 row)" in output

    def test_entangled_pair_answers_through_the_shell(self, async_shell):
        async_shell.service.declare_answer_relation(
            "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
        )
        assert "PENDING" in async_shell.run_line(KRAMER_SQL)
        assert "ANSWERED" in async_shell.run_line(JERRY_SQL)
        answers = async_shell.run_line(".answers Reservation")
        assert "Kramer" in answers and "Jerry" in answers

    def test_stats_include_transport_counters(self, async_shell):
        stats = async_shell.service.stats()
        assert dict(stats.transport)["connections_open"] == 1


class TestArgumentParsing:
    def test_serve_and_connect_subcommands(self):
        from repro.apps.cli import build_parser

        parser = build_parser()
        serve = parser.parse_args(["serve", "--port", "0", "--seed", "7"])
        assert (serve.command, serve.port, serve.seed) == ("serve", 0, 7)
        assert serve.transport == "threaded"
        asyncio_serve = parser.parse_args(["serve", "--transport", "asyncio"])
        assert asyncio_serve.transport == "asyncio"
        connect = parser.parse_args(["connect", "--host", "example.org", "--port", "7399"])
        assert (connect.command, connect.host, connect.port) == ("connect", "example.org", 7399)
        assert connect.use_async is False
        assert parser.parse_args(["connect", "--async"]).use_async is True
        bare = parser.parse_args([])
        assert bare.command is None

    def test_router_subcommand_parses_nodes_and_standbys(self):
        from repro.apps.cli import build_parser

        parser = build_parser()
        router = parser.parse_args(
            [
                "router",
                "--port", "0",
                "--node", "127.0.0.1:7401",
                "--node", "127.0.0.1:7402",
                "--standby", "0=127.0.0.1:7501",
                "--shards", "4",
            ]
        )
        assert router.command == "router"
        assert router.nodes == ["127.0.0.1:7401", "127.0.0.1:7402"]
        assert router.standbys == ["0=127.0.0.1:7501"]
        assert router.shards == 4

    def test_serve_cluster_flags(self):
        from repro.apps.cli import build_parser

        parser = build_parser()
        node = parser.parse_args(["serve", "--cluster-node", "1/4"])
        assert node.cluster_node == "1/4"
        standby = parser.parse_args(["serve", "--standby-of", "127.0.0.1:7401"])
        assert standby.standby_of == "127.0.0.1:7401"


class TestClusterWiring:
    """build_server/build_router cluster paths, end to end in-process."""

    def test_cluster_node_flag_tags_stats(self):
        from repro.apps.cli import build_server

        server = build_server(port=0, seed=0, cluster_node="1/4")
        try:
            from repro.service.remote import RemoteService

            client = RemoteService.connect(*server.address)
            cluster = client.stats().cluster
            assert cluster == {"role": "node", "node": 1, "node_count": 4}
            client.close()
        finally:
            server.stop()

    def test_cluster_node_flag_validates_shape(self):
        from repro.apps.cli import build_server

        with pytest.raises(ValueError, match="I/N"):
            build_server(port=0, seed=0, cluster_node="nonsense")

    def test_standby_rejects_data_dir_and_script(self, tmp_path):
        from repro.apps.cli import build_server

        with pytest.raises(ValueError, match="standby"):
            build_server(
                port=0, seed=0, standby_of="127.0.0.1:1", data_dir=str(tmp_path)
            )

    def test_build_router_over_live_nodes(self):
        from repro.apps.cli import build_router, build_server

        nodes = [build_server(port=0, seed=0) for _ in range(2)]
        router = None
        try:
            router = build_router(
                host="127.0.0.1",
                port=0,
                nodes=[f"{host}:{port}" for host, port in (n.address for n in nodes)],
            )
            from repro.service.remote import RemoteService

            client = RemoteService.connect(*router.address)
            assert client.stats().cluster["node_count"] == 2
            client.close()
        finally:
            if router is not None:
                router.stop()
            for node in nodes:
                node.stop()

    def test_build_router_rejects_malformed_standby(self):
        from repro.apps.cli import build_router

        with pytest.raises(ValueError, match="IDX=HOST:PORT"):
            build_router(
                host="127.0.0.1", port=0, nodes=["127.0.0.1:1"], standbys=["x"]
            )
