"""Unit tests for the hash index data structure."""

from __future__ import annotations

import pytest

from repro.errors import ConstraintViolationError
from repro.storage.indexes import HashIndex


class TestHashIndex:
    def test_requires_at_least_one_column(self):
        with pytest.raises(ValueError):
            HashIndex("bad", [])

    def test_add_and_lookup(self):
        index = HashIndex("by_dest", [1])
        index.add(1, (122, "Paris"))
        index.add(2, (123, "Paris"))
        index.add(3, (136, "Rome"))
        assert index.lookup(("Paris",)) == {1, 2}
        assert index.lookup(("Rome",)) == {3}
        assert index.lookup(("Athens",)) == frozenset()

    def test_remove_cleans_empty_buckets(self):
        index = HashIndex("by_dest", [1])
        index.add(1, (122, "Paris"))
        index.remove(1, (122, "Paris"))
        assert not index.contains_key(("Paris",))
        assert len(index) == 0

    def test_remove_missing_row_is_noop(self):
        index = HashIndex("by_dest", [1])
        index.remove(99, (122, "Paris"))
        assert len(index) == 0

    def test_unique_index_rejects_second_row_with_same_key(self):
        index = HashIndex("pk", [0], unique=True)
        index.add(1, (122, "Paris"))
        with pytest.raises(ConstraintViolationError):
            index.add(2, (122, "Rome"))
        # re-adding the same row id is idempotent, not a violation
        index.add(1, (122, "Paris"))

    def test_composite_key(self):
        index = HashIndex("by_pair", [0, 1])
        index.add(1, (122, "Paris", 450.0))
        index.add(2, (122, "Rome", 300.0))
        assert index.lookup((122, "Paris")) == {1}
        assert index.key_for_row((7, "X", None)) == (7, "X")

    def test_rebuild_replaces_contents(self):
        index = HashIndex("by_dest", [1])
        index.add(1, (122, "Paris"))
        index.rebuild([(5, (200, "Athens")), (6, (201, "Athens"))])
        assert index.lookup(("Paris",)) == frozenset()
        assert index.lookup(("Athens",)) == {5, 6}
        assert len(index) == 2
        assert sorted(index.keys()) == [("Athens",)]
