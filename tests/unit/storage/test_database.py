"""Unit tests for the database catalog (DDL, DML wrappers, listeners, snapshots)."""

from __future__ import annotations

import pytest

from repro.errors import DuplicateTableError, UnknownTableError
from repro.storage.database import Database
from repro.storage.schema import make_schema


@pytest.fixture
def catalog() -> Database:
    database = Database("test")
    database.create_table(name="Flights", columns=[("fno", "INT"), ("dest", "TEXT")],
                          primary_key=("fno",))
    database.insert_many("Flights", [(122, "Paris"), (123, "Paris"), (136, "Rome")])
    return database


class TestDDL:
    def test_create_and_lookup_case_insensitive(self, catalog: Database):
        assert catalog.has_table("flights")
        assert catalog.table("FLIGHTS").name == "Flights"
        assert catalog.schema("flights").primary_key == ("fno",)

    def test_duplicate_create_rejected_unless_if_not_exists(self, catalog: Database):
        with pytest.raises(DuplicateTableError):
            catalog.create_table(name="Flights", columns=[("x", "INT")])
        table = catalog.create_table(
            name="Flights", columns=[("x", "INT")], if_not_exists=True
        )
        assert table.schema.column_names == ("fno", "dest")

    def test_create_from_schema_object(self):
        database = Database()
        schema = make_schema("T", [("a", "INT")])
        database.create_table(schema)
        assert database.table_names() == ["T"]

    def test_create_requires_schema_or_columns(self):
        with pytest.raises(ValueError):
            Database().create_table(name="incomplete")

    def test_drop_table(self, catalog: Database):
        catalog.drop_table("Flights")
        assert not catalog.has_table("Flights")
        with pytest.raises(UnknownTableError):
            catalog.drop_table("Flights")
        catalog.drop_table("Flights", if_exists=True)

    def test_unknown_table_error(self, catalog: Database):
        with pytest.raises(UnknownTableError):
            catalog.table("Hotels")


class TestDML:
    def test_insert_and_statistics(self, catalog: Database):
        catalog.insert("Flights", (140, "Athens"))
        assert catalog.statistics() == {"Flights": 4}

    def test_update_where(self, catalog: Database):
        touched = catalog.update_where(
            "Flights", lambda row: row["dest"] == "Rome", lambda row: {"dest": "Milan"}
        )
        assert touched == 1
        assert catalog.table("Flights").lookup_equal({"dest": "Milan"})

    def test_delete_where_and_truncate(self, catalog: Database):
        assert catalog.delete_where("Flights", lambda row: row["dest"] == "Paris") == 2
        catalog.truncate("Flights")
        assert len(catalog.table("Flights")) == 0


class TestListeners:
    def test_listener_receives_change_kinds(self, catalog: Database):
        seen: list[tuple[str, str]] = []
        catalog.add_listener(lambda table, kind: seen.append((table, kind)))
        catalog.insert("Flights", (150, "Berlin"))
        catalog.update_where("Flights", lambda row: row["fno"] == 150, lambda row: {"dest": "Bern"})
        catalog.delete_where("Flights", lambda row: row["fno"] == 150)
        catalog.create_table(name="Hotels", columns=[("hid", "INT")])
        catalog.drop_table("Hotels")
        kinds = [kind for _table, kind in seen]
        assert kinds == ["insert", "update", "delete", "create", "drop"]

    def test_listener_not_called_for_noop_dml(self, catalog: Database):
        seen: list[str] = []
        catalog.add_listener(lambda table, kind: seen.append(kind))
        catalog.delete_where("Flights", lambda row: False)
        catalog.update_where("Flights", lambda row: False, lambda row: {})
        assert seen == []

    def test_remove_listener(self, catalog: Database):
        seen: list[str] = []
        listener = lambda table, kind: seen.append(kind)  # noqa: E731
        catalog.add_listener(listener)
        catalog.remove_listener(listener)
        catalog.insert("Flights", (151, "Oslo"))
        assert seen == []


class TestSnapshots:
    def test_snapshot_restore_round_trip(self, catalog: Database):
        snapshot = catalog.snapshot()
        catalog.insert("Flights", (160, "Madrid"))
        catalog.delete_where("Flights", lambda row: row["fno"] == 122)
        catalog.restore(snapshot)
        fnos = {row["fno"] for row in catalog.table("Flights").scan()}
        assert fnos == {122, 123, 136}

    def test_restore_truncates_tables_created_after_snapshot(self, catalog: Database):
        snapshot = catalog.snapshot()
        catalog.create_table(name="Hotels", columns=[("hid", "INT")])
        catalog.insert("Hotels", (1,))
        catalog.restore(snapshot)
        # the table still exists (DDL is not transactional) but is empty
        assert catalog.has_table("Hotels")
        assert len(catalog.table("Hotels")) == 0
