"""Unit tests for the pluggable pending-store backends (cold-query spill)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import StorageError
from repro.storage.backends import (
    COLD_STORE_FILE,
    MemoryPendingStore,
    PendingStoreBackend,
    SQLitePendingStore,
    backend_schemes,
    create_backend,
    decode_payload,
    encode_payload,
    register_backend,
)


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        store = MemoryPendingStore()
    else:
        store = SQLitePendingStore(tmp_path / COLD_STORE_FILE)
    yield store
    store.close()


class TestBackendContract:
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, PendingStoreBackend)

    def test_put_get_roundtrip(self, backend):
        backend.put("q1", '{"sql": "SELECT 1"}')
        assert backend.get("q1") == '{"sql": "SELECT 1"}'
        assert backend.get("missing") is None

    def test_put_replaces(self, backend):
        backend.put("q1", "old")
        backend.put("q1", "new")
        assert backend.get("q1") == "new"
        assert len(backend) == 1

    def test_delete_and_absent_delete(self, backend):
        backend.put("q1", "payload")
        backend.delete("q1")
        assert backend.get("q1") is None
        backend.delete("q1")  # absent keys are a no-op by contract
        assert len(backend) == 0

    def test_keys_and_len(self, backend):
        for index in range(5):
            backend.put(f"q{index}", f"p{index}")
        assert len(backend) == 5
        assert sorted(backend.keys()) == [f"q{index}" for index in range(5)]

    def test_describe_is_short_text(self, backend):
        assert isinstance(backend.describe(), str)
        assert backend.describe()

    def test_concurrent_mutation(self, backend):
        def worker(base: int) -> None:
            for index in range(50):
                key = f"q{base}-{index}"
                backend.put(key, "payload")
                assert backend.get(key) == "payload"
                if index % 2:
                    backend.delete(key)

        threads = [threading.Thread(target=worker, args=(base,)) for base in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(backend) == 4 * 25


class TestSQLiteStore:
    def test_payloads_survive_reopen_after_sync(self, tmp_path):
        path = tmp_path / COLD_STORE_FILE
        store = SQLitePendingStore(path, fsync_policy="always")
        store.put("q1", "payload-1")
        store.sync()
        store.close()
        reopened = SQLitePendingStore(path)
        assert reopened.get("q1") == "payload-1"
        reopened.close()

    def test_close_is_idempotent_and_flushes(self, tmp_path):
        path = tmp_path / COLD_STORE_FILE
        store = SQLitePendingStore(path)
        store.put("q1", "payload-1")
        store.close()
        store.close()
        reopened = SQLitePendingStore(path)
        assert reopened.get("q1") == "payload-1"
        reopened.close()

    def test_use_after_close_raises(self, tmp_path):
        store = SQLitePendingStore(tmp_path / COLD_STORE_FILE)
        store.close()
        with pytest.raises(StorageError):
            store.put("q1", "payload")

    def test_batched_commits_commit_on_interval(self, tmp_path):
        path = tmp_path / COLD_STORE_FILE
        store = SQLitePendingStore(path, fsync_policy="batch", commit_interval=2)
        store.put("q1", "p1")
        store.put("q2", "p2")  # second mutation crosses the interval
        other = SQLitePendingStore(path)
        assert other.get("q1") == "p1"
        other.close()
        store.close()

    def test_rejects_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(StorageError, match="fsync_policy"):
            SQLitePendingStore(tmp_path / COLD_STORE_FILE, fsync_policy="sometimes")

    def test_creates_parent_directories(self, tmp_path):
        nested = tmp_path / "a" / "b" / COLD_STORE_FILE
        store = SQLitePendingStore(nested)
        store.put("q1", "p1")
        store.close()
        assert nested.exists()


class TestRegistry:
    def test_builtin_schemes(self):
        assert "sqlite" in backend_schemes()
        assert "memory" in backend_schemes()

    def test_unknown_scheme_names_known_ones(self, tmp_path):
        with pytest.raises(StorageError, match="sqlite"):
            create_backend("postgres-someday", tmp_path)

    def test_sqlite_scheme_lands_in_data_dir(self, tmp_path):
        store = create_backend("sqlite", tmp_path, "always")
        try:
            store.put("q1", "p1")
            store.sync()
            assert (tmp_path / COLD_STORE_FILE).exists()
        finally:
            store.close()

    def test_sqlite_scheme_without_data_dir_is_in_memory(self):
        store = create_backend("sqlite", None)
        try:
            assert store.describe() == "sqlite:memory"
        finally:
            store.close()

    def test_custom_scheme_registers_and_resolves(self):
        created = []

        def factory(data_dir, fsync_policy):
            store = MemoryPendingStore()
            created.append((data_dir, fsync_policy, store))
            return store

        register_backend("test-kv", factory)
        try:
            store = create_backend("TEST-KV", None, "never")
            assert created[0][1] == "never"
            assert created[0][2] is store
        finally:
            from repro.storage import backends as module

            module._REGISTRY.pop("test-kv", None)


class TestPayloadCodec:
    def test_roundtrip(self):
        payload = encode_payload("SELECT 1 CHOOSE 1", "Kramer", 2.5)
        decoded = decode_payload(payload)
        assert decoded == {"sql": "SELECT 1 CHOOSE 1", "owner": "Kramer", "priority": 2.5}

    def test_none_owner_and_priority(self):
        decoded = decode_payload(encode_payload("SELECT 1", None, None))
        assert decoded["owner"] is None
        assert decoded["priority"] is None

    def test_corrupt_json_raises(self):
        with pytest.raises(StorageError, match="corrupt"):
            decode_payload("{not json")

    def test_missing_sql_raises(self):
        with pytest.raises(StorageError, match="missing sql"):
            decode_payload('{"owner": "Kramer"}')
