"""Unit tests for column types, columns and table schemas."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError, TypeMismatchError, UnknownColumnError
from repro.storage.schema import Column, ColumnType, TableSchema, make_schema


class TestColumnType:
    def test_from_name_aliases(self):
        assert ColumnType.from_name("int") is ColumnType.INTEGER
        assert ColumnType.from_name("VARCHAR") is ColumnType.TEXT
        assert ColumnType.from_name("double") is ColumnType.REAL
        assert ColumnType.from_name("bool") is ColumnType.BOOLEAN
        assert ColumnType.from_name("any") is ColumnType.ANY

    def test_from_name_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            ColumnType.from_name("geometry")

    def test_python_types_cover_each_type(self):
        assert int in ColumnType.INTEGER.python_types()
        assert float in ColumnType.REAL.python_types()
        assert str in ColumnType.TEXT.python_types()
        assert bool in ColumnType.BOOLEAN.python_types()
        assert str in ColumnType.ANY.python_types()


class TestColumnValidation:
    def test_integer_accepts_int_and_integral_float(self):
        column = Column("n", ColumnType.INTEGER)
        assert column.validate(5) == 5
        assert column.validate(5.0) == 5

    def test_integer_rejects_fractional_and_bool(self):
        column = Column("n", ColumnType.INTEGER)
        with pytest.raises(TypeMismatchError):
            column.validate(5.5)
        with pytest.raises(TypeMismatchError):
            column.validate(True)

    def test_real_coerces_int_to_float(self):
        column = Column("x", ColumnType.REAL)
        assert column.validate(3) == 3.0
        assert isinstance(column.validate(3), float)

    def test_text_rejects_numbers(self):
        column = Column("s", ColumnType.TEXT)
        assert column.validate("hello") == "hello"
        with pytest.raises(TypeMismatchError):
            column.validate(42)

    def test_boolean_accepts_bool_and_binary_ints(self):
        column = Column("b", ColumnType.BOOLEAN)
        assert column.validate(True) is True
        assert column.validate(0) is False
        with pytest.raises(TypeMismatchError):
            column.validate(2)

    def test_any_accepts_scalars_rejects_containers(self):
        column = Column("v", ColumnType.ANY)
        assert column.validate("x") == "x"
        assert column.validate(7) == 7
        with pytest.raises(TypeMismatchError):
            column.validate([1, 2])

    def test_nullability(self):
        nullable = Column("a", ColumnType.TEXT, nullable=True)
        required = Column("a", ColumnType.TEXT, nullable=False)
        assert nullable.validate(None) is None
        with pytest.raises(TypeMismatchError):
            required.validate(None)


class TestTableSchema:
    def test_make_schema_builds_columns_and_primary_key(self):
        schema = make_schema(
            "Flights",
            [("fno", "INT", False), ("dest", "TEXT")],
            primary_key=("fno",),
        )
        assert schema.column_names == ("fno", "dest")
        assert schema.primary_key == ("fno",)
        assert schema.column("FNO").type is ColumnType.INTEGER
        assert not schema.column("fno").nullable

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            make_schema("t", [("a", "INT"), ("A", "TEXT")])

    def test_primary_key_must_reference_existing_column(self):
        with pytest.raises(SchemaError):
            make_schema("t", [("a", "INT")], primary_key=("b",))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ())

    def test_column_index_is_case_insensitive(self):
        schema = make_schema("t", [("Alpha", "INT"), ("beta", "TEXT")])
        assert schema.column_index("alpha") == 0
        assert schema.column_index("BETA") == 1
        with pytest.raises(UnknownColumnError):
            schema.column_index("gamma")

    def test_validate_row_checks_width_and_types(self):
        schema = make_schema("t", [("a", "INT"), ("b", "TEXT")])
        assert schema.validate_row([1, "x"]) == (1, "x")
        with pytest.raises(TypeMismatchError):
            schema.validate_row([1])
        with pytest.raises(TypeMismatchError):
            schema.validate_row(["x", 1])

    def test_row_from_mapping_fills_missing_with_none(self):
        schema = make_schema("t", [("a", "INT"), ("b", "TEXT")])
        assert schema.row_from_mapping({"a": 1}) == (1, None)
        with pytest.raises(UnknownColumnError):
            schema.row_from_mapping({"z": 1})

    def test_row_as_dict_round_trip(self):
        schema = make_schema("t", [("a", "INT"), ("b", "TEXT")])
        row = schema.validate_row([2, "y"])
        assert schema.row_as_dict(row) == {"a": 2, "b": "y"}
