"""Unit tests for CSV import/export."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage.csvio import export_table, import_table
from repro.storage.schema import make_schema
from repro.storage.table import Table


@pytest.fixture
def flights() -> Table:
    table = Table(make_schema(
        "Flights",
        [("fno", "INT"), ("dest", "TEXT"), ("price", "REAL"), ("direct", "BOOLEAN")],
    ))
    table.insert((122, "Paris", 450.0, True))
    table.insert((136, "Rome", None, False))
    return table


def test_export_then_import_round_trip(flights: Table, tmp_path):
    path = tmp_path / "flights.csv"
    assert export_table(flights, path) == 2

    target = Table(flights.schema)
    assert import_table(target, path) == 2
    assert target.rows() == flights.rows()


def test_import_subset_of_columns_fills_none(flights: Table, tmp_path):
    path = tmp_path / "partial.csv"
    path.write_text("fno,dest\n200,Athens\n", encoding="utf-8")
    import_table(flights, path)
    row = flights.lookup_equal({"fno": 200})[0]
    assert row == {"fno": 200, "dest": "Athens", "price": None, "direct": None}


def test_import_unknown_column_rejected(flights: Table, tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("fno,unknown\n1,2\n", encoding="utf-8")
    with pytest.raises(StorageError):
        import_table(flights, path)


def test_import_ragged_row_rejected(flights: Table, tmp_path):
    path = tmp_path / "ragged.csv"
    path.write_text("fno,dest\n1\n", encoding="utf-8")
    with pytest.raises(StorageError):
        import_table(flights, path)


def test_import_empty_file_returns_zero(flights: Table, tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("", encoding="utf-8")
    assert import_table(flights, path) == 0


def test_boolean_parsing_variants(tmp_path):
    table = Table(make_schema("t", [("flag", "BOOLEAN")]))
    path = tmp_path / "flags.csv"
    path.write_text("flag\ntrue\n0\nYES\n", encoding="utf-8")
    import_table(table, path)
    assert [row["flag"] for row in table.scan()] == [True, False, True]

    bad = tmp_path / "bad_flags.csv"
    bad.write_text("flag\nmaybe\n", encoding="utf-8")
    with pytest.raises(StorageError):
        import_table(table, bad)
