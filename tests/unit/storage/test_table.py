"""Unit tests for the in-memory table (insert/update/delete, indexes, snapshots)."""

from __future__ import annotations

import pytest

from repro.errors import ConstraintViolationError, StorageError, TypeMismatchError
from repro.storage.schema import make_schema
from repro.storage.table import Table


@pytest.fixture
def flights() -> Table:
    table = Table(make_schema(
        "Flights",
        [("fno", "INT", False), ("dest", "TEXT"), ("price", "REAL")],
        primary_key=("fno",),
    ))
    table.insert((122, "Paris", 450.0))
    table.insert((123, "Paris", 500.0))
    table.insert((136, "Rome", 300.0))
    return table


class TestInsert:
    def test_insert_validates_types(self, flights: Table):
        with pytest.raises(TypeMismatchError):
            flights.insert(("oops", "Paris", 1.0))

    def test_insert_enforces_primary_key(self, flights: Table):
        with pytest.raises(ConstraintViolationError):
            flights.insert((122, "Athens", 100.0))
        # the failed insert must not leave a partial row behind
        assert len(flights) == 3

    def test_insert_mapping_and_many(self):
        table = Table(make_schema("t", [("a", "INT"), ("b", "TEXT")]))
        table.insert_mapping({"b": "x", "a": 1})
        table.insert_many([(2, "y"), (3, "z")])
        assert sorted(row["a"] for row in table.scan()) == [1, 2, 3]

    def test_duplicate_rows_allowed_without_primary_key(self):
        table = Table(make_schema("t", [("a", "INT")]))
        table.insert((1,))
        table.insert((1,))
        assert len(table) == 2


class TestDeleteUpdate:
    def test_delete_where(self, flights: Table):
        deleted = flights.delete_where(lambda row: row["dest"] == "Paris")
        assert deleted == 2
        assert [row["dest"] for row in flights.scan()] == ["Rome"]

    def test_update_where_partial_assignment(self, flights: Table):
        updated = flights.update_where(
            lambda row: row["fno"] == 123, lambda row: {"price": row["price"] + 50}
        )
        assert updated == 1
        assert flights.lookup_equal({"fno": 123})[0]["price"] == 550.0

    def test_update_violating_unique_index_rolls_back_row(self, flights: Table):
        with pytest.raises(ConstraintViolationError):
            flights.update_where(lambda row: row["fno"] == 123, lambda row: {"fno": 122})
        # table unchanged: both original keys still present exactly once
        assert len(flights.lookup_equal({"fno": 122})) == 1
        assert len(flights.lookup_equal({"fno": 123})) == 1

    def test_truncate(self, flights: Table):
        flights.truncate()
        assert len(flights) == 0
        assert flights.lookup_equal({"fno": 122}) == []


class TestIndexes:
    def test_create_index_and_lookup(self, flights: Table):
        flights.create_index("by_dest", ["dest"])
        rows = flights.lookup_equal({"dest": "Paris"})
        assert {row["fno"] for row in rows} == {122, 123}

    def test_lookup_without_index_falls_back_to_scan(self, flights: Table):
        rows = flights.lookup_equal({"dest": "Rome", "price": 300.0})
        assert [row["fno"] for row in rows] == [136]

    def test_index_maintained_across_mutations(self, flights: Table):
        flights.create_index("by_dest", ["dest"])
        flights.insert((140, "Paris", 620.0))
        flights.delete_where(lambda row: row["fno"] == 122)
        assert {row["fno"] for row in flights.lookup_equal({"dest": "Paris"})} == {123, 140}

    def test_duplicate_index_name_rejected(self, flights: Table):
        flights.create_index("by_dest", ["dest"])
        with pytest.raises(StorageError):
            flights.create_index("by_dest", ["price"])

    def test_drop_index(self, flights: Table):
        flights.create_index("by_dest", ["dest"])
        flights.drop_index("by_dest")
        with pytest.raises(StorageError):
            flights.drop_index("by_dest")

    def test_find_index_matches_exact_column_order(self, flights: Table):
        index = flights.find_index(["fno"])
        assert index is not None and index.unique
        assert flights.find_index(["dest"]) is None


class TestSnapshots:
    def test_snapshot_restore_round_trip(self, flights: Table):
        snapshot = flights.snapshot()
        flights.insert((150, "Athens", 222.0))
        flights.delete_where(lambda row: row["fno"] == 122)
        flights.restore(snapshot)
        assert {row["fno"] for row in flights.scan()} == {122, 123, 136}

    def test_restore_rebuilds_unique_index(self, flights: Table):
        snapshot = flights.snapshot()
        flights.delete_where(lambda row: row["fno"] == 122)
        flights.restore(snapshot)
        # primary key still enforced after restore
        with pytest.raises(ConstraintViolationError):
            flights.insert((122, "Athens", 1.0))

    def test_contains_row(self, flights: Table):
        assert flights.contains_row((122, "Paris", 450.0))
        assert not flights.contains_row((122, "Paris", 451.0))
