"""Unit tests for the SQLite write-through mirror."""

from __future__ import annotations

import sqlite3

import pytest

from repro.storage.database import Database
from repro.storage.sqlite_backend import SQLiteMirror


@pytest.fixture
def catalog() -> Database:
    database = Database()
    database.create_table(
        name="Flights",
        columns=[("fno", "INT", False), ("dest", "TEXT"), ("sold_out", "BOOLEAN")],
        primary_key=("fno",),
    )
    database.insert_many(
        "Flights", [(122, "Paris", False), (123, "Paris", True), (136, "Rome", False)]
    )
    return database


def test_attach_pushes_existing_rows(catalog: Database, tmp_path):
    path = tmp_path / "youtopia.db"
    with SQLiteMirror(catalog, path) as mirror:
        assert mirror.persisted_tables() == ["Flights"]
        assert mirror.persisted_row_count("Flights") == 3


def test_changes_are_mirrored(catalog: Database, tmp_path):
    path = tmp_path / "youtopia.db"
    with SQLiteMirror(catalog, path) as mirror:
        catalog.insert("Flights", (140, "Athens", False))
        catalog.delete_where("Flights", lambda row: row["fno"] == 136)
        assert mirror.persisted_row_count("Flights") == 3
        rows = sqlite3.connect(str(path)).execute(
            "SELECT fno FROM Flights ORDER BY fno"
        ).fetchall()
        assert [row[0] for row in rows] == [122, 123, 140]


def test_drop_table_is_mirrored(catalog: Database, tmp_path):
    path = tmp_path / "youtopia.db"
    with SQLiteMirror(catalog, path) as mirror:
        catalog.drop_table("Flights")
        assert mirror.persisted_tables() == []


def test_boolean_round_trip_via_load_into(catalog: Database, tmp_path):
    path = tmp_path / "youtopia.db"
    mirror = SQLiteMirror(catalog, path)
    mirror.attach()
    mirror.detach()

    # A brand-new catalog (same schema, empty) recovers the persisted rows.
    fresh = Database()
    fresh.create_table(
        name="Flights",
        columns=[("fno", "INT", False), ("dest", "TEXT"), ("sold_out", "BOOLEAN")],
        primary_key=("fno",),
    )
    recovery = SQLiteMirror(fresh, path)
    loaded = recovery.load_into("Flights")
    recovery.close()
    assert loaded == 3
    row = fresh.table("Flights").lookup_equal({"fno": 123})[0]
    assert row["sold_out"] is True


def test_detach_stops_mirroring(catalog: Database, tmp_path):
    path = tmp_path / "youtopia.db"
    mirror = SQLiteMirror(catalog, path)
    mirror.attach()
    mirror.detach()
    catalog.insert("Flights", (150, "Berlin", False))
    assert mirror.persisted_row_count("Flights") == 3
    mirror.close()
