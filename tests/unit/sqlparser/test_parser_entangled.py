"""Unit tests for parsing entangled queries (the paper's SQL extension)."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.sqlparser import ast, parse_statement

KRAMER_SQL = (
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation "
    "CHOOSE 1"
)


def parse_entangled(sql: str) -> ast.EntangledSelect:
    statement = parse_statement(sql)
    assert isinstance(statement, ast.EntangledSelect)
    return statement


class TestPaperExample:
    def test_kramer_query_structure(self):
        query = parse_entangled(KRAMER_SQL)
        assert len(query.heads) == 1
        head = query.heads[0]
        assert head.relation == "Reservation"
        assert head.items[0] == ast.Literal("Kramer")
        assert head.items[1] == ast.ColumnRef("fno")
        assert query.choose == 1

    def test_where_contains_domain_and_answer_constraint(self):
        query = parse_entangled(KRAMER_SQL)
        where = query.where
        assert isinstance(where, ast.BinaryOp) and where.operator == "AND"
        assert isinstance(where.left, ast.InSubquery)
        assert isinstance(where.right, ast.AnswerMembership)
        assert where.right.relation == "Reservation"
        assert where.right.items[0] == ast.Literal("Jerry")

    def test_choose_defaults_to_one(self):
        query = parse_entangled(
            "SELECT 'Kramer', fno INTO ANSWER Reservation "
            "WHERE fno IN (SELECT fno FROM Flights)"
        )
        assert query.choose == 1

    def test_choose_k(self):
        query = parse_entangled(
            "SELECT 'Kramer', fno INTO ANSWER Reservation "
            "WHERE fno IN (SELECT fno FROM Flights) CHOOSE 3"
        )
        assert query.choose == 3


class TestMultiHead:
    def test_flight_and_hotel_heads(self):
        query = parse_entangled(
            "SELECT 'Jerry', fno INTO ANSWER Reservation, "
            "'Jerry', hid INTO ANSWER HotelReservation "
            "WHERE fno IN (SELECT fno FROM Flights) "
            "AND hid IN (SELECT hid FROM Hotels) "
            "AND ('Kramer', fno) IN ANSWER Reservation "
            "AND ('Kramer', hid) IN ANSWER HotelReservation "
            "CHOOSE 1"
        )
        assert [head.relation for head in query.heads] == ["Reservation", "HotelReservation"]
        assert all(len(head.items) == 2 for head in query.heads)

    def test_wide_head(self):
        query = parse_entangled(
            "SELECT 'Jerry', fno, block INTO ANSWER SeatBlock "
            "WHERE (fno, block) IN (SELECT fno, block_id FROM Seats)"
        )
        assert len(query.heads[0].items) == 3
        assert isinstance(query.where, ast.InSubquery)
        assert isinstance(query.where.operand, ast.TupleExpr)


class TestSyntaxErrors:
    def test_trailing_expressions_without_into_answer_rejected(self):
        with pytest.raises(ParseError):
            parse_statement(
                "SELECT 'Jerry', fno INTO ANSWER Reservation, hid "
                "WHERE fno IN (SELECT fno FROM Flights)"
            )

    def test_choose_requires_positive_integer(self):
        with pytest.raises(ParseError):
            parse_statement(
                "SELECT 'K', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM F) CHOOSE 0"
            )
        with pytest.raises(ParseError):
            parse_statement(
                "SELECT 'K', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM F) CHOOSE x"
            )

    def test_entangled_query_not_allowed_as_subquery(self):
        with pytest.raises(ParseError):
            parse_statement(
                "SELECT fno FROM Flights WHERE fno IN "
                "(SELECT 'K', fno INTO ANSWER R CHOOSE 1)"
            )

    def test_single_expression_answer_membership(self):
        query = parse_entangled(
            "SELECT 'K', fno INTO ANSWER R WHERE fno IN ANSWER Chosen"
        )
        membership = query.where
        assert isinstance(membership, ast.AnswerMembership)
        assert len(membership.items) == 1
        assert membership.relation == "Chosen"

    def test_not_in_answer_parses_but_is_flagged(self):
        query = parse_entangled(
            "SELECT 'K', fno INTO ANSWER R WHERE ('J', fno) NOT IN ANSWER R"
        )
        assert isinstance(query.where, ast.AnswerMembership)
        assert query.where.negated
