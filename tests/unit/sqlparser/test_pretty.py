"""Unit tests for the SQL pretty-printer (format → reparse stability)."""

from __future__ import annotations

import pytest

from repro.sqlparser import ast, format_expression, format_statement, parse_statement

ROUND_TRIP_STATEMENTS = [
    "SELECT fno, dest FROM Flights WHERE dest = 'Paris' ORDER BY fno LIMIT 3",
    "SELECT DISTINCT dest FROM Flights",
    "SELECT dest, COUNT(*) AS n FROM Flights GROUP BY dest HAVING COUNT(*) > 1",
    "SELECT f.fno FROM Flights AS f JOIN Airlines AS a ON f.fno = a.fno",
    "SELECT 1 WHERE price BETWEEN 100 AND 200 AND name LIKE 'Gr%'",
    "SELECT 1 WHERE dest IN ('Paris', 'Rome') AND fno IS NOT NULL",
    "CREATE TABLE Flights (fno INT NOT NULL, dest TEXT, PRIMARY KEY (fno))",
    "DROP TABLE IF EXISTS Flights",
    "INSERT INTO Flights (fno, dest) VALUES (1, 'Paris'), (2, 'Rome')",
    "UPDATE Flights SET price = price + 10 WHERE fno = 1",
    "DELETE FROM Flights WHERE dest = 'Rome'",
    (
        "SELECT 'Kramer', fno INTO ANSWER Reservation "
        "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
    ),
    (
        "SELECT 'Jerry', fno INTO ANSWER Reservation, 'Jerry', hid INTO ANSWER HotelReservation "
        "WHERE fno IN (SELECT fno FROM Flights) AND hid IN (SELECT hid FROM Hotels) "
        "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1"
    ),
]


@pytest.mark.parametrize("sql", ROUND_TRIP_STATEMENTS)
def test_format_then_reparse_is_stable(sql: str):
    """Formatting a parsed statement and reparsing it yields the same AST."""
    first = parse_statement(sql)
    formatted = format_statement(first)
    second = parse_statement(formatted)
    assert first == second
    # and formatting is idempotent
    assert format_statement(second) == formatted


def test_string_literal_escaping():
    assert format_expression(ast.Literal("O'Hare")) == "'O''Hare'"
    reparsed = parse_statement("SELECT " + format_expression(ast.Literal("O'Hare")))
    assert reparsed.items[0].expression.value == "O'Hare"


def test_null_and_booleans():
    assert format_expression(ast.Literal(None)) == "NULL"
    assert format_expression(ast.Literal(True)) == "TRUE"
    assert format_expression(ast.Literal(False)) == "FALSE"


def test_negated_answer_membership_formatting():
    expression = ast.AnswerMembership((ast.Literal("J"), ast.ColumnRef("fno")), "R", negated=True)
    assert format_expression(expression) == "(('J', fno) NOT IN ANSWER R)"


def test_unknown_node_rejected():
    class Bogus(ast.Expression):
        pass

    with pytest.raises(TypeError):
        format_expression(Bogus())
