"""Unit tests for parsing CREATE/DROP TABLE, INSERT, UPDATE, DELETE and scripts."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.sqlparser import ast, parse_script, parse_statement


class TestCreateDrop:
    def test_create_table_with_constraints(self):
        statement = parse_statement(
            "CREATE TABLE Flights (fno INT NOT NULL, dest TEXT, price REAL, "
            "PRIMARY KEY (fno))"
        )
        assert isinstance(statement, ast.CreateTable)
        assert statement.columns[0] == ast.ColumnDefinition("fno", "INT", False)
        assert statement.columns[1].nullable
        assert statement.primary_key == ("fno",)

    def test_create_table_inline_primary_key(self):
        statement = parse_statement("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        assert statement.primary_key == ("id",)

    def test_create_table_if_not_exists(self):
        statement = parse_statement("CREATE TABLE IF NOT EXISTS t (a INT)")
        assert statement.if_not_exists

    def test_composite_primary_key(self):
        statement = parse_statement(
            "CREATE TABLE Seats (fno INT, block_id INT, PRIMARY KEY (fno, block_id))"
        )
        assert statement.primary_key == ("fno", "block_id")

    def test_drop_table(self):
        statement = parse_statement("DROP TABLE IF EXISTS Flights")
        assert isinstance(statement, ast.DropTable)
        assert statement.if_exists
        assert not parse_statement("DROP TABLE Flights").if_exists


class TestInsertUpdateDelete:
    def test_insert_multiple_rows(self):
        statement = parse_statement(
            "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Rome')"
        )
        assert isinstance(statement, ast.Insert)
        assert len(statement.rows) == 2
        assert statement.columns == ()

    def test_insert_with_column_list(self):
        statement = parse_statement("INSERT INTO Flights (fno, dest) VALUES (1, 'X')")
        assert statement.columns == ("fno", "dest")

    def test_insert_expression_values(self):
        statement = parse_statement("INSERT INTO t VALUES (1 + 2, -3)")
        assert isinstance(statement.rows[0][0], ast.BinaryOp)

    def test_update(self):
        statement = parse_statement(
            "UPDATE Flights SET price = price * 2, dest = 'Paris' WHERE fno = 1"
        )
        assert isinstance(statement, ast.Update)
        assert [column for column, _ in statement.assignments] == ["price", "dest"]
        assert statement.where is not None

    def test_update_requires_equals(self):
        with pytest.raises(ParseError):
            parse_statement("UPDATE t SET a > 1")

    def test_delete_with_and_without_where(self):
        with_where = parse_statement("DELETE FROM Flights WHERE dest = 'Rome'")
        without = parse_statement("DELETE FROM Flights")
        assert isinstance(with_where, ast.Delete) and with_where.where is not None
        assert without.where is None


class TestScripts:
    def test_parse_script_splits_statements(self):
        statements = parse_script(
            """
            CREATE TABLE t (a INT);
            INSERT INTO t VALUES (1);
            SELECT a FROM t;
            """
        )
        assert [type(s).__name__ for s in statements] == ["CreateTable", "Insert", "Select"]

    def test_parse_script_tolerates_extra_semicolons(self):
        statements = parse_script("SELECT 1;; ;SELECT 2;")
        assert len(statements) == 2

    def test_parse_script_empty_input(self):
        assert parse_script("   \n  -- only a comment\n") == []

    def test_unknown_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("GRANT ALL ON Flights")
