"""Unit tests for parsing plain SELECT statements and expressions."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.sqlparser import ast, parse_statement


def parse_select(sql: str) -> ast.Select:
    statement = parse_statement(sql)
    assert isinstance(statement, ast.Select)
    return statement


class TestSelectShape:
    def test_simple_select(self):
        select = parse_select("SELECT fno, dest FROM Flights")
        assert [item.expression.name for item in select.items] == ["fno", "dest"]
        assert select.from_table == ast.TableRef("Flights", None)

    def test_select_star_and_qualified_star(self):
        select = parse_select("SELECT *, f.* FROM Flights f")
        assert isinstance(select.items[0].expression, ast.Star)
        assert select.items[1].expression == ast.Star(table="f")
        assert select.from_table.binding == "f"

    def test_aliases_explicit_and_implicit(self):
        select = parse_select("SELECT fno AS number, price cost FROM Flights")
        assert select.items[0].alias == "number"
        assert select.items[1].alias == "cost"

    def test_distinct_order_limit_offset(self):
        select = parse_select(
            "SELECT DISTINCT dest FROM Flights ORDER BY dest DESC, fno LIMIT 5 OFFSET 2"
        )
        assert select.distinct
        assert select.order_by[0].descending
        assert not select.order_by[1].descending
        assert select.limit == 5 and select.offset == 2

    def test_group_by_having(self):
        select = parse_select(
            "SELECT dest, COUNT(*) FROM Flights GROUP BY dest HAVING COUNT(*) > 1"
        )
        assert len(select.group_by) == 1
        assert isinstance(select.having, ast.BinaryOp)

    def test_joins(self):
        select = parse_select(
            "SELECT f.fno FROM Flights f JOIN Airlines a ON f.fno = a.fno "
            "LEFT JOIN Seats s ON s.fno = f.fno CROSS JOIN Users"
        )
        assert [join.kind for join in select.joins] == ["inner", "left", "cross"]
        assert select.joins[2].condition is None

    def test_implicit_cross_join_with_comma(self):
        select = parse_select("SELECT 1 FROM Flights, Hotels")
        assert select.joins[0].kind == "cross"

    def test_select_without_from(self):
        select = parse_select("SELECT 1 + 1")
        assert select.from_table is None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT fno FROM Flights extra garbage here")

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 LIMIT 'x'")


class TestExpressions:
    def test_operator_precedence_arithmetic(self):
        select = parse_select("SELECT 1 + 2 * 3")
        expression = select.items[0].expression
        assert isinstance(expression, ast.BinaryOp) and expression.operator == "+"
        assert isinstance(expression.right, ast.BinaryOp) and expression.right.operator == "*"

    def test_and_or_precedence(self):
        select = parse_select("SELECT 1 WHERE a = 1 OR b = 2 AND c = 3")
        where = select.where
        assert isinstance(where, ast.BinaryOp) and where.operator == "OR"
        assert isinstance(where.right, ast.BinaryOp) and where.right.operator == "AND"

    def test_not_and_comparison(self):
        select = parse_select("SELECT 1 WHERE NOT price > 100")
        assert isinstance(select.where, ast.UnaryOp)
        assert select.where.operator == "NOT"

    def test_unary_minus_and_plus(self):
        select = parse_select("SELECT -5, +7, -price")
        assert select.items[0].expression == ast.Literal(-5)
        assert select.items[1].expression == ast.Literal(7)
        assert select.items[2].expression == ast.UnaryOp("-", ast.ColumnRef("price"))

    def test_in_list_and_not_in(self):
        select = parse_select("SELECT 1 WHERE dest IN ('Paris', 'Rome') AND fno NOT IN (1, 2)")
        conjuncts = select.where
        assert isinstance(conjuncts.left, ast.InList) and not conjuncts.left.negated
        assert isinstance(conjuncts.right, ast.InList) and conjuncts.right.negated

    def test_in_subquery(self):
        select = parse_select(
            "SELECT 1 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris')"
        )
        assert isinstance(select.where, ast.InSubquery)
        assert isinstance(select.where.subquery, ast.Select)

    def test_between_like_is_null(self):
        select = parse_select(
            "SELECT 1 WHERE price BETWEEN 100 AND 200 AND name LIKE 'Gr%' AND dest IS NOT NULL"
        )
        flattened = str(select.where)
        assert "Between" in flattened and "Like" in flattened and "IsNull" in flattened

    def test_function_calls_and_distinct_aggregate(self):
        select = parse_select("SELECT COUNT(DISTINCT dest), LOWER(name) FROM Flights")
        count = select.items[0].expression
        assert isinstance(count, ast.FunctionCall) and count.distinct
        assert select.items[1].expression.name == "LOWER"

    def test_literals(self):
        select = parse_select("SELECT 'x', 42, 4.5, NULL, TRUE, FALSE")
        values = [item.expression.value for item in select.items]
        assert values == ["x", 42, 4.5, None, True, False]

    def test_tuple_expression(self):
        select = parse_select("SELECT 1 WHERE (a, b) IN (SELECT x, y FROM t)")
        assert isinstance(select.where.operand, ast.TupleExpr)

    def test_string_concatenation(self):
        select = parse_select("SELECT 'a' || 'b'")
        assert select.items[0].expression.operator == "||"

    def test_qualified_column_reference(self):
        select = parse_select("SELECT f.fno FROM Flights f")
        assert select.items[0].expression == ast.ColumnRef("fno", table="f")


class TestHelpers:
    def test_walk_and_column_refs(self):
        select = parse_select("SELECT a + b WHERE c = 1")
        refs = ast.expression_column_refs(select.items[0].expression)
        assert [ref.name for ref in refs] == ["a", "b"]

    def test_contains_aggregate(self):
        select = parse_select("SELECT MAX(price) + 1, fno FROM Flights")
        assert ast.contains_aggregate(select.items[0].expression)
        assert not ast.contains_aggregate(select.items[1].expression)
