"""Unit tests for the SQL tokenizer."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.sqlparser.tokens import TokenType, tokenize


def kinds(text: str) -> list[TokenType]:
    return [token.type for token in tokenize(text)]


def values(text: str) -> list[str]:
    return [token.value for token in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_are_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        assert values("Flights fno_2") == ["Flights", "fno_2"]

    def test_numbers(self):
        tokens = tokenize("42 3.14 .5")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.INTEGER, TokenType.FLOAT, TokenType.FLOAT,
        ]
        assert [t.value for t in tokens[:-1]] == ["42", "3.14", ".5"]

    def test_string_literals_with_escaped_quotes(self):
        tokens = tokenize("'Paris' 'O''Hare'")
        assert [t.value for t in tokens[:-1]] == ["Paris", "O'Hare"]
        assert tokens[0].type is TokenType.STRING

    def test_quoted_identifiers(self):
        tokens = tokenize('"Weird Name"')
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "Weird Name"

    def test_operators_longest_match_first(self):
        assert values("a <= b <> c != d || e") == ["a", "<=", "b", "<>", "c", "!=", "d", "||", "e"]

    def test_punctuation_and_eof(self):
        tokens = tokenize("(a, b);")
        assert tokens[-1].type is TokenType.EOF
        assert [t.value for t in tokens[:-1]] == ["(", "a", ",", "b", ")", ";"]


class TestCommentsAndPositions:
    def test_line_comment_skipped(self):
        assert values("SELECT -- the flights\n fno") == ["SELECT", "fno"]

    def test_block_comment_skipped(self):
        assert values("SELECT /* nothing\n to see */ fno") == ["SELECT", "fno"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(ParseError):
            tokenize("SELECT /* oops")

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokenize("SELECT 'oops")

    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("SELECT ?")
        assert excinfo.value.line == 1
        assert excinfo.value.column == 8

    def test_positions_track_lines(self):
        tokens = tokenize("SELECT\n  fno")
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_entangled_keywords_recognised(self):
        tokens = tokenize("INTO ANSWER Reservation CHOOSE 1")
        assert tokens[0].is_keyword("INTO")
        assert tokens[1].is_keyword("ANSWER")
        assert tokens[2].type is TokenType.IDENTIFIER
        assert tokens[3].is_keyword("CHOOSE")
