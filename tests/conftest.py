"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make sibling helper modules (service_conformance.py) importable from test
# modules in any subdirectory, mirroring the src/ shim in the root conftest.
_TESTS = Path(__file__).resolve().parent
if str(_TESTS) not in sys.path:
    sys.path.insert(0, str(_TESTS))

from repro.apps.travel.dataset import TravelDataset, generate_dataset, install_and_load
from repro.apps.travel.service import TravelService
from repro.apps.travel.social import FriendGraph, generate_friend_graph
from repro.core.system import YoutopiaSystem
from repro.relalg.engine import QueryEngine
from repro.storage.database import Database


@pytest.fixture
def database() -> Database:
    """An empty in-memory catalog."""
    return Database()


@pytest.fixture
def engine(database: Database) -> QueryEngine:
    """A query engine over an empty catalog."""
    return QueryEngine(database)


@pytest.fixture
def system() -> YoutopiaSystem:
    """A fresh Youtopia instance with a fixed seed (deterministic CHOOSE)."""
    return YoutopiaSystem(seed=0)


@pytest.fixture
def figure1_system(system: YoutopiaSystem) -> YoutopiaSystem:
    """The system of Figure 1: the four-flight database plus the Airlines table."""
    system.execute_script(
        """
        CREATE TABLE Flights (fno INTEGER NOT NULL, dest TEXT, PRIMARY KEY (fno));
        CREATE TABLE Airlines (fno INTEGER NOT NULL, airline TEXT, PRIMARY KEY (fno));
        INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris'), (136, 'Rome');
        INSERT INTO Airlines VALUES (122, 'United'), (123, 'United'),
                                    (134, 'Lufthansa'), (136, 'Alitalia');
        """
    )
    system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return system


KRAMER_SQL = (
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
)
JERRY_SQL = (
    "SELECT 'Jerry', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1"
)


@pytest.fixture
def kramer_sql() -> str:
    return KRAMER_SQL


@pytest.fixture
def jerry_sql() -> str:
    return JERRY_SQL


@pytest.fixture
def travel_dataset() -> TravelDataset:
    return generate_dataset(num_flights=24, num_hotels=12, num_users=12, seed=7)


@pytest.fixture
def travel_system(travel_dataset: TravelDataset) -> YoutopiaSystem:
    """A system with the travel schema and a small synthetic dataset loaded."""
    system = YoutopiaSystem(seed=1)
    install_and_load(system, travel_dataset)
    return system


@pytest.fixture
def friend_graph(travel_dataset: TravelDataset) -> FriendGraph:
    return generate_friend_graph(
        [user.username for user in travel_dataset.users], average_friends=4, seed=3
    )


@pytest.fixture
def travel_service(travel_system: YoutopiaSystem, friend_graph: FriendGraph) -> TravelService:
    return TravelService(travel_system, friends=friend_graph)
