"""Transport-agnostic conformance scenarios for the coordination service.

Every class here is a scenario suite written purely against the
``CoordinationService`` / ``IntrospectionService`` protocol surface — no
reaching into ``service.system``, no concrete handle classes.  Two test
modules instantiate them against different transports:

* ``tests/unit/service/test_service_api.py`` — ``InProcessService``;
* ``tests/integration/test_remote_conformance.py`` — ``RemoteService``
  against a live ``CoordinationServer`` on localhost.

A transport passes the suite iff callers cannot tell it apart from the
in-process implementation: same typed errors, same handle semantics, same
coordination outcomes, same statistics.  Each module provides a ``service``
fixture yielding a fresh service with the Flights table loaded and the
``Reservation`` answer relation declared (see :data:`SETUP`).

Completion-callback scenarios use :func:`wait_until` instead of asserting
immediately: in-process callbacks fire synchronously inside the completing
``submit``, while a network transport delivers them asynchronously via
server push — both are conformant, so the scenarios accept either timing.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable

import pytest

from repro.core.compiler import compile_entangled
from repro.core.coordinator import QueryStatus
from repro.errors import (
    CoordinationTimeoutError,
    EntanglementError,
    PlanError,
    QueryNotPendingError,
)
from repro.service import AnswerEnvelope, SubmitRequest

SETUP = """
CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT);
INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (136, 'Rome');
"""

KRAMER_SQL = (
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
)
JERRY_SQL = (
    "SELECT 'Jerry', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
    "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1"
)

_owner_counter = itertools.count(1)


def fresh_owner(prefix: str = "user") -> str:
    """A process-unique owner name (scenarios share one answer relation)."""
    return f"{prefix}{next(_owner_counter):04d}"


def pair_sql(owner: str, partner: str) -> str:
    """An entangled booking for ``owner`` that coordinates with ``partner``."""
    return (
        f"SELECT '{owner}', fno INTO ANSWER Reservation "
        "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        f"AND ('{partner}', fno) IN ANSWER Reservation CHOOSE 1"
    )


def unmatchable_sql(owner: str) -> str:
    """A booking whose partner never submits — stays pending forever."""
    return pair_sql(owner, f"ghost-{owner}")


def wait_until(predicate: Callable[[], bool], timeout: float = 5.0) -> bool:
    """Poll ``predicate`` until true or the deadline passes (returns it)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


# ---------------------------------------------------------------------------
# Single-query submission and the future-style handle surface
# ---------------------------------------------------------------------------


class SubmissionConformance:
    def test_submit_returns_future_style_handle(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer", tag="k"))
        for attribute in ("result", "done", "exception", "add_done_callback", "cancel"):
            assert callable(getattr(kramer, attribute))
        assert kramer.owner == "Kramer" and kramer.tag == "k"
        assert not kramer.done()
        jerry = service.submit(JERRY_SQL, owner="Jerry")
        assert jerry.done()
        assert wait_until(kramer.done)
        assert kramer.is_answered and jerry.is_answered

    def test_result_returns_answer_envelope(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
        envelope = kramer.result(timeout=5.0)
        assert isinstance(envelope, AnswerEnvelope)
        assert envelope.owner == "Kramer"
        assert kramer.query_id in envelope.group and len(envelope.group) == 2
        (relation, values), *_ = envelope.all_tuples()
        assert relation == "Reservation" and values[0] == "Kramer"

    def test_result_timeout_raises(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        with pytest.raises(CoordinationTimeoutError):
            kramer.result(timeout=0.01)

    def test_exception_surfaces_cancellation(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        kramer.cancel()
        assert wait_until(kramer.cancelled)
        error = kramer.exception()
        assert isinstance(error, EntanglementError)
        with pytest.raises(EntanglementError):
            kramer.result(timeout=0.1)

    def test_done_callback_fires_on_answer(self, service):
        fired: list[str] = []
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        kramer.add_done_callback(lambda handle: fired.append(handle.query_id))
        assert fired == []
        service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
        assert wait_until(lambda: fired == [kramer.query_id])

    def test_done_callback_fires_immediately_when_terminal(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
        kramer.result(timeout=5.0)
        fired: list[str] = []
        kramer.add_done_callback(lambda handle: fired.append(handle.query_id))
        assert fired == [kramer.query_id]

    def test_broken_callback_does_not_poison_coordination(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        kramer.add_done_callback(lambda _handle: 1 / 0)
        jerry = service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
        assert jerry.is_answered
        assert wait_until(lambda: kramer.is_answered)

    def test_callback_sees_whole_group_in_final_state(self, service):
        """Done callbacks observe every group member already terminal."""
        observed: dict[str, object] = {}
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))

        def observe(handle) -> None:
            partner_id = next(
                qid for qid in handle.group_query_ids if qid != handle.query_id
            )
            partner = service.request(partner_id)
            observed["partner_status"] = partner.status
            observed["partner_result"] = partner.result(timeout=5.0)

        kramer.add_done_callback(observe)
        service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
        assert wait_until(lambda: "partner_result" in observed)
        assert observed["partner_status"] is QueryStatus.ANSWERED
        assert observed["partner_result"].owner == "Jerry"

    def test_handle_equality_is_by_query_id(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        assert kramer == service.request(kramer.query_id)
        assert kramer in {service.request(kramer.query_id)}


# ---------------------------------------------------------------------------
# Batch submission
# ---------------------------------------------------------------------------


class BatchConformance:
    def test_submit_many_answers_cross_referencing_pair(self, service):
        kramer, jerry = service.submit_many(
            [
                SubmitRequest(sql=KRAMER_SQL, owner="Kramer", tag="left"),
                SubmitRequest(sql=JERRY_SQL, owner="Jerry", tag="right"),
            ]
        )
        assert kramer.is_answered and jerry.is_answered
        assert (kramer.tag, jerry.tag) == ("left", "right")
        stats = service.stats()
        assert stats["match_attempts"] == 1
        assert stats["groups_matched"] == 1
        assert stats["failed_match_attempts"] == 0

    def test_submit_many_rejected_item_does_not_abort_batch(self, service):
        unsafe = (
            "SELECT 'Loner', fno INTO ANSWER Reservation "
            "WHERE ('Ghost', fno) IN ANSWER Reservation"
        )
        handles = service.submit_many(
            [
                SubmitRequest(sql=KRAMER_SQL, owner="Kramer"),
                SubmitRequest(sql=unsafe, owner="Loner"),
                SubmitRequest(sql=JERRY_SQL, owner="Jerry"),
            ]
        )
        assert handles[0].is_answered and handles[2].is_answered
        assert handles[1].status is QueryStatus.REJECTED
        assert handles[1].error
        assert handles[1].exception() is not None

    def test_submit_many_default_owner_applies(self, service):
        (handle,) = service.submit_many([KRAMER_SQL], owner="Kramer")
        assert handle.owner == "Kramer"

    def test_duplicate_batch_handle_is_terminal_and_self_contained(self, service):
        """A batch-rejected duplicate shares its id with the original; its
        handle must resolve against its own record, not the registered one."""
        query = compile_entangled(KRAMER_SQL, owner="Kramer")
        original, duplicate = service.submit_many([query, query])
        assert original.status is QueryStatus.PENDING
        assert duplicate.status is QueryStatus.REJECTED
        with pytest.raises(EntanglementError):
            duplicate.result(timeout=1.0)
        fired: list[str] = []
        duplicate.add_done_callback(lambda handle: fired.append(handle.status.value))
        assert fired == ["rejected"]
        # the original registration is untouched by the duplicate's handle
        assert original.status is QueryStatus.PENDING

    def test_wait_many_returns_envelope_per_query(self, service):
        handles = service.submit_many(
            [
                SubmitRequest(sql=KRAMER_SQL, owner="Kramer"),
                SubmitRequest(sql=JERRY_SQL, owner="Jerry"),
            ]
        )
        envelopes = service.wait_many([handle.query_id for handle in handles], timeout=5.0)
        assert [envelope.owner for envelope in envelopes] == ["Kramer", "Jerry"]


# ---------------------------------------------------------------------------
# Plain SQL through the service
# ---------------------------------------------------------------------------


class PlainQueryConformance:
    def test_relation_result_scalar_and_iteration(self, service):
        result = service.query("SELECT COUNT(*) FROM Flights")
        assert result.scalar() == 3
        rows = service.query("SELECT fno FROM Flights ORDER BY fno")
        assert len(rows) == 3
        assert list(rows) == [(122,), (123,), (136,)]
        with pytest.raises(ValueError):
            rows.scalar()

    def test_query_rejects_entangled_sql(self, service):
        with pytest.raises(PlanError):
            service.query(KRAMER_SQL)

    def test_answers_reflect_coordination(self, service):
        service.submit_many(
            [
                SubmitRequest(sql=KRAMER_SQL, owner="Kramer"),
                SubmitRequest(sql=JERRY_SQL, owner="Jerry"),
            ]
        )
        booked = dict(service.answers("Reservation"))
        assert set(booked) == {"Kramer", "Jerry"}
        assert booked["Kramer"] == booked["Jerry"]


# ---------------------------------------------------------------------------
# Introspection extensions
# ---------------------------------------------------------------------------


class IntrospectionConformance:
    def test_requests_pending_and_retry(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        assert [query.query_id for query in service.pending_queries()] == [kramer.query_id]
        assert service.requests() == [kramer]
        assert service.retry_pending() == 0
        stats = service.stats()
        assert stats.pending == 1
        assert stats["queries_registered"] == 1

    def test_pending_query_carries_owner_and_constraints(self, service):
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        (pending,) = service.pending_queries()
        assert pending.query_id == kramer.query_id
        assert pending.owner == "Kramer"
        assert pending.answer_relations() == {"Reservation"}

    def test_stats_includes_transaction_counters(self, service):
        counters = service.stats().as_dict()
        assert "transactions_committed" in counters
        assert "transactions_rolled_back" in counters


# ---------------------------------------------------------------------------
# Match policies: priority submissions and the matching statistics block
# ---------------------------------------------------------------------------


class PolicyConformance:
    """Match-policy surface through the protocol: ``SubmitRequest.priority``
    must round-trip to the pending pool on every transport, prioritised
    submissions must coordinate exactly like plain ones, and ``stats()``
    must expose the policy decision counters."""

    def test_priority_round_trips_to_pending_pool(self, service):
        owner = fresh_owner("pr")
        handle = service.submit(
            SubmitRequest(sql=unmatchable_sql(owner), owner=owner, priority=7.5)
        )
        pending = {query.query_id: query for query in service.pending_queries()}
        assert pending[handle.query_id].priority == 7.5

    def test_priority_defaults_to_absent(self, service):
        owner = fresh_owner("pd")
        handle = service.submit(SubmitRequest(sql=unmatchable_sql(owner), owner=owner))
        pending = {query.query_id: query for query in service.pending_queries()}
        assert pending[handle.query_id].priority is None

    def test_prioritised_pair_coordinates_like_plain_pair(self, service):
        left, right = fresh_owner("pl"), fresh_owner("pm")
        first = service.submit(
            SubmitRequest(sql=pair_sql(left, right), owner=left, priority=2.0)
        )
        second = service.submit(SubmitRequest(sql=pair_sql(right, left), owner=right))
        envelope = first.result(timeout=5.0)
        assert set(envelope.group) == {first.query_id, second.query_id}
        assert second.result(timeout=5.0).owner == right

    def test_stats_expose_matching_policy_and_decisions(self, service):
        matching = dict(service.stats().matching)
        assert matching["policy"] in {"first_match", "priority", "fairness", "min_cost"}
        assert matching["candidate_limit"] >= 1
        before = matching["decisions"]
        left, right = fresh_owner("ps"), fresh_owner("pt")
        service.submit(SubmitRequest(sql=pair_sql(left, right), owner=left))
        handle = service.submit(SubmitRequest(sql=pair_sql(right, left), owner=right))
        handle.result(timeout=5.0)
        after = dict(service.stats().matching)
        assert after["decisions"] >= before + 1
        assert after["groups_enumerated"] >= after["decisions"]


# ---------------------------------------------------------------------------
# Concurrency: many client threads against one service
# ---------------------------------------------------------------------------


class ConcurrencyConformance:
    """Threaded submit/wait/cancel races through the protocol surface only."""

    def test_pairs_submitted_from_many_threads_all_coordinate(self, service):
        pairs = [(fresh_owner("ca"), fresh_owner("cb")) for _ in range(8)]
        items = [
            (owner, pair_sql(owner, partner))
            for left, right in pairs
            for owner, partner in ((left, right), (right, left))
        ]
        handles = []
        handles_lock = threading.Lock()

        def submit(owner: str, sql: str) -> None:
            handle = service.submit(SubmitRequest(sql=sql, owner=owner))
            with handles_lock:
                handles.append(handle)

        threads = [threading.Thread(target=submit, args=item) for item in items]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not any(thread.is_alive() for thread in threads)

        assert len(handles) == 16
        for handle in handles:
            handle.result(timeout=10.0)
        booked = dict(service.answers("Reservation"))
        for left, right in pairs:
            assert booked[left] == booked[right]

    def test_cancel_races_with_waiters(self, service):
        """Waiters blocked on a query are released when another thread cancels."""
        handles = [
            service.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("cw"))))
            for _ in range(6)
        ]
        outcomes: dict[str, str] = {}
        outcomes_lock = threading.Lock()

        def waiter(query_id: str) -> None:
            try:
                service.wait(query_id, timeout=10.0)
                outcome = "answered"
            except CoordinationTimeoutError:
                outcome = "timeout"
            except EntanglementError:
                outcome = "cancelled"
            with outcomes_lock:
                outcomes[query_id] = outcome

        waiters = [
            threading.Thread(target=waiter, args=(handle.query_id,)) for handle in handles
        ]
        for thread in waiters:
            thread.start()
        cancellers = [
            threading.Thread(target=service.cancel, args=(handle.query_id,))
            for handle in handles
        ]
        for thread in cancellers:
            thread.start()
        for thread in cancellers + waiters:
            thread.join(timeout=10.0)
        assert not any(thread.is_alive() for thread in waiters)
        assert all(outcome == "cancelled" for outcome in outcomes.values())
        assert service.stats().pending == 0

    def test_concurrent_cancel_of_same_query_cancels_exactly_once(self, service):
        handle = service.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("cc"))))
        errors: list[Exception] = []
        errors_lock = threading.Lock()

        def cancel() -> None:
            try:
                service.cancel(handle.query_id)
            except QueryNotPendingError as exc:
                with errors_lock:
                    errors.append(exc)

        threads = [threading.Thread(target=cancel) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        # exactly one cancel wins; the others observe the query as gone
        assert len(errors) == 5
        assert wait_until(handle.cancelled)
        assert service.stats()["queries_cancelled"] == 1

    def test_waiters_are_woken_by_other_threads(self, service):
        left, right = fresh_owner("ww"), fresh_owner("ww")
        early = service.submit(SubmitRequest(sql=pair_sql(left, right), owner=left))
        answers: dict[str, AnswerEnvelope] = {}

        def wait_for_early() -> None:
            answers["envelope"] = service.wait(early.query_id, timeout=10.0)

        waiting = threading.Thread(target=wait_for_early)
        waiting.start()
        service.submit(SubmitRequest(sql=pair_sql(right, left), owner=right))
        waiting.join(timeout=10.0)
        assert not waiting.is_alive()
        assert "Reservation" in answers["envelope"].tuples

    def test_concurrent_batches_from_many_threads(self, service):
        batches = []
        for _ in range(4):
            batch = []
            for _ in range(3):
                left, right = fresh_owner("ba"), fresh_owner("bb")
                batch.append(SubmitRequest(sql=pair_sql(left, right), owner=left))
                batch.append(SubmitRequest(sql=pair_sql(right, left), owner=right))
            batches.append(batch)

        all_handles = []
        handles_lock = threading.Lock()

        def submit_batch(batch) -> None:
            handles = service.submit_many(batch)
            with handles_lock:
                all_handles.extend(handles)

        threads = [threading.Thread(target=submit_batch, args=(batch,)) for batch in batches]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)

        assert len(all_handles) == 24
        for handle in all_handles:
            handle.result(timeout=10.0)
        assert service.stats().pending == 0
