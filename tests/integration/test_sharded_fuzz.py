"""Fuzz harness: sharded matching is group-equivalent to the single-lock matcher.

For ≥200 randomly generated pools of entangled queries, the same compiled IR
is submitted in the same order to

* an inline single-lock system (``match_workers=0``, the seed behaviour), and
* a sharded event-driven system (workers + shards + cross-shard fallback),

and the resulting *query-id partition* must be identical: the same set of
answered groups and the same set of still-pending queries.  Pools are built
so the partition is unique — every entangled constraint names its partner by
a distinct constant — which makes the comparison independent of the matcher's
randomised exploration order.

Pool ingredients (mixed per pool, all over 4 answer relations so queries
spread across shards):

* matchable pairs (the Jerry/Kramer shape),
* triangles A→B→C→A on one relation,
* cross-relation pairs whose two relations may hash to *different* shards —
  these live in the global residence and exercise the cross-shard pass,
* unmatchable singletons (partner never arrives),
* grounding-fail pairs that unify structurally but have empty / disjoint
  flight domains, so they permanently occupy the pending pool.
"""

from __future__ import annotations

import random

from repro.core.config import SystemConfig
from repro.core.coordinator import QueryStatus
from repro.core.sharding import ShardedCoordinator, relation_signature, route_signature
from repro.core.system import YoutopiaSystem

RELATIONS = ("ResA", "ResB", "ResC", "ResD")
# Paris/Rome have flights, Atlantis never does (grounding-fail fuel).
DESTINATIONS = ("Paris", "Rome")

NUM_POOLS = 200
SHARD_COUNT = 2
MATCH_WORKERS = 2


def build_system(
    match_workers: int, match_policy: str = "first_match", **config_kwargs
) -> YoutopiaSystem:
    config = SystemConfig(
        seed=7,
        match_workers=match_workers,
        shard_count=SHARD_COUNT,
        match_policy=match_policy,
        **config_kwargs,
    )
    system = YoutopiaSystem(config=config)
    system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
    system.execute(
        "INSERT INTO Flights VALUES "
        "(1, 'Paris'), (2, 'Paris'), (3, 'Paris'), (4, 'Rome'), (5, 'Rome')"
    )
    for relation in RELATIONS:
        system.declare_answer_relation(relation, ["traveler", "fno"], ["TEXT", "INTEGER"])
    return system


class PoolBuilder:
    """Generates one random pool of entangled SQL with a unique partition."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self._counter = 0
        self.statements: list[str] = []

    def _users(self, count: int) -> list[str]:
        users = [f"u{self._counter + offset}" for offset in range(count)]
        self._counter += count
        return users

    def _entangled(self, user: str, partner: str, head_rel: str, need_rel: str, dest: str) -> str:
        return (
            f"SELECT '{user}', fno INTO ANSWER {head_rel} "
            f"WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') "
            f"AND ('{partner}', fno) IN ANSWER {need_rel} CHOOSE 1"
        )

    def add_pair(self) -> None:
        left, right = self._users(2)
        relation = self.rng.choice(RELATIONS)
        dest = self.rng.choice(DESTINATIONS)
        self.statements.append(self._entangled(left, right, relation, relation, dest))
        self.statements.append(self._entangled(right, left, relation, relation, dest))

    def add_triangle(self) -> None:
        first, second, third = self._users(3)
        relation = self.rng.choice(RELATIONS)
        dest = self.rng.choice(DESTINATIONS)
        self.statements.append(self._entangled(first, second, relation, relation, dest))
        self.statements.append(self._entangled(second, third, relation, relation, dest))
        self.statements.append(self._entangled(third, first, relation, relation, dest))

    def add_cross_relation_pair(self) -> None:
        left, right = self._users(2)
        rel_left, rel_right = self.rng.sample(RELATIONS, 2)
        dest = self.rng.choice(DESTINATIONS)
        self.statements.append(self._entangled(left, right, rel_left, rel_right, dest))
        self.statements.append(self._entangled(right, left, rel_right, rel_left, dest))

    def add_unmatchable(self) -> None:
        (user,) = self._users(1)
        relation = self.rng.choice(RELATIONS)
        self.statements.append(
            self._entangled(user, f"ghost-{user}", relation, relation, self.rng.choice(DESTINATIONS))
        )

    def add_grounding_fail_pair(self) -> None:
        left, right = self._users(2)
        relation = self.rng.choice(RELATIONS)
        if self.rng.random() < 0.5:
            dests = ("Paris", "Atlantis")  # empty domain on one side
        else:
            dests = ("Paris", "Rome")  # both non-empty but disjoint fnos
        self.statements.append(self._entangled(left, right, relation, relation, dests[0]))
        self.statements.append(self._entangled(right, left, relation, relation, dests[1]))

    def build(self) -> list[str]:
        generators = [
            (self.add_pair, 4),
            (self.add_triangle, 1),
            (self.add_cross_relation_pair, 2),
            (self.add_unmatchable, 2),
            (self.add_grounding_fail_pair, 2),
        ]
        for generator, weight in generators:
            for _ in range(self.rng.randint(0, weight)):
                generator()
        if not self.statements:
            self.add_pair()
        self.rng.shuffle(self.statements)
        return self.statements


def outcome_partition(system: YoutopiaSystem) -> tuple[set[frozenset[str]], set[str]]:
    groups: set[frozenset[str]] = set()
    pending: set[str] = set()
    for request in system.coordinator.requests():
        if request.status is QueryStatus.ANSWERED:
            groups.add(frozenset(request.group_query_ids))
        elif request.status is QueryStatus.PENDING:
            pending.add(request.query_id)
    return groups, pending


def test_sharded_matching_is_group_equivalent_over_200_random_pools():
    total_groups = 0
    total_pending = 0
    total_cross_shard = 0
    for seed in range(NUM_POOLS):
        rng = random.Random(seed)
        statements = PoolBuilder(rng).build()

        inline_system = build_system(match_workers=0)
        sharded_system = build_system(match_workers=MATCH_WORKERS)
        try:
            # compile once so both systems see identical query ids
            compiled = [inline_system.compile(sql) for sql in statements]
            for query in compiled:
                inline_system.submit_entangled(query)
            for query in compiled:
                sharded_system.submit_entangled(query)
            assert isinstance(sharded_system.coordinator, ShardedCoordinator)
            assert sharded_system.drain(timeout=30.0), f"pool {seed} did not drain"

            inline_groups, inline_pending = outcome_partition(inline_system)
            sharded_groups, sharded_pending = outcome_partition(sharded_system)
            assert sharded_groups == inline_groups, f"pool {seed}: answered groups differ"
            assert sharded_pending == inline_pending, f"pool {seed}: pending sets differ"
            assert not sharded_system.coordinator.worker_pool.errors

            total_groups += len(inline_groups)
            total_pending += len(inline_pending)
            total_cross_shard += sum(
                1
                for query in compiled
                if route_signature(relation_signature(query), SHARD_COUNT) is None
            )
        finally:
            inline_system.close()
            sharded_system.close()

    # the harness must actually exercise the interesting paths
    assert total_groups > 100
    assert total_pending > 100
    assert total_cross_shard > 50


# ---------------------------------------------------------------------------
# Policy invariance: every selection policy answers the same partition as the
# classic first-match search, and only ever commits *valid* groups.
# ---------------------------------------------------------------------------

POLICY_ROTATION = ("priority", "fairness", "min_cost")


def assert_answered_groups_valid(system: YoutopiaSystem, pool_seed: int) -> int:
    """Every committed group must satisfy each member's atoms.

    For each answered group: every member's head atoms instantiated under its
    chosen binding must be among the tuples that member contributed, and every
    member's ``IN ANSWER`` constraint atoms must be satisfied by the union of
    tuples the whole group contributed.  Returns the number of distinct
    groups checked.
    """
    requests = {record.query_id: record for record in system.coordinator.requests()}
    seen_groups: set[frozenset[str]] = set()
    for record in requests.values():
        if record.status is not QueryStatus.ANSWERED:
            continue
        group_ids = frozenset(record.group_query_ids)
        if group_ids in seen_groups:
            continue
        seen_groups.add(group_ids)
        members = [requests[query_id] for query_id in group_ids]
        pool_tuples: dict[str, set[tuple]] = {}
        for member in members:
            assert member.answer is not None, f"pool {pool_seed}: answered without answer"
            for relation, rows in member.answer.tuples.items():
                pool_tuples.setdefault(relation.lower(), set()).update(rows)
        for member in members:
            binding = member.answer.binding
            contributed = {
                relation.lower(): set(rows)
                for relation, rows in member.answer.tuples.items()
            }
            for atom in member.query.heads:
                values = atom.substitute(binding)
                assert values in contributed.get(atom.relation.lower(), set()), (
                    f"pool {pool_seed}: head {atom.relation}{values} not contributed "
                    f"by {member.query_id}"
                )
            for atom in member.query.answer_atoms:
                values = atom.substitute(binding)
                assert values in pool_tuples.get(atom.relation.lower(), set()), (
                    f"pool {pool_seed}: constraint {atom.relation}{values} of "
                    f"{member.query_id} unsatisfied by its group"
                )
    return len(seen_groups)


def test_policies_are_partition_equivalent_over_200_random_pools():
    """200 pools: first_match baseline ≡ each rotated policy, all groups valid.

    Pools have a unique query-id partition (partners are named by distinct
    constants), so a correct policy may pick *different bindings* but must
    answer exactly the same groups and leave the same queries pending.
    """
    total_groups = 0
    total_decisions = 0
    total_enumerated = 0
    total_skipped = 0
    for seed in range(NUM_POOLS):
        rng = random.Random(seed)
        statements = PoolBuilder(rng).build()
        policy = POLICY_ROTATION[seed % len(POLICY_ROTATION)]

        baseline_system = build_system(match_workers=0)
        policy_system = build_system(match_workers=0, match_policy=policy)
        try:
            compiled = [baseline_system.compile(sql) for sql in statements]
            for query in compiled:
                baseline_system.submit_entangled(query)
            for query in compiled:
                policy_system.submit_entangled(query)

            baseline_groups, baseline_pending = outcome_partition(baseline_system)
            policy_groups, policy_pending = outcome_partition(policy_system)
            assert policy_groups == baseline_groups, (
                f"pool {seed}: {policy} answered a different partition"
            )
            assert policy_pending == baseline_pending, (
                f"pool {seed}: {policy} left a different pending set"
            )

            assert_answered_groups_valid(baseline_system, seed)
            total_groups += assert_answered_groups_valid(policy_system, seed)

            stats = policy_system.coordinator.matching_statistics()
            assert stats["policy"] == policy
            assert len(policy_groups) <= stats["decisions"]
            total_decisions += stats["decisions"]
            total_enumerated += stats["groups_enumerated"]
            total_skipped += stats["groups_skipped"]
        finally:
            baseline_system.close()
            policy_system.close()

    # the differential pass must actually exercise bounded enumeration:
    # several candidate groups per decision, with non-chosen ones skipped
    assert total_groups > 100
    assert total_decisions > 100
    assert total_enumerated > total_decisions
    assert total_skipped > 0


# ---------------------------------------------------------------------------
# Match-execution invariance: compiled plans and the grid index are pure
# speedups — every (match_plan, provider_index) combination answers the same
# partition AND commits byte-identical tuples, under every selection policy.
# ---------------------------------------------------------------------------

MATCH_EXECUTION_COMBOS = (
    ("compiled", "grid"),
    ("compiled", "single_key"),
    ("interpreted", "grid"),
)
ALL_POLICIES = ("first_match",) + POLICY_ROTATION


def committed_answers(system: YoutopiaSystem) -> dict[str, list[tuple]]:
    return {relation: system.answers(relation) for relation in RELATIONS}


def test_match_plans_and_indexes_are_answer_equivalent_over_200_random_pools():
    """200 pools: interpreted+single_key reference ≡ the other three combos.

    Candidate enumeration order is insertion order under both indexes and the
    compiled path consumes the match RNG identically, so the committed answer
    tuples — not just the query-id partition — must match *exactly*, in order,
    for every rotation of the selection policy.
    """
    total_groups = 0
    total_pending = 0
    total_plans_compiled = 0
    for seed in range(NUM_POOLS):
        rng = random.Random(seed)
        statements = PoolBuilder(rng).build()
        policy = ALL_POLICIES[seed % len(ALL_POLICIES)]

        reference = build_system(
            match_workers=0,
            match_policy=policy,
            match_plan="interpreted",
            provider_index="single_key",
        )
        try:
            compiled_ir = [reference.compile(sql) for sql in statements]
            for query in compiled_ir:
                reference.submit_entangled(query)
            reference_groups, reference_pending = outcome_partition(reference)
            reference_answers = committed_answers(reference)
            assert_answered_groups_valid(reference, seed)
            total_groups += len(reference_groups)
            total_pending += len(reference_pending)

            for match_plan, provider_index in MATCH_EXECUTION_COMBOS:
                variant = build_system(
                    match_workers=0,
                    match_policy=policy,
                    match_plan=match_plan,
                    provider_index=provider_index,
                )
                label = f"pool {seed} ({match_plan}/{provider_index}/{policy})"
                try:
                    for query in compiled_ir:
                        variant.submit_entangled(query)
                    groups, pending = outcome_partition(variant)
                    assert groups == reference_groups, f"{label}: groups differ"
                    assert pending == reference_pending, f"{label}: pending differs"
                    assert committed_answers(variant) == reference_answers, (
                        f"{label}: committed tuples differ"
                    )
                    stats = variant.coordinator.matching_statistics()
                    assert stats["match_plan"] == match_plan
                    assert stats["provider_index"] == provider_index
                    if match_plan == "compiled":
                        total_plans_compiled += stats["plans_compiled"]
                finally:
                    variant.close()
        finally:
            reference.close()

    # the harness must exercise both matched and permanently-pending pools,
    # and the compiled path must actually compile plans
    assert total_groups > 100
    assert total_pending > 100
    assert total_plans_compiled > 1000


# ---------------------------------------------------------------------------
# Tiering invariance: the tiered pending pool (hot/cold split + page-in) is a
# pure memory optimisation — under a tiny memory limit, every eviction policy
# answers the same partition and commits byte-identical tuples as the
# untiered pool, under every selection-policy rotation.
# ---------------------------------------------------------------------------

TIERED_VARIANTS = (
    {"pending_memory_limit": 4, "cold_store": "memory", "eviction_policy": "lru"},
    {"pending_memory_limit": 4, "cold_store": "memory", "eviction_policy": "fifo"},
    {"pending_memory_limit": 1, "cold_store": "sqlite", "eviction_policy": "lru"},
)


def test_tiered_pool_is_answer_equivalent_over_200_random_pools():
    """200 pools: untiered reference ≡ tiered pools under aggressive spill.

    The tiered pool pages a cold query back in *before* any match attempt and
    keeps id-sweep order identical to the untiered dict, so candidate
    enumeration and RNG consumption never diverge: the committed answer
    tuples must match exactly, in order, for every rotation of the selection
    policy and for both eviction orders (``memory_limit=1`` forces nearly the
    whole pool through the cold store — the sqlite variant proves the default
    backend, not just the in-memory one).
    """
    total_groups = 0
    total_pending = 0
    total_evictions = 0
    total_page_ins = 0
    for seed in range(NUM_POOLS):
        rng = random.Random(seed)
        statements = PoolBuilder(rng).build()
        policy = ALL_POLICIES[seed % len(ALL_POLICIES)]

        reference = build_system(match_workers=0, match_policy=policy)
        try:
            compiled_ir = [reference.compile(sql) for sql in statements]
            for query in compiled_ir:
                reference.submit_entangled(query)
            reference_groups, reference_pending = outcome_partition(reference)
            reference_answers = committed_answers(reference)
            total_groups += len(reference_groups)
            total_pending += len(reference_pending)

            for variant_config in TIERED_VARIANTS:
                tiered = build_system(
                    match_workers=0, match_policy=policy, **variant_config
                )
                label = (
                    f"pool {seed} (limit={variant_config['pending_memory_limit']}/"
                    f"{variant_config['cold_store']}/"
                    f"{variant_config['eviction_policy']}/{policy})"
                )
                try:
                    for query in compiled_ir:
                        tiered.submit_entangled(query)
                    groups, pending = outcome_partition(tiered)
                    assert groups == reference_groups, f"{label}: groups differ"
                    assert pending == reference_pending, f"{label}: pending differs"
                    assert committed_answers(tiered) == reference_answers, (
                        f"{label}: committed tuples differ"
                    )
                    stats = tiered.coordinator.tiering_statistics()
                    assert stats["enabled"], label
                    assert stats["hot"] <= variant_config["pending_memory_limit"], (
                        f"{label}: hot set exceeds the memory limit"
                    )
                    assert stats["hot"] + stats["cold"] == len(pending), (
                        f"{label}: tier residency does not cover the pending set"
                    )
                    total_evictions += stats["evictions"]
                    total_page_ins += stats["page_ins"]
                finally:
                    tiered.close()
        finally:
            reference.close()

    # the differential pass must actually push queries through the cold
    # store and page them back for matching, not just run with tiering on
    assert total_groups > 100
    assert total_pending > 100
    assert total_evictions > 1000
    assert total_page_ins > 1000
