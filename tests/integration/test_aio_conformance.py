"""Transport-transparency of the asyncio network plane.

Three certifications of :class:`~repro.service.aio.AsyncCoordinationServer`:

* the full conformance suite (``tests/service_conformance.py``) through the
  **async-adapter runner** — an
  :class:`~repro.service.aio.AsyncRemoteService` connection bridged back to
  the synchronous scenario surface by
  :class:`~repro.service.aio.bridge.BridgedService`;
* **wire compatibility** — the unchanged sync
  :class:`~repro.service.remote.RemoteService` client runs conformance
  scenarios against the asyncio server (the codec is shared, old clients
  interoperate);
* **async-transport properties**: the 1-frame-per-batch invariant,
  push-driven (non-polling) awaits, shutdown-mid-await fail-fast, bounded
  in-flight backpressure, and transport metrics across the wire.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from service_conformance import (
    JERRY_SQL,
    KRAMER_SQL,
    SETUP,
    BatchConformance,
    ConcurrencyConformance,
    IntrospectionConformance,
    PlainQueryConformance,
    PolicyConformance,
    SubmissionConformance,
    fresh_owner,
    pair_sql,
    unmatchable_sql,
    wait_until,
)
from repro.errors import (
    CoordinationTimeoutError,
    QueryNotPendingError,
    ServiceUnavailableError,
)
from repro.service import RemoteService, SubmitRequest, SystemConfig
from repro.service.aio import (
    AsyncRemoteHandle,
    AsyncRemoteService,
    BackgroundAsyncServer,
    BridgedService,
    connect_bridged,
)


def start_stack(config: SystemConfig = SystemConfig(seed=0), **server_kwargs):
    """A started asyncio server plus one bridged async client."""
    server = BackgroundAsyncServer(config=config, **server_kwargs)
    host, port = server.start()
    client = connect_bridged(host, port)
    return server, client


@pytest.fixture
def server_and_service():
    server, client = start_stack()
    client.execute_script(SETUP)
    client.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    yield server, client
    client.close()
    server.stop()


@pytest.fixture
def service(server_and_service):
    _server, client = server_and_service
    return client


# -- the transport-agnostic suite, asyncio flavour ---------------------------------------------


class TestAsyncRemoteSubmission(SubmissionConformance):
    pass


class TestAsyncRemoteBatchSubmission(BatchConformance):
    pass


class TestAsyncRemotePlainQueries(PlainQueryConformance):
    pass


class TestAsyncRemoteIntrospection(IntrospectionConformance):
    pass


class TestAsyncRemoteConcurrency(ConcurrencyConformance):
    pass


class TestAsyncRemotePolicy(PolicyConformance):
    pass


# -- wire compatibility: the unchanged sync client against the asyncio server -------------------


@pytest.fixture
def sync_client_stack():
    server = BackgroundAsyncServer(config=SystemConfig(seed=0))
    host, port = server.start()
    client = RemoteService.connect(host, port)
    client.execute_script(SETUP)
    client.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    yield server, client
    client.close()
    server.stop()


class TestSyncClientInterop:
    """PR 3 clients speak to the asyncio server unchanged (shared codec)."""

    @pytest.fixture
    def service(self, sync_client_stack):
        _server, client = sync_client_stack
        return client

    # a representative slice of the conformance behaviours over the old client
    test_submit = SubmissionConformance.test_submit_returns_future_style_handle
    test_result = SubmissionConformance.test_result_returns_answer_envelope
    test_callback = SubmissionConformance.test_done_callback_fires_on_answer
    test_batch = BatchConformance.test_submit_many_answers_cross_referencing_pair
    test_duplicate = BatchConformance.test_duplicate_batch_handle_is_terminal_and_self_contained
    test_plain = PlainQueryConformance.test_relation_result_scalar_and_iteration
    test_introspection = IntrospectionConformance.test_requests_pending_and_retry
    test_policy_priority = PolicyConformance.test_priority_round_trips_to_pending_pool
    test_policy_stats = PolicyConformance.test_stats_expose_matching_policy_and_decisions

    def test_one_frame_per_batch_from_sync_client(self, sync_client_stack):
        _server, client = sync_client_stack
        requests = []
        for _ in range(10):
            left, right = fresh_owner("ia"), fresh_owner("ib")
            requests.append(SubmitRequest(sql=pair_sql(left, right), owner=left))
            requests.append(SubmitRequest(sql=pair_sql(right, left), owner=right))
        before = client.frames_sent
        handles = client.submit_many(requests)
        assert client.frames_sent == before + 1
        assert all(handle.is_answered for handle in handles)

    def test_typed_errors_cross_the_asyncio_server(self, sync_client_stack):
        _server, client = sync_client_stack
        with pytest.raises(QueryNotPendingError) as excinfo:
            client.cancel("does-not-exist")
        assert excinfo.value.query_id == "does-not-exist"
        handle = client.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("it"))))
        with pytest.raises(CoordinationTimeoutError) as timeout_info:
            client.wait(handle.query_id, timeout=0.05)
        assert timeout_info.value.timeout == pytest.approx(0.05)


# -- async-transport properties ------------------------------------------------------------------


class TestAsyncTransportShape:
    def test_submit_many_uses_one_frame_per_batch(self, server_and_service):
        """The 1-frame-per-batch invariant holds on the asyncio client."""
        _server, bridged = server_and_service
        requests = []
        for _ in range(20):
            left, right = fresh_owner("fa"), fresh_owner("fb")
            requests.append(SubmitRequest(sql=pair_sql(left, right), owner=left))
            requests.append(SubmitRequest(sql=pair_sql(right, left), owner=right))
        client: AsyncRemoteService = bridged.aservice
        before = client.frames_sent
        handles = bridged.submit_many(requests)
        assert client.frames_sent == before + 1
        assert len(handles) == 40
        assert all(handle.is_answered for handle in handles)

    def test_await_is_push_driven_not_polled(self, server_and_service):
        """No frames leave the client while a handle waits for its push."""
        _server, bridged = server_and_service
        client: AsyncRemoteService = bridged.aservice
        kramer = bridged.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))

        def submit_partner() -> None:
            time.sleep(0.05)
            bridged.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))

        partner = threading.Thread(target=submit_partner)
        partner.start()
        before = client.frames_sent
        envelope = kramer.result(timeout=5.0)
        partner.join(timeout=5.0)
        # exactly one frame was written while result() waited: the partner's
        # submit — the result itself arrived as a push notification.
        assert client.frames_sent == before + 1
        assert envelope.owner == "Kramer"

    def test_transport_metrics_cross_the_wire(self, server_and_service):
        server, bridged = server_and_service
        bridged.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("tm"))))
        stats = bridged.stats()
        transport = dict(stats.transport)
        assert transport["connections_open"] == 1
        assert transport["connections_total"] == 1
        assert transport["requests_total"] >= 3  # setup script + declare + submit
        assert transport["bytes_in"] > 0 and transport["bytes_out"] > 0
        assert transport["rejected_backpressure"] == 0
        # the server-side object agrees with the wire snapshot
        assert server.metrics.snapshot()["connections_open"] == 1

    def test_two_async_clients_coordinate_through_one_server(self, server_and_service):
        server, first = server_and_service
        host, port = server.address
        second = connect_bridged(host, port)
        try:
            kramer = first.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
            jerry = second.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
            assert jerry.is_answered
            envelope = kramer.result(timeout=5.0)
            assert set(envelope.group) == {kramer.query_id, jerry.query_id}
        finally:
            second.close()

    def test_watches_deduplicate_per_connection(self, server_and_service):
        server, bridged = server_and_service
        handle = bridged.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("wd"))))
        for _ in range(5):
            bridged.request(handle.query_id)
            bridged.requests()
        registered = server.service.coordinator._done_callbacks.get(handle.query_id, [])
        assert len(registered) == 1


class TestBackpressure:
    """Bounded in-flight concurrency: excess requests are rejected, typed."""

    def test_requests_over_the_budget_are_rejected(self):
        server, bridged = start_stack(max_in_flight=2)
        try:
            bridged.execute_script(SETUP)
            bridged.declare_answer_relation(
                "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
            )
            handle = bridged.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("bp"))))
            client: AsyncRemoteService = bridged.aservice

            async def occupy_and_overflow():
                # two server-side waits occupy the whole in-flight budget ...
                waits = [
                    asyncio.ensure_future(client.wait(handle.query_id, timeout=0.6))
                    for _ in range(2)
                ]
                await asyncio.sleep(0.2)  # both waits are now in flight server-side
                # ... so the next budgeted request bounces with a typed
                # rejection (query is executor-dispatched, hence budgeted)
                with pytest.raises(ServiceUnavailableError) as excinfo:
                    await client.query("SELECT COUNT(*) FROM Flights")
                assert "backpressure" in str(excinfo.value)
                # fast-path reads are exempt: monitoring keeps working under
                # overload (they complete inline, they cannot accumulate)
                assert (await client.stats()).pending == 1
                # the budget frees again once the waits expire server-side
                with pytest.raises(CoordinationTimeoutError):
                    await asyncio.gather(*waits)

            bridged.run(occupy_and_overflow())
            assert server.metrics.snapshot()["rejected_backpressure"] >= 1
            # post-rejection the connection is healthy and the counter crossed
            assert wait_until(
                lambda: dict(bridged.stats().transport)["rejected_backpressure"] >= 1
            )
        finally:
            bridged.close()
            server.stop()


class TestFailureSemantics:
    """Server loss mid-await: fail fast, never hang."""

    def test_server_shutdown_fails_awaiting_handle_fast(self, server_and_service):
        server, bridged = server_and_service
        handle = bridged.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("sd"))))
        outcome: dict[str, object] = {}

        def wait_on_handle() -> None:
            try:
                handle.result(timeout=30.0)
                outcome["result"] = "answered"
            except ServiceUnavailableError as exc:
                outcome["result"] = exc

        waiter = threading.Thread(target=wait_on_handle)
        waiter.start()
        time.sleep(0.05)
        server.stop()
        waiter.join(timeout=5.0)
        assert not waiter.is_alive(), "await hung after server shutdown"
        assert isinstance(outcome["result"], ServiceUnavailableError)

    def test_server_shutdown_fails_wait_rpc_fast(self, server_and_service):
        server, bridged = server_and_service
        handle = bridged.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("sw"))))
        outcome: dict[str, object] = {}

        def wait_rpc() -> None:
            try:
                bridged.wait(handle.query_id, timeout=30.0)
                outcome["result"] = "answered"
            except ServiceUnavailableError as exc:
                outcome["result"] = exc

        waiter = threading.Thread(target=wait_rpc)
        waiter.start()
        time.sleep(0.05)
        server.stop()
        waiter.join(timeout=5.0)
        assert not waiter.is_alive(), "wait() hung after server shutdown"
        assert isinstance(outcome["result"], ServiceUnavailableError)

    def test_server_shutdown_fires_done_callbacks_with_failure(self, server_and_service):
        server, bridged = server_and_service
        handle = bridged.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("sc"))))
        fired: list[str] = []
        handle.add_done_callback(lambda h: fired.append(h.query_id))
        server.stop()
        assert wait_until(lambda: fired == [handle.query_id])
        assert not handle.done()  # the query never reached a terminal state

    def test_rpcs_after_shutdown_raise_service_unavailable(self, server_and_service):
        server, bridged = server_and_service
        server.stop()
        wait_until(lambda: bridged.aservice._failure is not None)
        with pytest.raises(ServiceUnavailableError):
            bridged.stats()
        with pytest.raises(ServiceUnavailableError):
            bridged.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))

    def test_client_close_fails_pending_handles(self, server_and_service):
        _server, bridged = server_and_service
        handle = bridged.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("cl"))))
        bridged.run(bridged.aservice.close())
        with pytest.raises(ServiceUnavailableError):
            handle.result(timeout=5.0)

    def test_remote_shutdown_op_stops_the_server(self, server_and_service):
        server, bridged = server_and_service
        bridged.run(bridged.aservice.shutdown_server())
        assert server.wait_stopped(timeout=5.0)
        wait_until(lambda: bridged.aservice._failure is not None)
        with pytest.raises(ServiceUnavailableError):
            bridged.stats()

    def test_connect_to_dead_port_raises_service_unavailable(self):
        probe = BackgroundAsyncServer(config=SystemConfig(seed=0))
        host, port = probe.start()
        probe.stop()
        with pytest.raises(ServiceUnavailableError):
            connect_bridged(host, port, connect_timeout=0.5)


class TestShardedAsyncServer:
    """The asyncio plane composes with background match workers: answers
    complete on worker threads and still reach awaiting clients via push."""

    def test_push_arrives_from_background_match_workers(self):
        server, bridged = start_stack(SystemConfig(seed=0, match_workers=2))
        try:
            bridged.execute_script(SETUP)
            bridged.declare_answer_relation(
                "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
            )
            left, right = fresh_owner("sh"), fresh_owner("sh")
            first = bridged.submit(SubmitRequest(sql=pair_sql(left, right), owner=left))
            second = bridged.submit(SubmitRequest(sql=pair_sql(right, left), owner=right))
            assert first.result(timeout=10.0).owner == left
            assert second.result(timeout=10.0).owner == right
            assert bridged.drain(timeout=10.0)
            stats = bridged.stats()
            assert stats.pending == 0
            assert len(stats.shards) >= 2
        finally:
            bridged.close()
            server.stop()


class TestHandleRegistry:
    def test_terminal_handles_leave_the_client_registry(self, server_and_service):
        _server, bridged = server_and_service
        client: AsyncRemoteService = bridged.aservice
        kramer = bridged.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        assert kramer.query_id in client._handles
        bridged.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
        kramer.result(timeout=5.0)
        assert wait_until(lambda: kramer.query_id not in client._handles)

    def test_execute_script_routes_relations_and_handles(self, server_and_service):
        _server, bridged = server_and_service
        results = bridged.run(
            bridged.aservice.execute_script(
                "SELECT COUNT(*) FROM Flights; " + unmatchable_sql(fresh_owner("xs"))
            )
        )
        assert results[0].scalar() == 3
        assert isinstance(results[1], AsyncRemoteHandle)
        assert not results[1].done()


class TestServedByEitherTransport:
    """One bridged async client against the *threaded* server: the asyncio
    client is transport-agnostic too."""

    def test_async_client_against_threaded_server(self):
        from repro.service.remote import CoordinationServer

        server = CoordinationServer(config=SystemConfig(seed=0))
        host, port = server.start()
        bridged = connect_bridged(host, port)
        try:
            bridged.execute_script(SETUP)
            bridged.declare_answer_relation(
                "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
            )
            kramer = bridged.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
            bridged.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
            assert kramer.result(timeout=5.0).owner == "Kramer"
            assert dict(bridged.stats().transport)["connections_open"] == 1
        finally:
            bridged.close()
            server.stop()


class TestBridgedService:
    def test_bridge_requires_exactly_one_construction_path(self):
        with pytest.raises(ValueError):
            BridgedService()


class TestServerResourceLifecycle:
    def test_stop_releases_executor_but_not_a_caller_provided_service(self):
        """The dispatch pool is server-owned; the wrapped service is not."""
        from repro.service import InProcessService

        service = InProcessService(config=SystemConfig(seed=0))
        server = BackgroundAsyncServer(service=service)
        host, port = server.start()
        bridged = connect_bridged(host, port)
        bridged.execute_script(SETUP)  # forces executor threads to spawn
        bridged.close()
        server.stop()
        # the server's 'youtopia-aio' executor threads wind down ...
        assert wait_until(
            lambda: not any(
                thread.name.startswith("youtopia-aio")
                for thread in threading.enumerate()
                if thread.is_alive()
            )
        )
        # ... while the provided service stays open and usable
        assert service.query("SELECT COUNT(*) FROM Flights").scalar() == 3
        service.close()
