"""WAL-shipped standbys: replication equivalence, SIGKILL failover, promotion.

The acceptance bar mirrors the single-node crash-recovery harness: a primary
serving a live submission stream is SIGKILLed mid-stream, and **every query
it acknowledged** must be answerable on the promoted standby — answered
groups with their exact tuples, unanswered ones as pending that can still
coordinate.  The replication guarantee making this testable is ship-before-ack:
the primary's WAL appends deliver each record to every subscribed standby's
socket before the submit RPC returns.
"""

from __future__ import annotations

import threading
import time

import pytest

from test_crash_recovery import SCHEMA, ServerProcess, booking_sql
from service_conformance import wait_until
from repro.core.coordinator import QueryStatus
from repro.errors import ServiceUnavailableError
from repro.service import SystemConfig
from repro.service.remote import CoordinationServer, RemoteService
from repro.cluster import (
    BackgroundClusterRouter,
    NodeSpec,
    PlacementMap,
    StandbyServer,
)


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "schema.sql"
    path.write_text(SCHEMA, encoding="utf-8")
    return path


def start_primary(tmp_path) -> tuple[CoordinationServer, RemoteService]:
    """An in-process primary with a WAL (shipping requires durability)."""
    primary = CoordinationServer(
        config=SystemConfig(seed=0, data_dir=tmp_path / "primary")
    )
    host, port = primary.start()
    client = RemoteService.connect(host, port)
    client.execute_script(SCHEMA)
    client.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return primary, client


class TestStandbyReplication:
    def test_standby_replays_primary_state(self, tmp_path):
        primary, client = start_primary(tmp_path)
        standby = StandbyServer(*primary.address)
        standby_address = standby.start()
        try:
            assert standby.wait_caught_up(10.0)
            client.submit(booking_sql("Elaine", "George"), owner="Elaine")
            client.submit(booking_sql("George", "Elaine"), owner="George")
            pending = client.submit(booking_sql("Kramer", "ghost"), owner="Kramer")

            replica = RemoteService.connect(*standby_address)
            primary_lsn = client.stats().durability["wal_last_lsn"]
            assert wait_until(
                lambda: replica.stats().cluster.get("applied_lsn") == primary_lsn
            )
            # replicated state is the primary's, record for record
            assert dict(replica.answers("Reservation")) == dict(
                client.answers("Reservation")
            )
            states = {handle.query_id: handle.status for handle in replica.requests()}
            assert states[pending.query_id] is QueryStatus.PENDING
            assert (
                sum(1 for status in states.values() if status is QueryStatus.ANSWERED)
                == 2
            )
            cluster = replica.stats().cluster
            assert cluster["role"] == "standby"
            assert cluster["following"] == f"{primary.address[0]}:{primary.address[1]}"
            replica.close()
        finally:
            standby.stop()
            client.close()
            primary.stop()

    def test_standby_is_read_only_until_promoted(self, tmp_path):
        primary, client = start_primary(tmp_path)
        standby = StandbyServer(*primary.address)
        standby_address = standby.start()
        try:
            assert standby.wait_caught_up(10.0)
            replica = RemoteService.connect(*standby_address)
            with pytest.raises(ServiceUnavailableError, match="read-only"):
                replica.submit(booking_sql("X", "Y"), owner="X")
            with pytest.raises(ServiceUnavailableError, match="read-only"):
                replica.execute("DELETE FROM Flights")
            # reads are the point of a replica
            assert replica.query("SELECT COUNT(*) FROM Flights").scalar() == 5
            assert replica.requests() == []
            replica.close()
        finally:
            standby.stop()
            client.close()
            primary.stop()

    def test_wal_subscribe_requires_durability(self):
        primary = CoordinationServer(config=SystemConfig(seed=0))
        primary.start()
        standby = StandbyServer(*primary.address)
        standby.start()
        try:
            with pytest.raises(ServiceUnavailableError, match="no write-ahead log"):
                standby.wait_caught_up(10.0)
        finally:
            standby.stop()
            primary.stop()


class TestSigkillFailover:
    def test_promoted_standby_answers_every_acked_query(self, tmp_path, schema_file):
        """SIGKILL the primary mid-stream; the standby must own 100% of acks."""
        data_dir = tmp_path / "data"
        primary = ServerProcess(data_dir, script=schema_file)
        standby = StandbyServer("127.0.0.1", primary.port)
        standby_address = standby.start()
        client = None
        try:
            assert standby.wait_caught_up(30.0)
            client = primary.connect()
            client.declare_answer_relation(
                "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
            )
            # a matched prefix whose tuples must survive byte-for-byte
            matched = {}
            for index in range(4):
                left, right = f"L{index}", f"R{index}"
                first = client.submit(booking_sql(left, right), owner=left)
                second = client.submit(booking_sql(right, left), owner=right)
                assert second.is_answered
                matched[first.query_id] = first.result(timeout=10.0)
                matched[second.query_id] = second.result(timeout=10.0)

            # ...then a live stream of never-matching submissions, killed mid-flow
            acked: list[str] = []
            stop = threading.Event()

            def stream() -> None:
                index = 0
                while not stop.is_set():
                    try:
                        handle = client.submit(
                            booking_sql(f"S{index}", f"ghost{index}"),
                            owner=f"S{index}",
                        )
                    except Exception:
                        return  # the kill landed; nothing after this was acked
                    acked.append(handle.query_id)
                    index += 1

            streamer = threading.Thread(target=stream)
            streamer.start()
            while len(acked) < 20:
                time.sleep(0.005)
            primary.sigkill()
            stop.set()
            streamer.join(timeout=30.0)
            assert not streamer.is_alive()
            assert len(acked) >= 20

            summary = standby.promote()
            assert summary["promoted"]
            assert summary["replay_errors"] == []

            replica = RemoteService.connect(*standby_address)
            states = {handle.query_id: handle for handle in replica.requests()}
            # 100% of acked queries are present with their acknowledged outcome
            for query_id, envelope in matched.items():
                handle = states[query_id]
                assert handle.status is QueryStatus.ANSWERED
                assert handle.result(timeout=5.0).tuples == envelope.tuples
            for query_id in acked:
                assert states[query_id].status is QueryStatus.PENDING

            # recovered pending queries still coordinate on the new primary
            partner = replica.submit(booking_sql("ghost0", "S0"), owner="ghost0")
            assert partner.is_answered
            assert wait_until(
                lambda: replica.request(acked[0]).status is QueryStatus.ANSWERED
            )

            # fresh ids on the promoted standby do not collide with replayed ones
            fresh = replica.submit(booking_sql("new", "nobody"), owner="new")
            assert fresh.query_id not in states
            replica.close()
        finally:
            standby.stop()
            if client is not None:
                client.close()
            primary.terminate()

    def test_promote_is_idempotent(self, tmp_path):
        primary, client = start_primary(tmp_path)
        standby = StandbyServer(*primary.address)
        standby.start()
        try:
            assert standby.wait_caught_up(10.0)
            client.submit(booking_sql("A", "ghost"), owner="A")
            primary.stop()
            first = standby.promote()
            second = standby.promote()
            assert first["promoted"] and second["promoted"]
            assert second["applied_lsn"] == first["applied_lsn"]
        finally:
            standby.stop()
            client.close()
            primary.stop()


class TestRouterFailover:
    def test_router_promotes_standby_and_resumes(self, tmp_path):
        """Node dies -> router promotes its standby and the cluster carries on."""
        primary = CoordinationServer(
            config=SystemConfig(seed=0, data_dir=tmp_path / "node0")
        )
        primary.start()
        standby = StandbyServer(*primary.address)
        standby_host, standby_port = standby.start()
        placement = PlacementMap(
            [NodeSpec(0, *primary.address, standby=(standby_host, standby_port))]
        )
        router = BackgroundClusterRouter(placement)
        router.start()
        client = RemoteService.connect(*router.address)
        try:
            assert standby.wait_caught_up(10.0)
            client.execute_script(SCHEMA)
            client.declare_answer_relation(
                "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
            )
            survivor = client.submit(booking_sql("A", "B"), owner="A")
            lonely = client.submit(booking_sql("C", "ghost"), owner="C")

            # the standby's lag is observable through the router before failover
            stats = client.stats()
            standby_block = stats.cluster["nodes"][0].get("standby")
            assert standby_block is not None
            assert standby_block["reachable"] is True

            primary.stop()
            assert wait_until(lambda: client.stats().cluster["failovers"] == 1, timeout=15.0)
            assert standby.promoted

            # pending queries survived and still coordinate through the router
            partner = client.submit(booking_sql("B", "A"), owner="B")
            assert partner.is_answered
            survivor.result(timeout=10.0)
            assert client.request(lonely.query_id).status is QueryStatus.PENDING
            assert client.query("SELECT COUNT(*) FROM Flights").scalar() == 5
        finally:
            client.close()
            router.stop()
            standby.stop()
            primary.stop()

    def test_node_loss_without_standby_rejects_its_queries(self):
        node = CoordinationServer(config=SystemConfig(seed=0))
        node.start()
        placement = PlacementMap([NodeSpec(0, *node.address)])
        router = BackgroundClusterRouter(placement)
        router.start()
        client = RemoteService.connect(*router.address)
        try:
            client.execute_script(SCHEMA)
            client.declare_answer_relation(
                "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
            )
            doomed = client.submit(booking_sql("A", "ghost"), owner="A")
            node.stop()

            def rejected() -> bool:
                # until the loss handler runs, the router still forwards the
                # lookup to the dead node and surfaces its unavailability
                try:
                    return client.request(doomed.query_id).status is QueryStatus.REJECTED
                except ServiceUnavailableError:
                    return False

            assert wait_until(rejected, timeout=15.0)
            assert "no standby" in (client.request(doomed.query_id).error or "")
        finally:
            client.close()
            router.stop()
            node.stop()
