"""The cluster router gateway: conformance plus routing-specific behaviour.

Transport transparency is the bar: a client connected to a
:class:`~repro.cluster.router.ClusterRouter` fronting a two-node cluster must
be indistinguishable from one connected to a single server, so the same
scenario classes from ``tests/service_conformance.py`` run here unmodified.
On top of that the router has behaviour a single server cannot: fan-out of
one batch across member nodes, co-location of cross-node entangled queries on
the residence node, relocation of stranded partners, and cluster-wide
duplicate detection.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools

import pytest

from service_conformance import (
    SETUP,
    BatchConformance,
    ConcurrencyConformance,
    IntrospectionConformance,
    PlainQueryConformance,
    PolicyConformance,
    SubmissionConformance,
    fresh_owner,
    pair_sql,
    unmatchable_sql,
    wait_until,
)
from repro.core.compiler import compile_entangled
from repro.core.coordinator import QueryStatus
from repro.errors import EntanglementError
from repro.service import SubmitRequest, SystemConfig
from repro.service.remote import CoordinationServer, RemoteService
from repro.cluster import (
    BackgroundClusterRouter,
    NodeSpec,
    PlacementMap,
    extract_signature,
)


def start_cluster(node_count: int = 2):
    """``node_count`` live servers, a router over them, and one client."""
    nodes = []
    for _ in range(node_count):
        server = CoordinationServer(config=SystemConfig(seed=0))
        server.start()
        nodes.append(server)
    placement = PlacementMap(
        [NodeSpec(index, *server.address) for index, server in enumerate(nodes)]
    )
    router = BackgroundClusterRouter(placement)
    router.start()
    client = RemoteService.connect(*router.address)
    return nodes, placement, router, client


@pytest.fixture
def cluster():
    nodes, placement, router, client = start_cluster(node_count=2)
    client.execute_script(SETUP)
    client.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    yield nodes, placement, router, client
    client.close()
    router.stop()
    for server in nodes:
        server.stop()


@pytest.fixture
def service(cluster):
    _nodes, _placement, _router, client = cluster
    return client


# -- the transport-agnostic suite, cluster flavour --------------------------------------------


class TestClusterSubmission(SubmissionConformance):
    pass


class TestClusterBatch(BatchConformance):
    pass


class TestClusterPlainQuery(PlainQueryConformance):
    pass


class TestClusterIntrospection(IntrospectionConformance):
    pass


class TestClusterConcurrency(ConcurrencyConformance):
    pass


class TestClusterPolicyConformance(PolicyConformance):
    pass


# -- routing behaviour only a cluster has -----------------------------------------------------


def relation_pair_sql(owner: str, partner: str, relation: str) -> str:
    return (
        f"SELECT '{owner}', fno INTO ANSWER {relation} "
        "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        f"AND ('{partner}', fno) IN ANSWER {relation} CHOOSE 1"
    )


def relations_per_node(placement: PlacementMap) -> list[str]:
    """One relation name homed on each node, found by scanning candidates."""
    chosen: dict[int, str] = {}
    for index in range(200):
        relation = f"rel{index}"
        node = placement.node_for_relation(relation)
        chosen.setdefault(node, relation)
        if len(chosen) == placement.node_count:
            break
    assert len(chosen) == placement.node_count
    return [chosen[node] for node in range(placement.node_count)]


@pytest.fixture
def three_node_cluster():
    nodes, placement, router, client = start_cluster(node_count=3)
    client.execute_script(SETUP)
    relations = relations_per_node(placement)
    for relation in relations:
        client.declare_answer_relation(relation, ["traveler", "fno"], ["TEXT", "INTEGER"])
    yield nodes, placement, router, client, relations
    client.close()
    router.stop()
    for server in nodes:
        server.stop()


class TestClusterRouting:
    def test_batch_fans_out_across_three_nodes(self, three_node_cluster):
        nodes, placement, _router, client, relations = three_node_cluster
        handles = client.submit_many(
            [relation_pair_sql("a", "b", relation) for relation in relations]
        )
        partners = client.submit_many(
            [relation_pair_sql("b", "a", relation) for relation in relations]
        )
        for handle in handles + partners:
            handle.result(timeout=10.0)
        # every node coordinated its own relation's pair
        for server in nodes:
            node_stats = server.service.stats()
            assert node_stats["queries_registered"] == 2
            assert node_stats["groups_matched"] == 1
        stats = client.stats()
        assert stats.cluster["routed_submits"] == 6
        assert stats.cluster["cross_node_submits"] == 0
        assert stats.cluster["relocations"] == 0

    def test_router_assigns_cluster_unique_query_ids(self, three_node_cluster):
        _nodes, _placement, _router, client, relations = three_node_cluster
        handles = client.submit_many(
            [relation_pair_sql("solo", "ghost", relation) for relation in relations]
        )
        ids = [handle.query_id for handle in handles]
        assert len(set(ids)) == len(ids)
        # every id resolves through the router, whichever node holds it
        for query_id in ids:
            assert client.request(query_id).status is QueryStatus.PENDING

    def test_cross_node_pair_coordinates_on_residence_node(self, three_node_cluster):
        nodes, placement, _router, client, relations = three_node_cluster
        rel_a, rel_b = relations[1], relations[2]  # homed on two non-residence nodes
        cross = (
            f"SELECT 'left', fno INTO ANSWER {rel_a} "
            "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
            f"AND ('right', fno) IN ANSWER {rel_b} CHOOSE 1"
        )
        mirror = (
            f"SELECT 'right', fno INTO ANSWER {rel_b} "
            "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
            f"AND ('left', fno) IN ANSWER {rel_a} CHOOSE 1"
        )
        signature = extract_signature(cross)
        assert placement.node_for_signature(signature) is None
        residence = placement.residence_node_for(signature)
        left = client.submit(cross, owner="left")
        right = client.submit(mirror, owner="right")
        left.result(timeout=10.0)
        assert right.is_answered
        # both lived (and matched) on the signature's hashed residence node,
        # nowhere else
        assert nodes[residence].service.stats()["queries_registered"] == 2
        assert nodes[residence].service.stats()["groups_matched"] == 1
        for index, server in enumerate(nodes):
            if index != residence:
                assert server.service.stats()["queries_registered"] == 0
        stats = client.stats()
        assert stats.cluster["cross_node_submits"] == 2

    def test_hot_relation_strands_relocate_to_residence(self, three_node_cluster):
        nodes, placement, _router, client, relations = three_node_cluster
        # pick a cross-node pair whose hashed residence is NOT the stranded
        # query's home node, so heating its relation forces a relocation
        off = other = None
        for left, right in itertools.permutations(relations, 2):
            signature = frozenset({left, right})
            if placement.node_for_signature(signature) is not None:
                continue
            if placement.residence_node_for(signature) != placement.node_for_relation(left):
                off, other = left, right
                break
        assert off is not None and other is not None
        home = placement.node_for_relation(off)
        residence = placement.residence_node_for(frozenset({off, other}))
        # 1. a single-relation query lands on its home node and waits there
        stranded = client.submit(relation_pair_sql("solo", "multi", off), owner="solo")
        assert nodes[home].service.stats()["queries_registered"] == 1
        # 2. a cross-node query heats `off` -> the stranded query relocates
        cross = (
            f"SELECT 'multi', fno INTO ANSWER {other} "
            "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
            f"AND ('solo', fno) IN ANSWER {off} CHOOSE 1"
        )
        client.submit(cross, owner="multi")
        stats = client.stats()
        assert stats.cluster["relocations"] == 1
        assert set(stats.cluster["hot_relations"]) >= {off, other}
        assert stats.cluster["hot_nodes"][off] == residence
        assert stats.cluster["nodes"][residence]["pending"] == 2
        # 3. the partner completing the stranded pair routes to residence too
        #    (its relation is hot) and the pair matches there
        partner = client.submit(relation_pair_sql("multi", "solo", off), owner="m2")
        stranded.result(timeout=10.0)
        assert partner.is_answered
        assert nodes[residence].service.stats()["groups_matched"] == 1

    def test_duplicate_ids_rejected_across_nodes(self, three_node_cluster):
        _nodes, _placement, _router, client, relations = three_node_cluster
        # two pre-compiled queries homed on *different* nodes, same query id
        first = compile_entangled(
            relation_pair_sql("da", "ghost", relations[1]), owner="da"
        )
        second = compile_entangled(
            relation_pair_sql("db", "ghost", relations[2]), owner="db"
        )
        second = dataclasses.replace(second, query_id=first.query_id)
        client.submit(first)
        with pytest.raises(EntanglementError, match="already registered"):
            client.submit(second)
        # in a batch the duplicate is rejected without aborting its siblings
        third = compile_entangled(
            relation_pair_sql("dc", "ghost", relations[0]), owner="dc"
        )
        third = dataclasses.replace(third, query_id=first.query_id)
        fresh = compile_entangled(
            relation_pair_sql("dd", "ghost", relations[2]), owner="dd"
        )
        rejected, accepted = client.submit_many([third, fresh])
        assert rejected.status is QueryStatus.REJECTED
        assert "already registered" in (rejected.error or "")
        assert accepted.status is QueryStatus.PENDING
        # the original registration is untouched
        assert client.request(first.query_id).status is QueryStatus.PENDING

    def test_cluster_stats_block_shape(self, three_node_cluster):
        _nodes, placement, _router, client, relations = three_node_cluster
        client.submit(relation_pair_sql("s", "ghost", relations[1]), owner="s")
        stats = client.stats()
        cluster = stats.cluster
        assert cluster["role"] == "router"
        assert cluster["node_count"] == 3
        assert cluster["residence"] == "per-signature"
        assert cluster["unreachable_nodes"] == []
        assert cluster["recovered_queries"] == 0
        assert cluster["resharded_relocations"] == 0
        assert cluster["introspection_gaps"] == 0
        assert len(cluster["nodes"]) == 3
        for node in cluster["nodes"]:
            assert node["reachable"] is True
            assert isinstance(node["shards"], list)
            assert "pending" in node and "wal_last_lsn" in node
        assert cluster["registered_queries"] == 1
        assert sum(node["routed_pending"] for node in cluster["nodes"]) == 1
        assert cluster["failovers"] == 0

    def test_cancel_routes_to_owning_node(self, three_node_cluster):
        nodes, _placement, _router, client, relations = three_node_cluster
        handle = client.submit(relation_pair_sql("c", "ghost", relations[2]), owner="c")
        client.cancel(handle.query_id)
        assert wait_until(handle.cancelled)
        assert nodes[2].service.stats()["queries_cancelled"] == 1

    def test_answers_merge_for_auto_created_relation(self, cluster):
        """A relation auto-created at registration exists on its home node
        only; the router's answers union must skip the nodes that never saw
        it instead of surfacing their 'unknown answer relation' error."""
        _nodes, _placement, _router, client = cluster
        client.submit(relation_pair_sql("Elaine", "Puddy", "AutoRel"), owner="Elaine")
        partner = client.submit(relation_pair_sql("Puddy", "Elaine", "AutoRel"), owner="Puddy")
        assert partner.is_answered
        answers = client.answers("AutoRel")
        assert {owner for owner, _fno in answers} == {"Elaine", "Puddy"}
        # a relation no node knows is still an error, not an empty union
        with pytest.raises(EntanglementError, match="unknown answer relation"):
            client.answers("NoSuchRelation")

    def test_answers_and_stats_merge_past_unreachable_node(self, three_node_cluster):
        """A node down mid-fan-out is a marked gap, not a failed call: the
        reachable members' answers and stats are still served."""
        nodes, placement, _router, client, relations = three_node_cluster
        relation = relations[0]  # homed on node 0
        client.submit(relation_pair_sql("a", "b", relation), owner="a")
        partner = client.submit(relation_pair_sql("b", "a", relation), owner="b")
        partner.result(timeout=10.0)
        victim = 2  # holds neither the pair nor its answers
        nodes[victim].stop()
        answers = client.answers(relation)
        assert {owner for owner, _fno in answers} == {"a", "b"}
        stats = client.stats()
        assert stats.cluster["nodes"][victim]["reachable"] is False
        assert victim in stats.cluster["unreachable_nodes"]
        assert stats.cluster["introspection_gaps"] >= 1

    def test_failed_relocation_keeps_route_and_settles_rejected(self, three_node_cluster):
        """The resubmit RPC failing must not strand the entry on a node that
        never saw it: the route keeps naming the old node and the outcome is
        a terminal rejection — wait and request resolve instead of hanging."""
        nodes, placement, router, client, relations = three_node_cluster
        relation = relations[1]
        home = placement.node_for_relation(relation)
        handle = client.submit(relation_pair_sql("solo", "ghost", relation), owner="solo")
        server = router.server
        entry = server.registry.get(handle.query_id)
        assert entry is not None and entry.node == home
        dead = (home + 1) % len(nodes)
        nodes[dead].stop()
        future = asyncio.run_coroutine_threadsafe(
            server._relocate(entry, dead), router._loop
        )
        future.result(timeout=10.0)
        assert entry.terminal
        assert entry.node == home  # never flipped to the node that failed
        assert entry.relocating_to is None
        state = client.request(handle.query_id)
        assert state.status is QueryStatus.REJECTED
        assert "relocation to node" in (state.error or "")


# -- match-policy config surviving the router fan-out -----------------------------------------


def start_policy_cluster(policies: list[str]):
    """One node per entry in ``policies``, each with that match policy."""
    nodes = []
    for policy in policies:
        server = CoordinationServer(config=SystemConfig(seed=0, match_policy=policy))
        server.start()
        nodes.append(server)
    placement = PlacementMap(
        [NodeSpec(index, *server.address) for index, server in enumerate(nodes)]
    )
    router = BackgroundClusterRouter(placement)
    router.start()
    client = RemoteService.connect(*router.address)
    client.execute_script(SETUP)
    client.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    return nodes, placement, router, client


def stop_policy_cluster(nodes, router, client) -> None:
    client.close()
    router.stop()
    for server in nodes:
        server.stop()


class TestClusterPolicy:
    """Per-node policy config must survive the router: aggregated stats name
    the policy, decision counters merge, and submission priority reaches the
    member node that owns the query."""

    def test_uniform_policy_surfaces_through_router_stats(self):
        nodes, _placement, router, client = start_policy_cluster(["min_cost", "min_cost"])
        try:
            left, right = fresh_owner("ka"), fresh_owner("kb")
            client.submit(pair_sql(left, right), owner=left)
            handle = client.submit(pair_sql(right, left), owner=right)
            handle.result(timeout=10.0)
            matching = dict(client.stats().matching)
            assert matching["policy"] == "min_cost"
            assert matching["candidate_limit"] >= 1
            assert matching["decisions"] >= 1
            assert matching["groups_enumerated"] >= matching["decisions"]
        finally:
            stop_policy_cluster(nodes, router, client)

    def test_mixed_policies_are_reported_as_mixed(self):
        nodes, _placement, router, client = start_policy_cluster(["first_match", "fairness"])
        try:
            matching = dict(client.stats().matching)
            assert matching["policy"] == "mixed"
        finally:
            stop_policy_cluster(nodes, router, client)

    def test_priority_survives_fan_out_to_member_node(self):
        nodes, _placement, router, client = start_policy_cluster(["priority", "priority"])
        try:
            owner = fresh_owner("kp")
            handle = client.submit(
                SubmitRequest(sql=unmatchable_sql(owner), owner=owner, priority=9.0)
            )
            # the router's merged pending view carries the wire priority ...
            merged = {query.query_id: query for query in client.pending_queries()}
            assert merged[handle.query_id].priority == 9.0
            # ... and so does the owning member node's own pending pool
            member_views = [
                {query.query_id: query for query in server.service.pending_queries()}
                for server in nodes
            ]
            (owning,) = [view for view in member_views if handle.query_id in view]
            assert owning[handle.query_id].priority == 9.0
        finally:
            stop_policy_cluster(nodes, router, client)
