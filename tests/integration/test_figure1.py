"""Integration test for experiment E1: the worked example of Figure 1.

The database is exactly Figure 1(a) (four flights, the Airlines table), the
queries are exactly Kramer's query from Section 2.1 and Jerry's symmetric
query, and the assertions check Figure 1(b): both queries receive one answer
tuple, with the same flight number, and that flight is one of the Paris
flights 122/123/134.
"""

from __future__ import annotations

import pytest

from repro.core.coordinator import QueryStatus
from repro.core.system import YoutopiaSystem


class TestFigure1:
    def test_mutual_constraint_satisfaction(self, figure1_system, kramer_sql, jerry_sql):
        system = figure1_system
        kramer = system.submit_entangled(kramer_sql, owner="Kramer")
        # Kramer alone cannot be answered: his constraint refers to Jerry's tuple.
        assert kramer.status is QueryStatus.PENDING

        jerry = system.submit_entangled(jerry_sql, owner="Jerry")
        assert jerry.status is QueryStatus.ANSWERED
        assert kramer.status is QueryStatus.ANSWERED

        reservation = system.answers("Reservation")
        assert len(reservation) == 2
        by_traveler = dict(reservation)
        assert set(by_traveler) == {"Kramer", "Jerry"}
        # coordinated choice: the same flight for both, and a Paris flight
        assert by_traveler["Kramer"] == by_traveler["Jerry"]
        assert by_traveler["Kramer"] in (122, 123, 134)

    def test_choice_is_nondeterministic_across_seeds(self, kramer_sql, jerry_sql):
        """Different seeds can pick different Paris flights (122, 123 or 134)."""
        chosen = set()
        for seed in range(8):
            system = YoutopiaSystem(seed=seed)
            system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
            system.execute(
                "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), "
                "(134, 'Paris'), (136, 'Rome')"
            )
            system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
            system.submit_entangled(kramer_sql, owner="Kramer")
            system.submit_entangled(jerry_sql, owner="Jerry")
            chosen.add(system.answers("Reservation")[0][1])
        assert chosen <= {122, 123, 134}
        assert len(chosen) >= 2

    def test_rome_flight_is_never_chosen(self, figure1_system, kramer_sql, jerry_sql):
        figure1_system.submit_entangled(kramer_sql, owner="Kramer")
        figure1_system.submit_entangled(jerry_sql, owner="Jerry")
        assert all(fno != 136 for _traveler, fno in figure1_system.answers("Reservation"))

    def test_answers_join_with_airlines(self, figure1_system, kramer_sql, jerry_sql):
        """After coordination, plain SQL can join the answer relation with base tables."""
        figure1_system.submit_entangled(kramer_sql, owner="Kramer")
        figure1_system.submit_entangled(jerry_sql, owner="Jerry")
        result = figure1_system.query(
            "SELECT r.traveler, a.airline FROM Reservation r JOIN Airlines a ON r.fno = a.fno "
            "ORDER BY r.traveler"
        )
        assert [row[0] for row in result.rows] == ["Jerry", "Kramer"]
        airlines = {row[1] for row in result.rows}
        assert len(airlines) == 1  # same flight, hence the same airline
        assert airlines <= {"United", "Lufthansa"}

    def test_submission_order_does_not_matter(self, figure1_system, kramer_sql, jerry_sql):
        jerry = figure1_system.submit_entangled(jerry_sql, owner="Jerry")
        assert jerry.status is QueryStatus.PENDING
        kramer = figure1_system.submit_entangled(kramer_sql, owner="Kramer")
        assert kramer.status is QueryStatus.ANSWERED and jerry.status is QueryStatus.ANSWERED
