"""kill -9 a serving coordination process mid-workload, restart, verify.

This is the acceptance harness of the durability subsystem (and what the
``crash-recovery`` CI job runs): a real ``youtopia-cli serve --data-dir``
process takes a stream of entangled submissions over TCP, is SIGKILLed while
the stream is still flowing, and is restarted over the same data directory.
Every submission the server *acknowledged* must survive: unanswered queries
recover as pending (and can still coordinate), answered groups keep their
exact tuples, and fresh submissions on the restarted server must not collide
with recovered query ids.
"""

from __future__ import annotations

import os
import select
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.coordinator import QueryStatus
from repro.errors import ServiceUnavailableError
from repro.service.remote import RemoteService

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

SCHEMA = """
CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT, price INT);
INSERT INTO Flights VALUES
    (122, 'Paris', 540), (123, 'Paris', 610), (134, 'Paris', 890),
    (136, 'Rome', 650), (140, 'Rome', 420);
"""


def booking_sql(traveler: str, companion: str, dest: str = "Paris") -> str:
    return (
        f"SELECT '{traveler}', fno INTO ANSWER Reservation "
        f"WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') "
        f"AND ('{companion}', fno) IN ANSWER Reservation CHOOSE 1"
    )


class ServerProcess:
    """One ``youtopia-cli serve`` subprocess bound to an ephemeral port."""

    def __init__(
        self,
        data_dir: Path,
        script: Path | None = None,
        extra_args: list[str] | None = None,
    ) -> None:
        argv = [
            sys.executable,
            "-m",
            "repro.apps.cli",
            "serve",
            "--port",
            "0",
            "--seed",
            "0",
            "--data-dir",
            str(data_dir),
            "--fsync-policy",
            "always",
        ]
        if script is not None:
            argv += ["--script", str(script)]
        if extra_args:
            argv += extra_args
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.process = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env
        )
        self.port = self._read_port()

    def _read_port(self, timeout: float = 30.0) -> int:
        # select + os.read, not buffered readline: a silent-but-alive server
        # must hit the deadline instead of hanging the CI job (same pattern
        # as examples/remote_travel.py's read_port).
        deadline = time.monotonic() + timeout
        assert self.process.stdout is not None
        fd = self.process.stdout.fileno()
        buffer = ""
        consumed: list[str] = []
        while True:
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                consumed.append(line)
                if "listening on" in line:
                    return int(line.rsplit(":", 1)[1])
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(
                    f"server did not report a port within {timeout}s; "
                    f"output:\n" + "\n".join(consumed)
                )
            ready, _, _ = select.select([fd], [], [], remaining)
            if not ready:
                raise RuntimeError(
                    f"server did not report a port within {timeout}s; "
                    f"output:\n" + "\n".join(consumed)
                )
            chunk = os.read(fd, 4096)
            if not chunk:
                raise RuntimeError(
                    f"server exited (code {self.process.poll()}) before listening; "
                    f"output:\n" + "\n".join(consumed)
                )
            buffer += chunk.decode("utf-8", errors="replace")

    def connect(self, attempts: int = 20, delay: float = 0.1) -> RemoteService:
        last: Exception = ServiceUnavailableError("no attempt made")
        for attempt in range(attempts):
            try:
                return RemoteService.connect("127.0.0.1", self.port)
            except ServiceUnavailableError as exc:
                last = exc
                time.sleep(delay * (attempt + 1))
        raise last

    def sigkill(self) -> None:
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=30)

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10)


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "schema.sql"
    path.write_text(SCHEMA, encoding="utf-8")
    return path


def test_sigkill_mid_stream_recovers_every_acknowledged_query(tmp_path, schema_file):
    data_dir = tmp_path / "data"
    server = ServerProcess(data_dir, script=schema_file)
    acked_pending: list[str] = []
    answered: dict[str, list] = {}
    try:
        client = server.connect()
        client.declare_answer_relation(
            "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
        )

        # an answered group before the crash: its tuples must survive verbatim
        jerry = client.submit(booking_sql("Jerry", "Kramer"), owner="Jerry")
        kramer = client.submit(booking_sql("Kramer", "Jerry"), owner="Kramer")
        envelope = kramer.result(timeout=10.0)
        answered[jerry.query_id] = sorted(client.answers("Reservation"))
        assert envelope.tuples

        # a batch of pending singles (partners never arrive before the kill)
        for index in range(8):
            handle = client.submit(
                booking_sql(f"solo-{index}", f"ghost-{index}"), owner=f"solo-{index}"
            )
            acked_pending.append(handle.query_id)

        # ... and a live stream still flowing when the SIGKILL lands
        stream_stop = threading.Event()

        def stream() -> None:
            index = 100
            while not stream_stop.is_set():
                try:
                    handle = client.submit(
                        booking_sql(f"solo-{index}", f"ghost-{index}"),
                        owner=f"solo-{index}",
                    )
                except Exception:
                    return  # the server died mid-call: this one was not acked
                acked_pending.append(handle.query_id)
                index += 1

        streamer = threading.Thread(target=stream, daemon=True)
        streamer.start()
        time.sleep(0.4)  # let the stream get going
        server.sigkill()  # no shutdown handshake, no final fsync, nothing
        stream_stop.set()
        streamer.join(timeout=10)
        assert len(acked_pending) >= 8
    finally:
        server.terminate()

    # -- restart over the same data directory ------------------------------------
    restarted = ServerProcess(data_dir, script=schema_file)
    try:
        client = restarted.connect()
        states = {handle.query_id: handle for handle in client.requests()}

        # every acknowledged-but-unanswered query recovered as pending
        pending_ids = {query.query_id for query in client.pending_queries()}
        for query_id in acked_pending:
            assert query_id in states, f"acked query {query_id} lost by the crash"
            assert states[query_id].status is QueryStatus.PENDING
            assert query_id in pending_ids

        # the pre-crash answered group kept its exact tuples
        for query_id, tuples in answered.items():
            assert states[query_id].status is QueryStatus.ANSWERED
            assert sorted(client.answers("Reservation")) == tuples

        # the schema bootstrap must NOT have re-run (no duplicate flights)
        flights = client.query("SELECT fno FROM Flights")
        assert len(flights.rows) == 5

        # recovered pending queries still coordinate: complete one pair
        target = acked_pending[3]
        owner = states[target].owner
        index = owner.split("-", 1)[1]
        partner = client.submit(
            booking_sql(f"ghost-{index}", f"solo-{index}"), owner=f"ghost-{index}"
        )
        partner.result(timeout=10.0)
        assert client.request(target).status is QueryStatus.ANSWERED

        # fresh ids must not collide with recovered ones
        fresh = client.submit(booking_sql("fresh", "nobody"), owner="fresh")
        assert fresh.query_id not in states

        # the durability stats report the recovery
        durability = client.stats().durability
        assert durability.get("enabled") is True
        recovery = durability.get("recovery") or {}
        assert recovery.get("pending_recovered", 0) >= len(acked_pending)
    finally:
        restarted.terminate()


def test_sigkill_with_spilled_cold_queries_recovers_every_acked_query(
    tmp_path, schema_file
):
    """The tiering acceptance crash: acked queries resident only in the cold
    store (snapshots reference their spilled payloads instead of inlining
    SQL) must survive a SIGKILL and still coordinate after the restart."""
    data_dir = tmp_path / "data"
    tiering_args = [
        "--pending-memory-limit",
        "4",
        "--cold-store",
        "sqlite",
        # small interval so snapshots are cut while most queries are cold,
        # exercising the cold-reference (sql=None) snapshot encoding
        "--snapshot-interval",
        "10",
    ]
    server = ServerProcess(data_dir, script=schema_file, extra_args=tiering_args)
    acked: list[str] = []
    try:
        client = server.connect()
        client.declare_answer_relation(
            "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
        )
        for index in range(20):
            handle = client.submit(
                booking_sql(f"solo-{index}", f"ghost-{index}"), owner=f"solo-{index}"
            )
            acked.append(handle.query_id)

        tiering = client.stats().tiering
        assert tiering.get("enabled") is True
        assert tiering.get("hot", 0) <= 4
        assert tiering.get("cold", 0) >= 16, tiering
        assert (data_dir / "cold_store.db").exists()

        server.sigkill()  # no shutdown handshake: the cold store must be
        # consistent purely from the snapshot-time sync barrier
    finally:
        server.terminate()

    restarted = ServerProcess(data_dir, script=schema_file, extra_args=tiering_args)
    try:
        client = restarted.connect()
        states = {handle.query_id: handle for handle in client.requests()}
        pending_ids = {query.query_id for query in client.pending_queries()}
        for query_id in acked:
            assert query_id in states, f"acked query {query_id} lost by the crash"
            assert states[query_id].status is QueryStatus.PENDING
            assert query_id in pending_ids

        # recovery rebuilt a bounded hot/cold placement, not an untiered pool
        tiering = client.stats().tiering
        assert tiering.get("enabled") is True
        assert tiering.get("hot", 0) <= 4
        assert tiering.get("hot", 0) + tiering.get("cold", 0) == len(acked)

        # recovered queries still coordinate — six partners against a hot
        # set of four means at least two answers needed a cold page-in
        for index in range(6):
            partner = client.submit(
                booking_sql(f"ghost-{index}", f"solo-{index}"), owner=f"ghost-{index}"
            )
            partner.result(timeout=10.0)
            assert client.request(acked[index]).status is QueryStatus.ANSWERED
        assert client.stats().tiering.get("page_ins", 0) >= 1
    finally:
        restarted.terminate()


def test_crash_mid_bootstrap_redoes_the_script(tmp_path, schema_file):
    """A predecessor that provably died partway through --script (started
    marker, no done marker) must not leave a half-built schema: no client
    state can exist yet, so the bootstrap is wiped and redone."""
    from repro.apps.cli import build_server
    from repro.core.config import SystemConfig
    from repro.core.durability import write_durable_marker
    from repro.core.system import YoutopiaSystem

    data_dir = tmp_path / "data"
    data_dir.mkdir()
    write_durable_marker(data_dir / "bootstrap.started")  # as build_server would
    half = YoutopiaSystem(config=SystemConfig(seed=0, data_dir=data_dir))
    half.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT, price INT)")
    # crash before the INSERTs ran and before bootstrap.done was written
    half.coordinator.journal = None
    half.coordinator.shutdown()
    half.durability.close()
    assert not (data_dir / "bootstrap.done").exists()

    server = build_server(port=0, seed=0, script=str(schema_file), data_dir=str(data_dir))
    try:
        assert len(server.service.query("SELECT fno FROM Flights").rows) == 5
        assert (data_dir / "bootstrap.done").exists()
        assert not (data_dir / "bootstrap.started").exists()
    finally:
        server.stop()

    # a completed bootstrap is never re-run (no duplicate rows)
    restarted = build_server(port=0, seed=0, script=str(schema_file), data_dir=str(data_dir))
    try:
        assert len(restarted.service.query("SELECT fno FROM Flights").rows) == 5
    finally:
        restarted.stop()


def test_script_never_wipes_unmarked_preexisting_state(tmp_path, schema_file):
    """Adding --script to a data dir that predates it must not destroy the
    acknowledged durable state it holds (no markers != crashed bootstrap)."""
    from repro.apps.cli import build_server
    from repro.core.config import SystemConfig
    from repro.core.system import YoutopiaSystem

    data_dir = tmp_path / "data"
    prior = YoutopiaSystem(config=SystemConfig(seed=0, data_dir=data_dir))
    prior.execute("CREATE TABLE Users (name TEXT)")
    prior.execute("INSERT INTO Users VALUES ('elaine')")
    request = prior.submit_entangled(booking_sql_over("Users", "Elaine", "Nobody"))
    prior.close()

    server = build_server(port=0, seed=0, script=str(schema_file), data_dir=str(data_dir))
    try:
        # prior state intact, bootstrap script NOT applied
        assert server.service.query("SELECT name FROM Users").rows == (("elaine",),)
        assert {q.query_id for q in server.service.pending_queries()} == {request.query_id}
        assert not server.service.system.database.has_table("Flights")
    finally:
        server.stop()


def booking_sql_over(table: str, traveler: str, companion: str) -> str:
    return (
        f"SELECT '{traveler}', name INTO ANSWER Pick "
        f"WHERE name IN (SELECT name FROM {table}) "
        f"AND ('{companion}', name) IN ANSWER Pick CHOOSE 1"
    )


def test_restart_after_clean_shutdown_replays_nothing(tmp_path, schema_file):
    data_dir = tmp_path / "data"
    server = ServerProcess(data_dir, script=schema_file)
    try:
        client = server.connect()
        client.submit(booking_sql("Elaine", "Nobody"), owner="Elaine")
        client.shutdown_server()  # clean stop: close() checkpoints
        server.process.wait(timeout=30)
    finally:
        server.terminate()

    restarted = ServerProcess(data_dir, script=schema_file)
    try:
        client = restarted.connect()
        assert len(client.pending_queries()) == 1
        durability = client.stats().durability
        recovery = durability.get("recovery") or {}
        assert recovery.get("snapshot_loaded") is True
        assert recovery.get("records_replayed") == 0
    finally:
        restarted.terminate()
