"""Integration check that every example script runs to completion.

The examples are part of the deliverable (they are the demo walkthroughs a new
user would run first), so the suite executes each one in a subprocess and
checks both the exit code and a few key lines of its output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent.parent / "examples"

EXPECTED_OUTPUT = {
    "quickstart.py": ["coordination succeeded"],
    "async_travel.py": [
        "Async travel booking",
        "booked together",
        "server stopped",
    ],
    "travel_pair.py": ["Book a flight with a friend", "Final account view"],
    "travel_group.py": ["Group flight booking", "groups matched"],
    "travel_adhoc.py": ["only Kramer and Elaine share a hotel"],
    "cli_session.py": ["youtopia>", "ANSWERED"],
    "admin_walkthrough.py": ["Youtopia system state", "query_registered"],
    "loaded_system.py": ["Sweep 1", "Shape check"],
    "remote_travel.py": [
        "Two-process travel booking",
        "coordinated across 2 queries in 2 processes",
        "server stopped",
    ],
}


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs_cleanly(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example script missing: {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for expected in EXPECTED_OUTPUT[script]:
        assert expected in completed.stdout


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT)
