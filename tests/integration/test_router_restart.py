"""Router restart: the registry is soft state, rebuilt from the nodes.

The acceptance bar of the restartable-gateway work: kill the router (up to
SIGKILL — no shutdown path runs), start a fresh one over the same member
nodes, and every query the old router acked must still be waitable and
cancelable with its exact answer tuples, while new submissions never collide
with pre-crash ids.  Two flavours:

* in-process (:class:`~repro.cluster.BackgroundClusterRouter` stopped and a
  new one started) — covers the rebuild logic itself, including in-flight
  batches and cross-node residents recovered where they actually live;
* subprocess (``youtopia-cli router`` SIGKILLed mid-flight and restarted) —
  covers the real crash: nothing of the old process survives but the nodes.
"""

from __future__ import annotations

import os
import re
import select
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from service_conformance import SETUP, wait_until
from repro.core.coordinator import QueryStatus
from repro.service import SystemConfig
from repro.service.remote import CoordinationServer, RemoteService
from repro.cluster import (
    BackgroundClusterRouter,
    NodeSpec,
    PlacementMap,
    extract_signature,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def relation_pair_sql(owner: str, partner: str, relation: str) -> str:
    return (
        f"SELECT '{owner}', fno INTO ANSWER {relation} "
        "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        f"AND ('{partner}', fno) IN ANSWER {relation} CHOOSE 1"
    )


def cross_pair_sql(owner: str, partner: str, mine: str, theirs: str) -> str:
    return (
        f"SELECT '{owner}', fno INTO ANSWER {mine} "
        "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        f"AND ('{partner}', fno) IN ANSWER {theirs} CHOOSE 1"
    )


def relations_per_node(placement: PlacementMap) -> list[str]:
    """One relation name homed on each node, found by scanning candidates."""
    chosen: dict[int, str] = {}
    for index in range(200):
        relation = f"rel{index}"
        node = placement.node_for_relation(relation)
        chosen.setdefault(node, relation)
        if len(chosen) == placement.node_count:
            break
    assert len(chosen) == placement.node_count
    return [chosen[node] for node in range(placement.node_count)]


@pytest.fixture
def three_nodes():
    nodes = []
    for _ in range(3):
        server = CoordinationServer(config=SystemConfig(seed=0))
        server.start()
        nodes.append(server)
    placement = PlacementMap(
        [NodeSpec(index, *server.address) for index, server in enumerate(nodes)]
    )
    yield nodes, placement
    for server in nodes:
        server.stop()


def start_router(placement: PlacementMap):
    router = BackgroundClusterRouter(placement)
    router.start()
    client = RemoteService.connect(*router.address)
    return router, client


def router_id_number(query_id: str) -> int:
    match = re.match(r"^r(\d+)$", query_id)
    assert match, f"not a router-assigned id: {query_id!r}"
    return int(match.group(1))


class TestRouterRestartInProcess:
    def test_restart_recovers_acked_queries_and_advances_ids(self, three_nodes):
        nodes, placement = three_nodes
        relations = relations_per_node(placement)
        router, client = start_router(placement)
        try:
            client.execute_script(SETUP)
            for relation in relations:
                client.declare_answer_relation(
                    relation, ["traveler", "fno"], ["TEXT", "INTEGER"]
                )
            # 1. an answered pair — terminal state with exact tuples
            left = client.submit(relation_pair_sql("a", "b", relations[0]), owner="a")
            right = client.submit(relation_pair_sql("b", "a", relations[0]), owner="b")
            envelope = left.result(timeout=10.0)
            answered_tuples = sorted(envelope.all_tuples())
            # 2. an in-flight batch of ghosts, fanned out over every node
            ghosts = client.submit_many(
                [
                    relation_pair_sql(f"g{index}", "never", relation)
                    for index, relation in enumerate(relations)
                ]
            )
            assert all(handle.status is QueryStatus.PENDING for handle in ghosts)
            # 3. a pending cross-node query, resident at its hashed node
            cross_sql = cross_pair_sql("x", "y", relations[1], relations[2])
            signature = extract_signature(cross_sql)
            assert placement.node_for_signature(signature) is None
            residence = placement.residence_node_for(signature)
            cross = client.submit(cross_sql, owner="x")
            old_ids = (
                [left.query_id, right.query_id]
                + [handle.query_id for handle in ghosts]
                + [cross.query_id]
            )
            highest_old = max(router_id_number(query_id) for query_id in old_ids)
        finally:
            client.close()
            router.stop()

        router2, client2 = start_router(placement)
        try:
            stats = client2.stats()
            # every pre-crash query was recovered from node introspection
            assert stats.cluster["recovered_queries"] >= len(old_ids)
            assert stats.cluster["registered_queries"] >= len(old_ids)
            # the answered pair is still waitable, with the exact same tuples
            recovered = client2.request(left.query_id)
            assert recovered.status is QueryStatus.ANSWERED
            assert sorted(recovered.result(timeout=5.0).all_tuples()) == answered_tuples
            assert client2.request(right.query_id).status is QueryStatus.ANSWERED
            # the in-flight batch is pending again, owned by the same nodes
            for handle in ghosts:
                assert client2.request(handle.query_id).status is QueryStatus.PENDING
            # the cross-node resident re-heated its relations where it lives
            assert set(stats.cluster["hot_relations"]) >= set(signature)
            assert stats.cluster["hot_nodes"][relations[1]] == residence
            # new ids never collide with pre-crash ones
            fresh = client2.submit(
                relation_pair_sql("new", "never", relations[0]), owner="new"
            )
            assert fresh.query_id not in set(old_ids)
            assert router_id_number(fresh.query_id) > highest_old
            # a recovered pending query still coordinates: complete one ghost
            ghost = ghosts[0]
            partner = client2.submit(
                relation_pair_sql("never", "g0", relations[0]), owner="never"
            )
            assert partner.result(timeout=10.0) is not None
            assert wait_until(
                lambda: client2.request(ghost.query_id).status is QueryStatus.ANSWERED
            )
            # ...and so does the recovered cross-node resident
            mirror = client2.submit(
                cross_pair_sql("y", "x", relations[2], relations[1]), owner="y"
            )
            assert mirror.result(timeout=10.0) is not None
            assert wait_until(
                lambda: client2.request(cross.query_id).status is QueryStatus.ANSWERED
            )
        finally:
            client2.close()
            router2.stop()

    def test_restart_recovers_cancel_routing(self, three_nodes):
        nodes, placement = three_nodes
        relations = relations_per_node(placement)
        router, client = start_router(placement)
        try:
            client.execute_script(SETUP)
            client.declare_answer_relation(
                relations[1], ["traveler", "fno"], ["TEXT", "INTEGER"]
            )
            ghost = client.submit(
                relation_pair_sql("solo", "never", relations[1]), owner="solo"
            )
        finally:
            client.close()
            router.stop()
        router2, client2 = start_router(placement)
        try:
            client2.cancel(ghost.query_id)
            assert wait_until(
                lambda: client2.request(ghost.query_id).status
                is QueryStatus.CANCELLED
            )
            # the owning node processed the cancel, not just the router
            owner_node = placement.node_for_relation(relations[1])
            assert nodes[owner_node].service.stats()["queries_cancelled"] == 1
        finally:
            client2.close()
            router2.stop()


class TestReshard:
    def test_reshard_sweep_moves_queries_to_their_new_homes(self):
        """Growing the cluster: a router restarted with ``reshard=True`` over
        more nodes (same shard count — the split() invariant) drags every
        live query whose shard re-projected onto a new node over to it."""
        nodes = []
        for _ in range(3):
            server = CoordinationServer(config=SystemConfig(seed=0))
            server.start()
            nodes.append(server)
        specs = [NodeSpec(index, *server.address) for index, server in enumerate(nodes)]
        old_placement = PlacementMap(specs[:2], shard_count=6)
        new_placement = old_placement.split(specs)
        # a relation whose shard re-projects onto a different node
        moved_relation = next(
            f"rel{index}"
            for index in range(200)
            if old_placement.node_for_relation(f"rel{index}")
            != new_placement.node_for_relation(f"rel{index}")
        )
        old_home = old_placement.node_for_relation(moved_relation)
        new_home = new_placement.node_for_relation(moved_relation)
        router, client = start_router(old_placement)
        try:
            try:
                client.execute_script(SETUP)
                client.declare_answer_relation(
                    moved_relation, ["traveler", "fno"], ["TEXT", "INTEGER"]
                )
                ghost = client.submit(
                    relation_pair_sql("solo", "never", moved_relation), owner="solo"
                )
                assert nodes[old_home].service.stats()["queries_registered"] == 1
            finally:
                client.close()
                router.stop()
            # node 2 never saw the schema; give it the same base data so the
            # relocated query can re-register there
            bootstrap = RemoteService.connect(*nodes[2].address)
            try:
                bootstrap.execute_script(SETUP)
                bootstrap.declare_answer_relation(
                    moved_relation, ["traveler", "fno"], ["TEXT", "INTEGER"]
                )
            finally:
                bootstrap.close()
            router2 = BackgroundClusterRouter(new_placement, reshard=True)
            router2.start()
            client2 = RemoteService.connect(*router2.address)
            try:
                stats = client2.stats()
                assert stats.cluster["resharded_relocations"] == 1
                assert stats.cluster["recovered_queries"] == 1
                # the query now lives on its new home node and still matches
                assert client2.request(ghost.query_id).status is QueryStatus.PENDING
                assert nodes[new_home].service.pending_queries()
                partner = client2.submit(
                    relation_pair_sql("never", "solo", moved_relation), owner="never"
                )
                assert partner.result(timeout=10.0) is not None
                assert wait_until(
                    lambda: client2.request(ghost.query_id).status
                    is QueryStatus.ANSWERED
                )
                assert nodes[new_home].service.stats()["groups_matched"] == 1
            finally:
                client2.close()
                router2.stop()
        finally:
            for server in nodes:
                server.stop()


class RouterProcess:
    """A ``youtopia-cli router`` subprocess on an ephemeral port."""

    def __init__(self, node_addresses: list[str]) -> None:
        argv = [sys.executable, "-m", "repro.apps.cli", "router", "--port", "0"]
        for address in node_addresses:
            argv += ["--node", address]
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.process = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env
        )
        self.port = self._read_port()

    def _read_port(self, timeout: float = 30.0) -> int:
        deadline = time.monotonic() + timeout
        assert self.process.stdout is not None
        fd = self.process.stdout.fileno()
        buffer = ""
        while True:
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                if "listening on" in line:
                    return int(line.rsplit(":", 1)[1])
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(f"router did not report a port within {timeout}s")
            ready, _, _ = select.select([fd], [], [], remaining)
            if not ready:
                raise RuntimeError(f"router did not report a port within {timeout}s")
            chunk = os.read(fd, 4096)
            if not chunk:
                raise RuntimeError(
                    f"router exited (code {self.process.poll()}) before listening"
                )
            buffer += chunk.decode("utf-8", errors="replace")

    def sigkill(self) -> None:
        if self.process.poll() is None:
            os.kill(self.process.pid, signal.SIGKILL)
            self.process.wait(timeout=10)

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10)


class TestRouterSigkillRestart:
    def test_sigkilled_router_restarts_with_full_registry(self, three_nodes):
        """The CI crash drill: SIGKILL the gateway process, start a new one,
        and the cluster picks up exactly where it was."""
        nodes, placement = three_nodes
        relations = relations_per_node(placement)
        addresses = [spec.address for spec in placement.nodes]
        router = RouterProcess(addresses)
        restarted = None
        client = client2 = None
        try:
            client = RemoteService.connect("127.0.0.1", router.port)
            client.execute_script(SETUP)
            for relation in relations:
                client.declare_answer_relation(
                    relation, ["traveler", "fno"], ["TEXT", "INTEGER"]
                )
            left = client.submit(relation_pair_sql("a", "b", relations[0]), owner="a")
            right = client.submit(relation_pair_sql("b", "a", relations[0]), owner="b")
            answered_tuples = sorted(left.result(timeout=10.0).all_tuples())
            ghosts = client.submit_many(
                [
                    relation_pair_sql(f"g{index}", "never", relation)
                    for index, relation in enumerate(relations)
                ]
            )
            old_ids = [
                handle.query_id
                for handle in [left, right, *ghosts]
            ]
            highest_old = max(router_id_number(query_id) for query_id in old_ids)

            router.sigkill()  # no shutdown path runs; only the nodes survive

            restarted = RouterProcess(addresses)
            client2 = RemoteService.connect("127.0.0.1", restarted.port)
            stats = client2.stats()
            assert stats.cluster["recovered_queries"] >= len(old_ids)
            # 100% of acked queries are recoverable with their exact tuples
            recovered = client2.request(left.query_id)
            assert recovered.status is QueryStatus.ANSWERED
            assert sorted(recovered.result(timeout=5.0).all_tuples()) == answered_tuples
            for handle in ghosts:
                assert client2.request(handle.query_id).status is QueryStatus.PENDING
            # no id collisions after the crash
            fresh = client2.submit(
                relation_pair_sql("new", "never", relations[0]), owner="new"
            )
            assert router_id_number(fresh.query_id) > highest_old
            # recovered queries still coordinate end to end
            partner = client2.submit(
                relation_pair_sql("never", "g0", relations[0]), owner="never"
            )
            assert partner.result(timeout=10.0) is not None
            assert wait_until(
                lambda: client2.request(ghosts[0].query_id).status
                is QueryStatus.ANSWERED
            )
        finally:
            for closing in (client, client2):
                if closing is not None:
                    try:
                        closing.close()
                    except Exception:
                        pass
            router.terminate()
            if restarted is not None:
                restarted.terminate()
