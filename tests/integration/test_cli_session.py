"""Integration test for experiment E9: the SQL command line and admin interfaces.

Reproduces Section 3.2: "The command line allows us to show how we can
directly input SQL code into the system, specifying entangled queries on our
travel database", plus the admin mode that "enables visual inspection of the
state of the system".
"""

from __future__ import annotations

import pytest

from repro.apps.admin import AdminInterface
from repro.apps.cli import CommandLine
from repro.apps.travel.dataset import generate_dataset, install_and_load
from repro.core.system import YoutopiaSystem


@pytest.fixture
def travel_shell() -> CommandLine:
    system = YoutopiaSystem(seed=5)
    install_and_load(system, generate_dataset(num_flights=16, num_hotels=8, num_users=4, seed=5))
    return CommandLine(system)


SESSION_SCRIPT = [
    ".tables",
    "SELECT COUNT(*) AS flights FROM Flights",
    ".user Kramer",
    (
        "SELECT 'Kramer', fno INTO ANSWER Reservation "
        "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
    ),
    ".pending",
    ".user Jerry",
    (
        "SELECT 'Jerry', fno INTO ANSWER Reservation "
        "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1"
    ),
    ".answers Reservation",
    ".stats",
    ".quit",
]


class TestScriptedDemoSession:
    def test_full_session_transcript(self, travel_shell):
        outputs = travel_shell.run_script(SESSION_SCRIPT)
        transcript = dict(zip(SESSION_SCRIPT, outputs))

        assert "Flights" in transcript[".tables"]
        assert "flights" in transcript["SELECT COUNT(*) AS flights FROM Flights"]
        assert "PENDING" in transcript[SESSION_SCRIPT[3]]
        assert "Kramer" in transcript[".pending"]
        assert "ANSWERED" in transcript[SESSION_SCRIPT[6]]
        assert "(2 rows)" in transcript[".answers Reservation"]
        assert "groups_matched = 1" in transcript[".stats"]
        assert travel_shell.done

    def test_arbitrary_sql_also_works(self, travel_shell):
        # "as well as any other arbitrary queries the user may care to specify"
        output = travel_shell.run_line(
            "SELECT dest, COUNT(*) AS n FROM Flights GROUP BY dest ORDER BY n DESC LIMIT 3"
        )
        assert "dest" in output and "n" in output

    def test_updates_through_the_shell_affect_coordination(self, travel_shell):
        # Remove every Paris flight, then show the pair cannot coordinate.
        travel_shell.run_line("DELETE FROM Flights WHERE dest = 'Paris'")
        travel_shell.run_line(".user Kramer")
        first = travel_shell.run_line(SESSION_SCRIPT[3])
        travel_shell.run_line(".user Jerry")
        second = travel_shell.run_line(SESSION_SCRIPT[6])
        assert "PENDING" in first and "PENDING" in second


class TestAdminMode:
    def test_admin_inspection_of_cli_state(self, travel_shell):
        travel_shell.run_line(".user Kramer")
        travel_shell.run_line(SESSION_SCRIPT[3])
        admin = AdminInterface(travel_shell.system)
        state = admin.render_state()
        assert "pending entangled queries" in state
        assert "Reservation('Kramer', fno)" in state
        pending = admin.pending_queries()
        assert len(pending) == 1
        described = admin.describe_query(pending[0].query_id)
        assert "owner        : Kramer" in described
