"""Integration tests for experiments E3-E8: the demo scenarios of Section 3.1.

These drive the full stack the way the demo's web front end would: the
TravelService middle tier, the synthetic friend graph (Facebook stand-in), the
notification mailbox (Facebook-message stand-in), entangled queries inside the
Youtopia system, and the travel database underneath.
"""

from __future__ import annotations

import pytest

from repro.apps.travel.dataset import generate_dataset, install_and_load
from repro.apps.travel.models import TripRequest
from repro.apps.travel.notifications import Mailbox
from repro.apps.travel.service import TravelService
from repro.apps.travel.social import FriendGraph
from repro.core.coordinator import QueryStatus
from repro.core.system import YoutopiaSystem
from repro.workloads import loaded_system, many_pairs


@pytest.fixture
def stack():
    system = YoutopiaSystem(seed=3)
    install_and_load(system, generate_dataset(num_flights=32, num_hotels=16, num_users=0, seed=3))
    friends = FriendGraph()
    for left, right in [
        ("Jerry", "Kramer"), ("Jerry", "Elaine"), ("Kramer", "Elaine"),
        ("Jerry", "George"), ("Kramer", "George"), ("Elaine", "George"),
        ("Kramer", "Newman"),
    ]:
        friends.add_friendship(left, right)
    mailbox = Mailbox(system)
    service = TravelService(system, friends=friends, mailbox=mailbox)
    return system, service, mailbox


class TestBookFlightWithFriend:
    """E3 — 'Book a flight with a friend' (Figures 3 and 4)."""

    def test_coordinated_booking_workflow(self, stack):
        system, service, mailbox = stack
        # Jerry chooses Kramer from his friend list (Figure 3)...
        assert "Kramer" in service.friends_of("Jerry")
        # ...and submits his coordination request.
        jerry = service.request_flight_with_friend("Jerry", "Kramer", "Paris")
        assert jerry.status is QueryStatus.PENDING
        # Kramer submits the symmetric request; Youtopia coordinates both.
        kramer = service.request_flight_with_friend("Kramer", "Jerry", "Paris")
        assert jerry.status is QueryStatus.ANSWERED and kramer.status is QueryStatus.ANSWERED
        booked = dict(system.answers("Reservation"))
        assert booked["Jerry"] == booked["Kramer"]
        # both are notified "via a Facebook message"
        assert mailbox.unread_count("Jerry") == 1
        assert mailbox.unread_count("Kramer") == 1

    def test_alternate_path_browse_then_book_directly(self, stack):
        system, service, _mailbox = stack
        # Kramer already booked a Paris flight on his own.
        target = service.search_flights("Paris")[0]
        service.book_flight("Kramer", target.fno)
        # Jerry browses flights and sees his friend's existing booking (Figure 4)...
        listing = service.browse_flights_with_friends("Jerry", "Paris")
        flights_with_kramer = [flight.fno for flight, friends in listing if "Kramer" in friends]
        assert flights_with_kramer == [target.fno]
        # ...and books the same flight directly through the system.
        service.book_flight("Jerry", target.fno)
        booked = dict(system.answers("Reservation"))
        assert booked["Jerry"] == booked["Kramer"] == target.fno


class TestBookFlightAndHotelWithFriend:
    """E4 — 'Book a flight and a hotel with a friend'."""

    def test_single_entangled_query_covers_both(self, stack):
        system, service, _mailbox = stack
        jerry = service.request_flight_and_hotel_with_friend("Jerry", "Kramer", "Paris")
        # Jerry's single request has constraints on both the flight and the hotel.
        assert len(jerry.query.heads) == 2
        assert len(jerry.query.answer_atoms) == 2
        kramer = service.request_flight_and_hotel_with_friend("Kramer", "Jerry", "Paris")
        assert jerry.status is QueryStatus.ANSWERED and kramer.status is QueryStatus.ANSWERED
        assert len({fno for _t, fno in system.answers("Reservation")}) == 1
        assert len({hid for _t, hid in system.answers("HotelReservation")}) == 1
        confirmation = service.confirmation_for(jerry)
        assert confirmation.flight is not None and confirmation.hotel is not None


class TestMultipleSimultaneousBookings:
    """E5 — 'Multiple simultaneous bookings'."""

    def test_many_pairs_coordinate_independently(self):
        outcome = many_pairs(num_pairs=12, seed=2)
        assert outcome.coordinated
        reservations = outcome.answer_relation("Reservation")
        assert len(reservations) == 24
        # each pair is on one flight; different pairs may be on different flights
        assert outcome.result.statistics["groups_matched"] == 12


class TestGroupBookings:
    """E6 / E7 — group flight (and hotel) bookings."""

    def test_group_of_four_flight(self, stack):
        system, service, _mailbox = stack
        members = ["Jerry", "Kramer", "Elaine", "George"]
        requests = service.submit_group_flight(members, "Paris")
        assert all(request.status is QueryStatus.ANSWERED for request in requests.values())
        reservations = system.answers("Reservation")
        assert {traveler for traveler, _ in reservations} == set(members)
        assert len({fno for _t, fno in reservations}) == 1

    def test_group_flight_and_hotel(self, stack):
        system, service, _mailbox = stack
        members = ["Jerry", "Kramer", "Elaine"]
        requests = service.submit_group_flight_hotel(members, "Rome")
        assert all(request.status is QueryStatus.ANSWERED for request in requests.values())
        assert len({fno for _t, fno in system.answers("Reservation")}) == 1
        assert len({hid for _t, hid in system.answers("HotelReservation")}) == 1

    def test_group_waits_until_last_member_submits(self, stack):
        _system, service, _mailbox = stack
        members = ["Jerry", "Kramer", "Elaine", "George"]
        requests = []
        for member in members[:-1]:
            companions = [other for other in members if other != member]
            requests.append(service.request_group_flight(member, companions, "Paris"))
            assert all(request.status is QueryStatus.PENDING for request in requests)
        final = service.request_group_flight(
            members[-1], members[:-1], "Paris"
        )
        assert final.status is QueryStatus.ANSWERED
        assert all(request.status is QueryStatus.ANSWERED for request in requests)


class TestAdHocCoordination:
    """E8 — ad-hoc structures: Jerry+Kramer on flights, Kramer+Elaine on flight and hotel."""

    def test_paper_adhoc_example(self, stack):
        system, service, _mailbox = stack
        # Jerry coordinates only the flight with Kramer.
        jerry = service.request_trip(TripRequest(
            user="Jerry", destination="Athens", flight_partners=("Kramer",),
        ))
        # Kramer coordinates the flight with both Jerry and Elaine, and the hotel with Elaine.
        kramer = service.request_trip(TripRequest(
            user="Kramer", destination="Athens",
            flight_partners=("Jerry", "Elaine"), hotel_partners=("Elaine",), book_hotel=True,
        ))
        # Elaine coordinates the flight and hotel with Kramer only.
        elaine = service.request_trip(TripRequest(
            user="Elaine", destination="Athens",
            flight_partners=("Kramer",), hotel_partners=("Kramer",), book_hotel=True,
        ))
        assert jerry.status is QueryStatus.ANSWERED
        assert kramer.status is QueryStatus.ANSWERED
        assert elaine.status is QueryStatus.ANSWERED

        flights = dict(system.answers("Reservation"))
        hotels = dict(system.answers("HotelReservation"))
        # all three share the flight (Jerry-Kramer and Kramer-Elaine constraints chain)
        assert flights["Jerry"] == flights["Kramer"] == flights["Elaine"]
        # only Kramer and Elaine coordinate the hotel; Jerry has no hotel booking
        assert hotels["Kramer"] == hotels["Elaine"]
        assert "Jerry" not in hotels


class TestLoadedSystem:
    """E10 (functional check) — the demo runs its examples on a loaded system."""

    def test_examples_still_coordinate_under_load(self):
        outcome = loaded_system(num_pairs=40, num_unmatchable=15, seed=4)
        assert outcome.result.answered == 80
        assert outcome.result.pending == 15
        stats = outcome.result.statistics
        assert stats["groups_matched"] == 40
        # the matcher never needed to explore more than the pairs involved
        assert stats["structural_nodes"] < stats["queries_registered"] * 10
