"""Concurrency stress: 8 threads hammering the sharded worker-pool coordinator.

Mixed ``submit`` / ``submit_many`` / ``cancel`` / ``retry_pending`` / ``wait``
traffic against a ``match_workers=4`` system, then global invariants:

* **no lost answers** — every pair whose members were not cancelled is
  answered, and each member's group is exactly its pair;
* **no double execution** — every answered query contributed exactly one
  answer tuple, and every query id appears in at most one answered group;
* **cancel/match races stay consistent** — a pair is never half answered and
  half cancelled: cancellation either wins while pending or raises the typed
  :class:`~repro.errors.QueryAlreadyAnsweredError` after the match;
* **clean shutdown** — the worker pool stops, workers exit, no worker errors.
"""

from __future__ import annotations

import random
import threading
import time

from repro.core.config import SystemConfig
from repro.core.coordinator import QueryStatus
from repro.core.system import YoutopiaSystem
from repro.errors import (
    CoordinationTimeoutError,
    EntanglementError,
    QueryAlreadyAnsweredError,
    QueryNotPendingError,
)

RELATIONS = ("ResA", "ResB", "ResC", "ResD")
NUM_PAIRS = 24
NUM_NOISE = 16
CANCEL_TARGET_PAIRS = 4


def build_system() -> YoutopiaSystem:
    config = SystemConfig(seed=3, match_workers=4, shard_count=4)
    system = YoutopiaSystem(config=config)
    system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
    system.execute(
        "INSERT INTO Flights VALUES "
        + ", ".join(f"({fno}, 'Paris')" for fno in range(1, 41))
    )
    for relation in RELATIONS:
        system.declare_answer_relation(relation, ["traveler", "fno"], ["TEXT", "INTEGER"])
    return system


def entangled(user: str, partner: str, relation: str, dest: str = "Paris") -> str:
    return (
        f"SELECT '{user}', fno INTO ANSWER {relation} "
        f"WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') "
        f"AND ('{partner}', fno) IN ANSWER {relation} CHOOSE 1"
    )


def test_eight_thread_mixed_storm_keeps_invariants():
    system = build_system()
    try:
        rng = random.Random(17)

        pairs: list[tuple[str, str, str]] = []
        for index in range(NUM_PAIRS):
            relation = RELATIONS[index % len(RELATIONS)]
            pairs.append((f"p{index}a", f"p{index}b", relation))

        pair_queries = []
        for left, right, relation in pairs:
            pair_queries.append(system.compile(entangled(left, right, relation)))
            pair_queries.append(system.compile(entangled(right, left, relation)))
        pair_ids = {query.query_id: index // 2 for index, query in enumerate(pair_queries)}

        # noise submitted up-front so the canceller has real ids to chase
        noise_requests = [
            system.submit_entangled(
                entangled(f"n{index}", f"ghost-n{index}", rng.choice(RELATIONS))
            )
            for index in range(NUM_NOISE)
        ]

        shuffled = list(pair_queries)
        rng.shuffle(shuffled)
        # 3 single submitters + 2 batch submitters share the pair workload
        chunks = [shuffled[offset::5] for offset in range(5)]
        errors: list[Exception] = []
        errors_lock = threading.Lock()
        start_gate = threading.Event()

        def record_error(exc: Exception) -> None:
            with errors_lock:
                errors.append(exc)

        def single_submitter(queries) -> None:
            start_gate.wait()
            for query in queries:
                try:
                    system.submit_entangled(query)
                except Exception as exc:  # noqa: BLE001
                    record_error(exc)

        def batch_submitter(queries) -> None:
            start_gate.wait()
            for offset in range(0, len(queries), 3):
                try:
                    system.submit_many(queries[offset : offset + 3])
                except Exception as exc:  # noqa: BLE001
                    record_error(exc)

        cancel_outcomes: dict[str, str] = {}

        def canceller() -> None:
            start_gate.wait()
            targets = [request.query_id for request in noise_requests]
            targets += [
                query.query_id
                for query in pair_queries
                if pair_ids[query.query_id] < CANCEL_TARGET_PAIRS
            ]
            rng_local = random.Random(5)
            rng_local.shuffle(targets)
            for query_id in targets:
                try:
                    system.cancel(query_id)
                    cancel_outcomes[query_id] = "cancelled"
                except QueryAlreadyAnsweredError:
                    cancel_outcomes[query_id] = "answered"
                except QueryNotPendingError:
                    cancel_outcomes[query_id] = "gone"
                except Exception as exc:  # noqa: BLE001
                    record_error(exc)
                time.sleep(0.001)

        def retryer() -> None:
            start_gate.wait()
            for _ in range(10):
                try:
                    system.retry_pending()
                except Exception as exc:  # noqa: BLE001
                    record_error(exc)
                time.sleep(0.002)

        wait_results: dict[str, str] = {}
        wait_lock = threading.Lock()

        def waiter() -> None:
            start_gate.wait()
            safe_ids = [
                query.query_id
                for query in pair_queries
                if pair_ids[query.query_id] >= CANCEL_TARGET_PAIRS
            ][:12]
            for query_id in safe_ids:
                deadline = time.monotonic() + 20.0
                outcome = "timeout"
                while time.monotonic() < deadline:
                    try:
                        system.wait(query_id, timeout=deadline - time.monotonic())
                        outcome = "answered"
                        break
                    except QueryNotPendingError:
                        # racing the submitter threads: not registered yet
                        time.sleep(0.002)
                    except CoordinationTimeoutError:
                        outcome = "timeout"
                        break
                    except EntanglementError:
                        outcome = "failed"
                        break
                    except Exception as exc:  # noqa: BLE001
                        record_error(exc)
                        outcome = "error"
                        break
                with wait_lock:
                    wait_results[query_id] = outcome

        threads = (
            [threading.Thread(target=single_submitter, args=(chunks[i],)) for i in range(3)]
            + [threading.Thread(target=batch_submitter, args=(chunks[i],)) for i in (3, 4)]
            + [
                threading.Thread(target=canceller),
                threading.Thread(target=retryer),
                threading.Thread(target=waiter),
            ]
        )
        assert len(threads) == 8
        for thread in threads:
            thread.start()
        start_gate.set()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads)
        assert system.drain(timeout=30.0)
        system.retry_pending()  # settle anything the storm left matchable
        assert system.drain(timeout=30.0)

        assert not errors, errors
        assert not system.coordinator.worker_pool.errors

        requests = {request.query_id: request for request in system.coordinator.requests()}

        # pair-level invariants
        by_pair: dict[int, list] = {}
        for query in pair_queries:
            by_pair.setdefault(pair_ids[query.query_id], []).append(
                requests[query.query_id]
            )
        for pair_index, members in by_pair.items():
            statuses = {member.status for member in members}
            if pair_index >= CANCEL_TARGET_PAIRS:
                # untouched by the canceller: must coordinate — no lost answers
                assert statuses == {QueryStatus.ANSWERED}, (
                    f"pair {pair_index}: {statuses}"
                )
            if statuses == {QueryStatus.ANSWERED}:
                expected_group = frozenset(member.query_id for member in members)
                for member in members:
                    assert frozenset(member.group_query_ids) == expected_group
            else:
                # a cancelled member can never coexist with an answered partner
                assert QueryStatus.ANSWERED not in statuses, (
                    f"pair {pair_index} half-answered: {statuses}"
                )

        # no double execution: one tuple per answered query, globally
        answered = [
            request
            for request in requests.values()
            if request.status is QueryStatus.ANSWERED
        ]
        total_tuples = sum(len(system.answers(relation)) for relation in RELATIONS)
        assert total_tuples == len(answered)
        seen_in_groups: set[str] = set()
        for request in answered:
            assert request.query_id not in seen_in_groups
        for group in {frozenset(request.group_query_ids) for request in answered}:
            assert not (group & seen_in_groups)
            seen_in_groups |= group

        # noise: cancelled by the canceller or still pending; never answered
        for request in noise_requests:
            assert request.status in (QueryStatus.CANCELLED, QueryStatus.PENDING)

        # waiters on uncancelled pairs all observed the answer
        assert wait_results and all(
            outcome == "answered" for outcome in wait_results.values()
        ), wait_results

        # statistics agree with the request records
        stats = system.statistics()
        assert stats["queries_answered"] == len(answered)
        assert stats["queries_cancelled"] == sum(
            1
            for outcome in cancel_outcomes.values()
            if outcome == "cancelled"
        )
    finally:
        system.close()

    # clean shutdown: close() stopped the pool and its threads
    pool = system.coordinator.worker_pool
    assert not pool.running
    for _ in range(100):
        if all(not thread.is_alive() for thread in pool._threads):
            break
        time.sleep(0.01)
    assert all(not thread.is_alive() for thread in pool._threads)
