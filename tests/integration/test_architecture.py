"""Integration test for experiment E2: the architecture of Figure 2.

A query flows front end → query compiler → coordination component →
execution engine → database; the coordination component's internal
pending-query table is visible to plain SQL; the administrative interface can
inspect every stage; and state optionally persists through the SQLite mirror.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.apps.admin import AdminInterface
from repro.core import ir
from repro.core.coordinator import PENDING_TABLE, QueryStatus
from repro.core.events import EventType
from repro.core.system import YoutopiaSystem


class TestComponentFlow:
    def test_compiler_coordination_execution_pipeline(self, figure1_system, kramer_sql, jerry_sql):
        system = figure1_system

        # 1. Query compiler: SQL text becomes the internal representation.
        compiled = system.compile(kramer_sql, owner="Kramer")
        assert isinstance(compiled, ir.EntangledQuery)
        assert compiled.heads[0].relation == "Reservation"
        assert compiled.domains[0].variables == ("fno",)

        # 2. Coordination component: registration populates the internal
        #    pending-query table that the paper says stores pending queries.
        kramer = system.submit_entangled(kramer_sql, owner="Kramer")
        pending_rows = system.query(
            f"SELECT query_id, owner, status FROM {PENDING_TABLE}"
        ).as_dicts()
        assert pending_rows == [
            {"query_id": kramer.query_id, "owner": "Kramer", "status": "pending"}
        ]
        assert system.coordinator.provider_index_size() == 1

        # 3. Execution engine + database: once the partner arrives the answers
        #    are written to the answer relation inside one transaction.
        committed_before = system.transactions.commits
        system.submit_entangled(jerry_sql, owner="Jerry")
        assert system.transactions.commits == committed_before + 1
        assert len(system.answers("Reservation")) == 2

        # 4. The pending table now reflects the answered status.
        statuses = dict(system.query(f"SELECT query_id, status FROM {PENDING_TABLE}").rows)
        assert set(statuses.values()) == {"answered"}

    def test_event_sequence_matches_lifecycle(self, figure1_system, kramer_sql, jerry_sql):
        system = figure1_system
        system.submit_entangled(kramer_sql, owner="Kramer")
        system.submit_entangled(jerry_sql, owner="Jerry")
        types = [event.type for event in system.events.history()]
        first_registered = types.index(EventType.QUERY_REGISTERED)
        first_matched = types.index(EventType.GROUP_MATCHED)
        first_answered = types.index(EventType.QUERY_ANSWERED)
        assert first_registered < first_matched < first_answered
        assert types.count(EventType.QUERY_REGISTERED) == 2
        assert types.count(EventType.QUERY_ANSWERED) == 2
        assert types.count(EventType.GROUP_MATCHED) == 1

    def test_admin_interface_sees_every_component(self, figure1_system, kramer_sql):
        system = figure1_system
        request = system.submit_entangled(kramer_sql, owner="Kramer")
        admin = AdminInterface(system)

        description = admin.describe_query(request.query_id)
        assert "Reservation('Kramer', fno)" in description

        state = admin.render_state()
        assert "Flights: 4 rows" in state
        assert "pending entangled queries" in state
        assert request.query_id in state

        assert admin.statistics()["queries_registered"] == 1
        assert "Scan" in admin.explain("SELECT fno FROM Flights") or "IndexLookup" in admin.explain(
            "SELECT fno FROM Flights"
        )


class TestPersistence:
    def test_three_tier_state_survives_in_sqlite(self, tmp_path, kramer_sql, jerry_sql):
        path = tmp_path / "demo.db"
        with YoutopiaSystem(seed=0, persist_to=path) as system:
            system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
            system.execute(
                "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), "
                "(134, 'Paris'), (136, 'Rome')"
            )
            system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
            system.submit_entangled(kramer_sql, owner="Kramer")
            system.submit_entangled(jerry_sql, owner="Jerry")

        connection = sqlite3.connect(str(path))
        tables = {
            row[0]
            for row in connection.execute("SELECT name FROM sqlite_master WHERE type='table'")
        }
        assert {"Flights", "Reservation", "_pending_queries"} <= tables
        travelers = {
            row[0] for row in connection.execute("SELECT traveler FROM Reservation").fetchall()
        }
        assert travelers == {"Kramer", "Jerry"}


class TestIsolationAndAtomicity:
    def test_failed_joint_execution_leaves_no_partial_state(self, figure1_system,
                                                            kramer_sql, jerry_sql):
        system = figure1_system

        calls = []

        def exploding_hook(_relation, values, _engine):
            calls.append(values)
            if len(calls) == 2:
                raise RuntimeError("simulated crash during joint execution")

        system.register_side_effect(exploding_hook, relation="Reservation")
        kramer = system.submit_entangled(kramer_sql, owner="Kramer")
        jerry = system.submit_entangled(jerry_sql, owner="Jerry")

        # Execution failed: nothing was written and both queries wait again.
        assert system.answers("Reservation") == []
        assert kramer.status is QueryStatus.PENDING
        assert jerry.status is QueryStatus.PENDING
        assert system.statistics()["executions_failed"] >= 1
        assert system.statistics()["transactions_rolled_back"] >= 1
