"""Integration tests for concurrent submission of entangled queries.

The demo shows "multiple users ... concurrently trying to coordinate flight
and hotel reservations together"; the coordinator serialises match attempts
internally, so submissions from many threads must still produce consistent,
pairwise-coordinated answers and consistent inventory.
"""

from __future__ import annotations

import threading

import pytest

from repro.apps.travel.service import TravelService
from repro.core.coordinator import QueryStatus
from repro.workloads import WorkloadConfig, WorkloadGenerator, build_loaded_system


class TestConcurrentSubmission:
    def test_pairs_submitted_from_many_threads_all_coordinate(self):
        system, service, _friends = build_loaded_system(
            num_flights=40, num_hotels=10, num_users=64, seed=6
        )
        generator = WorkloadGenerator(service, WorkloadConfig(seed=6))
        items = generator.pair_items(16)

        requests = []
        requests_lock = threading.Lock()

        def submit(item):
            request = system.submit_entangled(item.query, owner=item.owner)
            with requests_lock:
                requests.append(request)

        threads = [threading.Thread(target=submit, args=(item,)) for item in items]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(requests) == 32
        assert all(request.status is QueryStatus.ANSWERED for request in requests)
        reservations = system.answers("Reservation")
        assert len(reservations) == 32

        # every traveller flies on exactly the flight their partner flies on
        booked = dict(reservations)
        for item in items:
            partner = item.expected_group[0] if item.expected_group[0] != item.owner else item.expected_group[1]
            assert booked[item.owner] == booked[partner]

    def test_inventory_consistent_under_concurrent_bookings(self):
        system, service, _friends = build_loaded_system(
            num_flights=10, num_hotels=5, num_users=32, seed=7
        )
        seats_before = {
            fno: seats for fno, seats in system.query("SELECT fno, seats FROM Flights").rows
        }
        generator = WorkloadGenerator(service, WorkloadConfig(seed=7))
        items = generator.pair_items(10)

        threads = [
            threading.Thread(target=system.submit_entangled, args=(item.query, item.owner))
            for item in items
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        seats_after = {
            fno: seats for fno, seats in system.query("SELECT fno, seats FROM Flights").rows
        }
        booked_per_flight: dict[int, int] = {}
        for _traveler, fno in system.answers("Reservation"):
            booked_per_flight[fno] = booked_per_flight.get(fno, 0) + 1
        # seat decrements exactly mirror the reservations that were made
        for fno, before in seats_before.items():
            assert seats_after[fno] == before - booked_per_flight.get(fno, 0)

    def test_waiters_are_woken_by_other_threads(self):
        system, service, _friends = build_loaded_system(
            num_flights=12, num_hotels=4, num_users=8, seed=8
        )
        generator = WorkloadGenerator(service, WorkloadConfig(seed=8))
        first, second = generator.pair_items(1)

        early = system.submit_entangled(first.query, owner=first.owner)
        answers = {}

        def waiter():
            answers["result"] = system.wait(early.query_id, timeout=5.0)

        waiting_thread = threading.Thread(target=waiter)
        waiting_thread.start()
        system.submit_entangled(second.query, owner=second.owner)
        waiting_thread.join(timeout=5.0)
        assert not waiting_thread.is_alive()
        assert "Reservation" in answers["result"].tuples
