"""Integration tests for concurrent submission of entangled queries.

The demo shows "multiple users ... concurrently trying to coordinate flight
and hotel reservations together"; the coordinator serialises match attempts
internally, so submissions from many threads must still produce consistent,
pairwise-coordinated answers and consistent inventory.
"""

from __future__ import annotations

import threading

import pytest

from repro.apps.travel.service import TravelService
from repro.core.coordinator import QueryStatus
from repro.errors import (
    CoordinationTimeoutError,
    EntanglementError,
    QueryNotPendingError,
)
from repro.workloads import WorkloadConfig, WorkloadGenerator, build_loaded_system


class TestConcurrentSubmission:
    def test_pairs_submitted_from_many_threads_all_coordinate(self):
        system, service, _friends = build_loaded_system(
            num_flights=40, num_hotels=10, num_users=64, seed=6
        )
        generator = WorkloadGenerator(service, WorkloadConfig(seed=6))
        items = generator.pair_items(16)

        requests = []
        requests_lock = threading.Lock()

        def submit(item):
            request = system.submit_entangled(item.query, owner=item.owner)
            with requests_lock:
                requests.append(request)

        threads = [threading.Thread(target=submit, args=(item,)) for item in items]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(requests) == 32
        assert all(request.status is QueryStatus.ANSWERED for request in requests)
        reservations = system.answers("Reservation")
        assert len(reservations) == 32

        # every traveller flies on exactly the flight their partner flies on
        booked = dict(reservations)
        for item in items:
            partner = item.expected_group[0] if item.expected_group[0] != item.owner else item.expected_group[1]
            assert booked[item.owner] == booked[partner]

    def test_inventory_consistent_under_concurrent_bookings(self):
        system, service, _friends = build_loaded_system(
            num_flights=10, num_hotels=5, num_users=32, seed=7
        )
        seats_before = {
            fno: seats for fno, seats in system.query("SELECT fno, seats FROM Flights").rows
        }
        generator = WorkloadGenerator(service, WorkloadConfig(seed=7))
        items = generator.pair_items(10)

        threads = [
            threading.Thread(target=system.submit_entangled, args=(item.query, item.owner))
            for item in items
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        seats_after = {
            fno: seats for fno, seats in system.query("SELECT fno, seats FROM Flights").rows
        }
        booked_per_flight: dict[int, int] = {}
        for _traveler, fno in system.answers("Reservation"):
            booked_per_flight[fno] = booked_per_flight.get(fno, 0) + 1
        # seat decrements exactly mirror the reservations that were made
        for fno, before in seats_before.items():
            assert seats_after[fno] == before - booked_per_flight.get(fno, 0)

    def test_waiters_are_woken_by_other_threads(self):
        system, service, _friends = build_loaded_system(
            num_flights=12, num_hotels=4, num_users=8, seed=8
        )
        generator = WorkloadGenerator(service, WorkloadConfig(seed=8))
        first, second = generator.pair_items(1)

        early = system.submit_entangled(first.query, owner=first.owner)
        answers = {}

        def waiter():
            answers["result"] = system.wait(early.query_id, timeout=5.0)

        waiting_thread = threading.Thread(target=waiter)
        waiting_thread.start()
        system.submit_entangled(second.query, owner=second.owner)
        waiting_thread.join(timeout=5.0)
        assert not waiting_thread.is_alive()
        assert "Reservation" in answers["result"].tuples


class TestSubmitWaitCancelRaces:
    """Threaded submit/wait/cancel races on one coordinator."""

    def test_cancel_races_with_waiters(self):
        """Waiters blocked on a query must be released when another thread cancels it."""
        system, service, _friends = build_loaded_system(
            num_flights=12, num_hotels=4, num_users=16, seed=20
        )
        generator = WorkloadGenerator(service, WorkloadConfig(seed=20))
        items = generator.unmatchable_items(8)
        requests = [system.submit_entangled(item.query, owner=item.owner) for item in items]

        outcomes: dict[str, str] = {}
        outcomes_lock = threading.Lock()

        def waiter(query_id: str) -> None:
            try:
                system.wait(query_id, timeout=5.0)
                outcome = "answered"
            except CoordinationTimeoutError:
                outcome = "timeout"
            except EntanglementError:
                outcome = "cancelled"
            with outcomes_lock:
                outcomes[query_id] = outcome

        waiters = [
            threading.Thread(target=waiter, args=(request.query_id,)) for request in requests
        ]
        for thread in waiters:
            thread.start()

        cancellers = [
            threading.Thread(target=system.cancel, args=(request.query_id,))
            for request in requests
        ]
        for thread in cancellers:
            thread.start()
        for thread in cancellers:
            thread.join(timeout=5.0)
        for thread in waiters:
            thread.join(timeout=5.0)
        assert not any(thread.is_alive() for thread in waiters)
        assert all(outcome == "cancelled" for outcome in outcomes.values())
        assert system.coordinator.pending_count() == 0

    def test_concurrent_cancel_of_same_query_cancels_exactly_once(self):
        system, service, _friends = build_loaded_system(
            num_flights=12, num_hotels=4, num_users=4, seed=21
        )
        generator = WorkloadGenerator(service, WorkloadConfig(seed=21))
        (item,) = generator.unmatchable_items(1)
        request = system.submit_entangled(item.query, owner=item.owner)

        errors: list[Exception] = []
        errors_lock = threading.Lock()

        def cancel() -> None:
            try:
                system.cancel(request.query_id)
            except QueryNotPendingError as exc:
                with errors_lock:
                    errors.append(exc)

        threads = [threading.Thread(target=cancel) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        # exactly one cancel wins; the others observe the query as gone
        assert len(errors) == 7
        assert request.status is QueryStatus.CANCELLED
        assert system.statistics()["queries_cancelled"] == 1

    def test_mixed_submit_wait_cancel_storm_stays_consistent(self):
        """Pairs coordinate, noise is cancelled, waiters finish — all under contention."""
        system, service, _friends = build_loaded_system(
            num_flights=40, num_hotels=10, num_users=64, seed=22
        )
        generator = WorkloadGenerator(service, WorkloadConfig(seed=22))
        pairs = generator.pair_items(8)
        noise = generator.unmatchable_items(8)
        noise_requests = [
            system.submit_entangled(item.query, owner=item.owner) for item in noise
        ]

        pair_requests = []
        pair_lock = threading.Lock()
        wait_results: list[str] = []

        def submit_pair_member(item) -> None:
            request = system.submit_entangled(item.query, owner=item.owner)
            with pair_lock:
                pair_requests.append(request)

        def wait_for_noise(query_id: str) -> None:
            try:
                system.wait(query_id, timeout=5.0)
                wait_results.append("answered")
            except EntanglementError:
                wait_results.append("gone")

        submitters = [
            threading.Thread(target=submit_pair_member, args=(item,)) for item in pairs
        ]
        waiters = [
            threading.Thread(target=wait_for_noise, args=(request.query_id,))
            for request in noise_requests
        ]
        cancellers = [
            threading.Thread(target=system.cancel, args=(request.query_id,))
            for request in noise_requests
        ]
        threads = submitters + waiters + cancellers
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not any(thread.is_alive() for thread in threads)

        assert all(request.status is QueryStatus.ANSWERED for request in pair_requests)
        assert all(request.status is QueryStatus.CANCELLED for request in noise_requests)
        assert len(wait_results) == len(noise_requests)
        assert system.coordinator.pending_count() == 0


class TestBatchSubmission:
    """`submit_many` under cross-referencing and concurrent batches."""

    def test_batch_answers_cross_referencing_pairs_in_one_pass(self):
        system, service, _friends = build_loaded_system(
            num_flights=40, num_hotels=10, num_users=64, seed=23
        )
        generator = WorkloadGenerator(service, WorkloadConfig(seed=23))
        items = generator.pair_items(16)

        requests = system.submit_many([item.query for item in items])
        assert len(requests) == 32
        assert all(request.status is QueryStatus.ANSWERED for request in requests)

        stats = system.statistics()
        # one match pass per answered group, no failed passes: the whole pool
        # was registered before the single deferred pass ran
        assert stats["groups_matched"] == 16
        assert stats["match_attempts"] == 16
        assert stats["failed_match_attempts"] == 0

        # every traveller flies on exactly the flight their partner flies on
        booked = dict(system.answers("Reservation"))
        for item in items:
            partner = (
                item.expected_group[0]
                if item.expected_group[0] != item.owner
                else item.expected_group[1]
            )
            assert booked[item.owner] == booked[partner]

    def test_concurrent_batches_from_many_threads(self):
        system, service, _friends = build_loaded_system(
            num_flights=40, num_hotels=10, num_users=64, seed=24
        )
        generator = WorkloadGenerator(service, WorkloadConfig(seed=24))
        batches = [
            [item.query for item in generator.pair_items(4)] for _ in range(4)
        ]

        all_requests = []
        requests_lock = threading.Lock()

        def submit_batch(queries) -> None:
            requests = system.submit_many(queries)
            with requests_lock:
                all_requests.extend(requests)

        threads = [threading.Thread(target=submit_batch, args=(batch,)) for batch in batches]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)

        assert len(all_requests) == 32
        assert all(request.status is QueryStatus.ANSWERED for request in all_requests)
        assert system.coordinator.pending_count() == 0
