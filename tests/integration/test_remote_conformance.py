"""Transport-transparency: the conformance suite against a live server.

Runs every scenario class from ``tests/service_conformance.py`` — the same
classes the in-process service passes in
``tests/unit/service/test_service_api.py`` — against a
:class:`~repro.service.remote.RemoteService` talking length-prefixed JSON
over TCP to a :class:`~repro.service.remote.CoordinationServer` on
localhost.  On top of that it checks the properties only a network
transport has: one frame per batch, push-driven (non-polling) results,
typed errors across the wire, and fail-fast behaviour when the server goes
away mid-wait.
"""

from __future__ import annotations

import threading
import time

import pytest

from service_conformance import (
    JERRY_SQL,
    KRAMER_SQL,
    SETUP,
    BatchConformance,
    ConcurrencyConformance,
    IntrospectionConformance,
    PlainQueryConformance,
    PolicyConformance,
    SubmissionConformance,
    fresh_owner,
    pair_sql,
    unmatchable_sql,
    wait_until,
)
from repro.errors import (
    CoordinationTimeoutError,
    ParseError,
    QueryAlreadyAnsweredError,
    QueryNotPendingError,
    ScriptError,
    ServiceUnavailableError,
)
from repro.service import (
    CoordinationService,
    InProcessService,
    IntrospectionService,
    RelationResult,
    SubmitRequest,
    SystemConfig,
)
from repro.service.remote import CoordinationServer, RemoteHandle, RemoteService


def start_stack(config: SystemConfig = SystemConfig(seed=0)):
    """A started server plus one connected client (caller closes both)."""
    server = CoordinationServer(config=config)
    host, port = server.start()
    client = RemoteService.connect(host, port)
    return server, client


@pytest.fixture
def server_and_service():
    server, client = start_stack()
    client.execute_script(SETUP)
    client.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])
    yield server, client
    client.close()
    server.stop()


@pytest.fixture
def service(server_and_service):
    _server, client = server_and_service
    return client


# -- the transport-agnostic suite, remote flavour ---------------------------------------------


class TestRemoteSubmission(SubmissionConformance):
    pass


class TestRemoteBatchSubmission(BatchConformance):
    pass


class TestRemotePlainQueries(PlainQueryConformance):
    pass


class TestRemoteIntrospection(IntrospectionConformance):
    pass


class TestRemoteConcurrency(ConcurrencyConformance):
    pass


class TestRemotePolicy(PolicyConformance):
    pass


# -- remote-only properties -------------------------------------------------------------------


class TestTransportShape:
    def test_remote_service_satisfies_both_protocols(self, service):
        assert isinstance(service, CoordinationService)
        assert isinstance(service, IntrospectionService)

    def test_submit_many_uses_one_frame_per_batch(self, service):
        """A 40-query batch crosses the wire as a single request frame."""
        requests = []
        for _ in range(20):
            left, right = fresh_owner("fa"), fresh_owner("fb")
            requests.append(SubmitRequest(sql=pair_sql(left, right), owner=left))
            requests.append(SubmitRequest(sql=pair_sql(right, left), owner=right))
        before = service.frames_sent
        handles = service.submit_many(requests)
        assert service.frames_sent == before + 1
        assert len(handles) == 40
        assert all(handle.is_answered for handle in handles)

    def test_batched_answers_identical_to_in_process(self, service):
        """The same batch through both transports books identical pairs."""
        pairs = [(f"wire-a{i}", f"wire-b{i}") for i in range(10)]
        requests = []
        for left, right in pairs:
            requests.append(SubmitRequest(sql=pair_sql(left, right), owner=left))
            requests.append(SubmitRequest(sql=pair_sql(right, left), owner=right))

        service.submit_many(requests)
        remote_answers = sorted(service.answers("Reservation"))

        inprocess = InProcessService(config=SystemConfig(seed=0))
        inprocess.execute_script(SETUP)
        inprocess.declare_answer_relation(
            "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
        )
        inprocess.submit_many(requests)
        assert sorted(inprocess.answers("Reservation")) == remote_answers

    def test_result_is_push_driven_not_polled(self, service):
        """Waiting on a handle sends no frames; the answer is server push."""
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))

        def submit_partner() -> None:
            time.sleep(0.05)
            service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))

        partner = threading.Thread(target=submit_partner)
        partner.start()
        before = service.frames_sent
        envelope = kramer.result(timeout=5.0)
        partner.join(timeout=5.0)
        # exactly one frame was written while result() blocked: the partner's
        # submit — result() itself is woken by the push notification.
        assert service.frames_sent == before + 1
        assert envelope.owner == "Kramer"

    def test_handles_survive_for_other_clients_submissions(self, server_and_service):
        """Two clients of one server coordinate with each other."""
        server, first = server_and_service
        host, port = server.address
        with RemoteService.connect(host, port) as second:
            kramer = first.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
            jerry = second.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
            assert jerry.is_answered
            envelope = kramer.result(timeout=5.0)
            assert set(envelope.group) == {kramer.query_id, jerry.query_id}
            assert sorted(owner for owner, _fno in second.answers("Reservation")) == [
                "Jerry",
                "Kramer",
            ]

    def test_watches_deduplicate_per_connection(self, server_and_service):
        """Polling .requests/request() must not stack push callbacks."""
        server, service = server_and_service
        handle = service.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("wd"))))
        for _ in range(5):
            service.request(handle.query_id)
            service.requests()
        registered = server.service.coordinator._done_callbacks.get(handle.query_id, [])
        assert len(registered) == 1

    def test_terminal_handles_leave_the_client_registry(self, service):
        """One entry per *pending* query, not one per query ever submitted."""
        kramer = service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))
        assert kramer.query_id in service._handles
        service.submit(SubmitRequest(sql=JERRY_SQL, owner="Jerry"))
        kramer.result(timeout=5.0)
        assert wait_until(lambda: kramer.query_id not in service._handles)

    def test_execute_script_routes_relations_and_handles(self, service):
        results = service.execute_script(
            "SELECT COUNT(*) FROM Flights; " + unmatchable_sql(fresh_owner("xs"))
        )
        assert isinstance(results[0], RelationResult)
        assert results[0].scalar() == 3
        assert isinstance(results[1], RemoteHandle)
        assert not results[1].done()


class TestShardedServer:
    """The transport composes with the sharded, event-driven coordinator:
    answers complete on background match workers and still reach remote
    handles via push."""

    def test_push_arrives_from_background_match_workers(self):
        server, client = start_stack(SystemConfig(seed=0, match_workers=2))
        try:
            client.execute_script(SETUP)
            client.declare_answer_relation(
                "Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"]
            )
            left, right = fresh_owner("sh"), fresh_owner("sh")
            first = client.submit(SubmitRequest(sql=pair_sql(left, right), owner=left))
            second = client.submit(SubmitRequest(sql=pair_sql(right, left), owner=right))
            assert first.result(timeout=10.0).owner == left
            assert second.result(timeout=10.0).owner == right
            assert client.drain(timeout=10.0)
            stats = client.stats()
            assert stats.pending == 0
            assert len(stats.shards) >= 2  # per-shard introspection crosses the wire
        finally:
            client.close()
            server.stop()


class TestTypedErrorsAcrossTheWire:
    def test_unknown_query_id_raises_not_pending(self, service):
        with pytest.raises(QueryNotPendingError) as excinfo:
            service.cancel("does-not-exist")
        assert excinfo.value.query_id == "does-not-exist"

    def test_cancel_of_answered_query_raises_already_answered(self, service):
        kramer, _jerry = service.submit_many(
            [
                SubmitRequest(sql=KRAMER_SQL, owner="Kramer"),
                SubmitRequest(sql=JERRY_SQL, owner="Jerry"),
            ]
        )
        with pytest.raises(QueryAlreadyAnsweredError):
            service.cancel(kramer.query_id)

    def test_wait_timeout_carries_query_id_and_deadline(self, service):
        handle = service.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("te"))))
        with pytest.raises(CoordinationTimeoutError) as excinfo:
            service.wait(handle.query_id, timeout=0.05)
        assert excinfo.value.query_id == handle.query_id
        assert excinfo.value.timeout == pytest.approx(0.05)

    def test_handle_result_timeout_reports_configured_deadline(self, service):
        """The timeout error carries the caller's actual deadline, 0 included."""
        handle = service.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("td"))))
        with pytest.raises(CoordinationTimeoutError) as excinfo:
            handle.result(timeout=0.25)
        assert excinfo.value.query_id == handle.query_id
        assert excinfo.value.timeout == pytest.approx(0.25)
        with pytest.raises(CoordinationTimeoutError) as zero_info:
            handle.result(timeout=0)
        assert zero_info.value.timeout == 0

    def test_parse_error_round_trips_with_location(self, service):
        with pytest.raises(ParseError):
            service.query("SELECT FROM WHERE")

    def test_script_error_reports_failing_statement(self, service):
        with pytest.raises(ScriptError) as excinfo:
            service.execute_script("SELECT COUNT(*) FROM Flights; SELECT * FROM Nowhere")
        assert excinfo.value.statement_index == 1
        assert "Nowhere" in excinfo.value.statement_sql


class TestFailureSemantics:
    """Server loss mid-operation: fail fast, never hang (issue satellite)."""

    def test_server_shutdown_fails_pending_handle_fast(self, server_and_service):
        server, service = server_and_service
        handle = service.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("sd"))))
        outcome: dict[str, object] = {}

        def wait_on_handle() -> None:
            try:
                handle.result(timeout=30.0)
                outcome["result"] = "answered"
            except ServiceUnavailableError as exc:
                outcome["result"] = exc

        waiter = threading.Thread(target=wait_on_handle)
        waiter.start()
        time.sleep(0.05)
        server.stop()
        waiter.join(timeout=5.0)
        assert not waiter.is_alive(), "handle.result() hung after server shutdown"
        assert isinstance(outcome["result"], ServiceUnavailableError)

    def test_server_shutdown_fails_blocking_wait_rpc_fast(self, server_and_service):
        server, service = server_and_service
        handle = service.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("sw"))))
        outcome: dict[str, object] = {}

        def wait_rpc() -> None:
            try:
                service.wait(handle.query_id, timeout=30.0)
                outcome["result"] = "answered"
            except ServiceUnavailableError as exc:
                outcome["result"] = exc

        waiter = threading.Thread(target=wait_rpc)
        waiter.start()
        time.sleep(0.05)
        server.stop()
        waiter.join(timeout=5.0)
        assert not waiter.is_alive(), "service.wait() hung after server shutdown"
        assert isinstance(outcome["result"], ServiceUnavailableError)

    def test_server_shutdown_fires_done_callbacks_with_failure(self, server_and_service):
        server, service = server_and_service
        handle = service.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("sc"))))
        fired: list[str] = []
        handle.add_done_callback(lambda h: fired.append(h.query_id))
        server.stop()
        assert wait_until(lambda: fired == [handle.query_id])
        assert not handle.done()  # the query never reached a terminal state

    def test_rpcs_after_shutdown_raise_service_unavailable(self, server_and_service):
        server, service = server_and_service
        server.stop()
        wait_until(lambda: service._failure is not None)
        with pytest.raises(ServiceUnavailableError):
            service.stats()
        with pytest.raises(ServiceUnavailableError):
            service.submit(SubmitRequest(sql=KRAMER_SQL, owner="Kramer"))

    def test_client_close_fails_pending_handles(self, server_and_service):
        _server, service = server_and_service
        handle = service.submit(SubmitRequest(sql=unmatchable_sql(fresh_owner("cl"))))
        service.close()
        with pytest.raises(ServiceUnavailableError):
            handle.result(timeout=5.0)

    def test_remote_shutdown_op_stops_the_server(self, server_and_service):
        server, service = server_and_service
        service.shutdown_server()
        assert server.wait_stopped(timeout=5.0)
        with pytest.raises(ServiceUnavailableError):
            wait_until(lambda: service._failure is not None)
            service.stats()

    def test_connect_to_dead_port_raises_service_unavailable(self):
        probe = CoordinationServer(config=SystemConfig(seed=0))
        host, port = probe.start()
        probe.stop()
        with pytest.raises(ServiceUnavailableError):
            RemoteService.connect(host, port, connect_timeout=0.5)
