"""Property-based test: the plan optimizer never changes query results.

Random (but well-typed) SELECTs over a fixed flights/airlines schema are
executed three ways — unoptimized plan, optimized plan without index lookups,
optimized plan with index lookups — and must return identical row multisets.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.relalg.engine import QueryEngine, run_script
from repro.relalg.expressions import ExpressionEvaluator
from repro.relalg.optimizer import optimize
from repro.relalg.plan import PlanContext
from repro.relalg.planner import build_plan, output_columns
from repro.sqlparser import parse_statement
from repro.storage.database import Database

SETUP = """
CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT, price REAL, seats INT);
CREATE TABLE Airlines (fno INT PRIMARY KEY, airline TEXT);
INSERT INTO Flights VALUES
    (122, 'Paris', 450.0, 10), (123, 'Paris', 500.0, 0), (134, 'Paris', 700.0, 5),
    (136, 'Rome', 300.0, 3), (140, 'Rome', 900.0, 8), (141, 'Athens', 150.0, 2);
INSERT INTO Airlines VALUES
    (122, 'United'), (123, 'United'), (134, 'Lufthansa'), (136, 'Alitalia'), (140, 'Aegean');
"""


def build_engine() -> QueryEngine:
    engine = QueryEngine(Database())
    run_script(engine, SETUP)
    engine.database.table("Flights").create_index("by_dest", ["dest"])
    return engine


_ENGINE = build_engine()

column_predicates = st.one_of(
    st.sampled_from(["f.dest", "a.airline"]).flatmap(
        lambda column: st.sampled_from(["Paris", "Rome", "Athens", "United", "Aegean"]).map(
            lambda value: f"{column} = '{value}'"
        )
    ),
    st.sampled_from(["f.price", "f.seats", "f.fno"]).flatmap(
        lambda column: st.tuples(
            st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
            st.integers(min_value=0, max_value=1000),
        ).map(lambda pair: f"{column} {pair[0]} {pair[1]}")
    ),
    st.just("f.fno = a.fno"),
    st.just("1 = 1"),
    st.just("1 = 2"),
)


def conditions(depth: int = 2):
    if depth == 0:
        return column_predicates
    sub = conditions(depth - 1)
    return st.one_of(
        column_predicates,
        st.tuples(sub, st.sampled_from(["AND", "OR"]), sub).map(
            lambda triple: f"({triple[0]} {triple[1]} {triple[2]})"
        ),
    )


select_texts = st.tuples(
    st.sampled_from([
        "f.fno",
        "f.fno, f.dest",
        "f.fno, a.airline",
        "f.dest, f.price",
    ]),
    conditions(2),
    st.sampled_from(["", " ORDER BY f.fno", " ORDER BY f.price DESC, f.fno"]),
    st.sampled_from(["", " LIMIT 3"]),
).map(
    lambda parts: (
        f"SELECT {parts[0]} FROM Flights f JOIN Airlines a ON f.fno = a.fno "
        f"WHERE {parts[1]}{parts[2]}{parts[3]}"
    )
)


def run_unoptimized(sql: str) -> list[tuple]:
    select = parse_statement(sql)
    plan = build_plan(select, _ENGINE.database)
    columns = output_columns(select, _ENGINE.database)
    context = PlanContext(_ENGINE.database, _ENGINE.evaluator)
    return [tuple(row.get(column) for column in columns) for row in plan.rows(context)]


def run_with(sql: str, enable_index_lookup: bool) -> list[tuple]:
    select = parse_statement(sql)
    plan = optimize(build_plan(select, _ENGINE.database), _ENGINE.database, enable_index_lookup)
    columns = output_columns(select, _ENGINE.database)
    context = PlanContext(_ENGINE.database, _ENGINE.evaluator)
    return [tuple(row.get(column) for column in columns) for row in plan.rows(context)]


@settings(max_examples=120, deadline=None)
@given(select_texts)
def test_optimizer_preserves_results(sql: str):
    baseline = run_unoptimized(sql)
    no_index = run_with(sql, enable_index_lookup=False)
    with_index = run_with(sql, enable_index_lookup=True)
    # Without an ORDER BY the row order is unspecified, so compare multisets;
    # with an ORDER BY the sequences must agree exactly.
    if "ORDER BY" in sql and "LIMIT" not in sql:
        assert baseline == no_index == with_index
    else:
        assert Counter(map(repr, baseline)) == Counter(map(repr, no_index)) == Counter(
            map(repr, with_index)
        ) or ("LIMIT" in sql and len(baseline) == len(no_index) == len(with_index))
