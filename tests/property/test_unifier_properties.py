"""Property-based tests for the unifier's union-find invariants and undo trail."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.matching import Unifier, _UNBOUND

nodes = st.tuples(st.sampled_from(["q1", "q2", "q3"]), st.sampled_from(["x", "y", "z", "w"]))

operations = st.lists(
    st.one_of(
        st.tuples(st.just("union"), nodes, nodes),
        st.tuples(st.just("bind"), nodes, st.integers(min_value=0, max_value=3)),
    ),
    max_size=30,
)


def apply_ops(unifier: Unifier, ops) -> None:
    for operation in ops:
        if operation[0] == "union":
            unifier.union(operation[1], operation[2])
        else:
            unifier.bind(operation[1], operation[2])


def state_of(unifier: Unifier):
    """Canonical view: partition of all nodes plus the constant of each class."""
    all_nodes = [(q, v) for q in ("q1", "q2", "q3") for v in ("x", "y", "z", "w")]
    partition = {}
    for node in all_nodes:
        partition.setdefault(unifier.find(node), set()).add(node)
    values = {root: unifier.value_of(root) for root in partition}
    return {frozenset(members): values[root] for root, members in partition.items()}


@settings(max_examples=150, deadline=None)
@given(operations)
def test_find_is_idempotent_and_consistent(ops):
    unifier = Unifier()
    apply_ops(unifier, ops)
    for q in ("q1", "q2", "q3"):
        for v in ("x", "y", "z", "w"):
            root = unifier.find((q, v))
            assert unifier.find(root) == root
            # every member of a class reports the same constant
            assert unifier.value_of((q, v)) == unifier.value_of(root)


@settings(max_examples=150, deadline=None)
@given(operations)
def test_successful_union_merges_classes(ops):
    unifier = Unifier()
    apply_ops(unifier, ops)
    if unifier.union(("q1", "x"), ("q2", "y")):
        assert unifier.find(("q1", "x")) == unifier.find(("q2", "y"))
    else:
        # a refused union can only be due to conflicting constants
        left = unifier.value_of(("q1", "x"))
        right = unifier.value_of(("q2", "y"))
        assert left is not _UNBOUND and right is not _UNBOUND and left != right


@settings(max_examples=150, deadline=None)
@given(operations, operations)
def test_undo_restores_previous_state_exactly(first_ops, second_ops):
    unifier = Unifier()
    apply_ops(unifier, first_ops)
    before = state_of(unifier)
    mark = unifier.mark()
    apply_ops(unifier, second_ops)
    unifier.undo_to(mark)
    assert state_of(unifier) == before


@settings(max_examples=100, deadline=None)
@given(operations)
def test_binding_twice_with_same_value_is_stable(ops):
    unifier = Unifier()
    apply_ops(unifier, ops)
    if unifier.bind(("q1", "x"), 7):
        assert unifier.bind(("q1", "x"), 7)
        assert not unifier.bind(("q1", "x"), 8)
        assert unifier.value_of(("q1", "x")) == 7
