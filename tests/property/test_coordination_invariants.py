"""Property-based tests of end-to-end coordination invariants.

Whatever random workload of travel coordination requests is thrown at a
Youtopia instance, the following must hold afterwards:

* **Answer soundness** — every tuple in an answer relation was contributed by
  the head of exactly one *answered* query under its reported binding.
* **Constraint satisfaction** — for every answered query, every one of its
  coordination constraints is satisfied by tuples of queries answered in the
  same group.
* **Joint answering** — queries of one group are either all answered or all
  still pending; and every answered group's members name each other.
* **Conservation** — registered = answered + pending + cancelled + rejected.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.coordinator import QueryStatus
from repro.workloads import WorkloadConfig, WorkloadGenerator, build_loaded_system, run_workload

workload_configs = st.tuples(
    st.integers(min_value=0, max_value=6),   # pairs
    st.integers(min_value=0, max_value=2),   # groups
    st.integers(min_value=2, max_value=4),   # group size
    st.integers(min_value=0, max_value=3),   # unmatchable
    st.integers(min_value=0, max_value=10_000),  # seed
)


@settings(max_examples=25, deadline=None)
@given(workload_configs)
def test_coordination_invariants(config):
    num_pairs, num_groups, group_size, num_unmatchable, seed = config
    system, service, _friends = build_loaded_system(
        num_flights=18, num_hotels=9, num_users=8, seed=seed % 97
    )
    generator = WorkloadGenerator(
        service,
        WorkloadConfig(
            num_pairs=num_pairs,
            num_groups=num_groups,
            group_size=group_size,
            num_unmatchable=num_unmatchable,
            shuffle_arrivals=True,
            seed=seed,
        ),
    )
    items = generator.generate()
    result = run_workload(system, items)

    requests = system.coordinator.requests()
    answered = [r for r in requests if r.status is QueryStatus.ANSWERED]
    pending = [r for r in requests if r.status is QueryStatus.PENDING]

    # -- conservation ---------------------------------------------------------
    assert result.submitted == len(items)
    assert len(requests) == len(items)
    assert len(answered) + len(pending) == len(items)
    assert result.answered == len(answered)

    # -- answer soundness -----------------------------------------------------
    contributed: dict[str, list[tuple]] = {}
    for request in answered:
        assert request.answer is not None
        for relation, values in request.answer.all_tuples():
            contributed.setdefault(relation.lower(), []).append(values)
    for relation_name in system.answer_relations.names():
        stored = sorted(map(repr, system.answers(relation_name)))
        expected = sorted(map(repr, contributed.get(relation_name.lower(), [])))
        assert stored == expected

    # -- constraint satisfaction & joint answering ------------------------------
    for request in answered:
        group_ids = set(request.group_query_ids)
        assert request.query_id in group_ids
        group_requests = [system.coordinator.request(query_id) for query_id in group_ids]
        assert all(member.status is QueryStatus.ANSWERED for member in group_requests)
        # tuples contributed by the group
        group_tuples: dict[str, set] = {}
        for member in group_requests:
            for relation, values in member.answer.all_tuples():
                group_tuples.setdefault(relation.lower(), set()).add(values)
        binding = request.answer.binding
        for atom in request.query.answer_atoms:
            instantiated = atom.substitute(binding)
            assert instantiated in group_tuples.get(atom.relation.lower(), set()), (
                f"constraint {atom} of {request.query_id} not satisfied by its group"
            )

    # -- pending queries have no partner among the answered ----------------------
    for request in pending:
        assert request.answer is None
        assert request.group_query_ids == ()
