"""Property-based tests for the storage engine against a simple Python model."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.errors import ConstraintViolationError
from repro.storage.schema import make_schema
from repro.storage.table import Table

rows = st.tuples(
    st.integers(min_value=0, max_value=50),
    st.sampled_from(["Paris", "Rome", "Athens", "Berlin"]),
    st.one_of(st.none(), st.floats(min_value=0, max_value=1000, allow_nan=False)),
)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), rows),
        st.tuples(st.just("delete_dest"), st.sampled_from(["Paris", "Rome", "Athens", "Berlin"])),
        st.tuples(st.just("update_price"), st.integers(min_value=0, max_value=50)),
    ),
    max_size=40,
)


def fresh_table() -> Table:
    return Table(make_schema("T", [("id", "INT"), ("dest", "TEXT"), ("price", "REAL")]))


@settings(max_examples=120, deadline=None)
@given(operations)
def test_table_matches_list_model(ops):
    """Insert/delete/update on the table behave like the same ops on a plain list."""
    table = fresh_table()
    table.create_index("by_dest", ["dest"])
    model: list[tuple] = []

    for kind, payload in ops:
        if kind == "insert":
            table.insert(payload)
            identifier, dest, price = payload
            model.append((identifier, dest, None if price is None else float(price)))
        elif kind == "delete_dest":
            table.delete_where(lambda row: row["dest"] == payload)
            model = [row for row in model if row[1] != payload]
        else:  # update_price
            table.update_where(
                lambda row: row["id"] == payload, lambda row: {"price": 999.0}
            )
            model = [
                (identifier, dest, 999.0) if identifier == payload else (identifier, dest, price)
                for identifier, dest, price in model
            ]

    from collections import Counter

    assert Counter(map(repr, table.rows())) == Counter(map(repr, model))
    # the index agrees with a full scan for every destination
    for dest in ("Paris", "Rome", "Athens", "Berlin"):
        via_index = sorted(row["id"] for row in table.lookup_equal({"dest": dest}))
        via_scan = sorted(identifier for identifier, d, _ in model if d == dest)
        assert via_index == via_scan


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=40))
def test_primary_key_uniqueness_is_invariant(keys):
    """However inserts interleave, a keyed table never holds duplicate keys."""
    table = Table(make_schema("K", [("id", "INT")], primary_key=("id",)))
    accepted = set()
    for key in keys:
        try:
            table.insert((key,))
            assert key not in accepted
            accepted.add(key)
        except ConstraintViolationError:
            assert key in accepted
    assert {row["id"] for row in table.scan()} == accepted


@settings(max_examples=80, deadline=None)
@given(operations, operations)
def test_snapshot_restore_is_exact(before_ops, after_ops):
    """Restoring a snapshot erases exactly the effects applied after it."""
    table = fresh_table()
    for kind, payload in before_ops:
        if kind == "insert":
            table.insert(payload)
    expected = sorted(table.rows(), key=repr)
    snapshot = table.snapshot()
    for kind, payload in after_ops:
        if kind == "insert":
            table.insert(payload)
        elif kind == "delete_dest":
            table.delete_where(lambda row: row["dest"] == payload)
    table.restore(snapshot)
    assert sorted(table.rows(), key=repr) == expected
