"""Property-based oracle test: the optimized matcher agrees with the exhaustive
baseline evaluator on whether a pool of entangled queries can coordinate.

Pools are random collections of pairwise travel-style coordination requests
(random destinations, partners, and price caps) over a small flight database.
The unification-based matcher and the direct implementation of the declarative
semantics must agree on matchability for every trigger query, and whenever the
matcher produces a group the group must actually satisfy the semantics.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.baseline import ExhaustiveEvaluator
from repro.core.compiler import EntangledQueryBuilder, var
from repro.core.matching import Matcher, ProviderIndex
from repro.relalg.engine import QueryEngine, run_script
from repro.storage.database import Database

PEOPLE = ["Jerry", "Kramer", "Elaine", "George"]
DESTINATIONS = ["Paris", "Rome"]
PRICE_CAPS = [None, 350.0, 800.0]


def build_engine() -> QueryEngine:
    engine = QueryEngine(Database())
    run_script(
        engine,
        """
        CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT, price REAL);
        INSERT INTO Flights VALUES
            (122, 'Paris', 450.0), (123, 'Paris', 300.0),
            (136, 'Rome', 200.0), (140, 'Rome', 900.0);
        """,
    )
    return engine


query_specs = st.lists(
    st.tuples(
        st.sampled_from(PEOPLE),          # owner
        st.sampled_from(PEOPLE),          # partner
        st.sampled_from(DESTINATIONS),    # destination
        st.sampled_from(PRICE_CAPS),      # price cap
    ).filter(lambda spec: spec[0] != spec[1]),
    min_size=1,
    max_size=4,
)


def build_query(index, owner, partner, dest, cap):
    conditions = [f"dest = '{dest}'"]
    if cap is not None:
        conditions.append(f"price <= {cap}")
    return (
        EntangledQueryBuilder(owner=owner)
        .head("Reservation", owner, var("fno"))
        .domain("fno", f"SELECT fno FROM Flights WHERE {' AND '.join(conditions)}")
        .require("Reservation", partner, var("fno"))
        .build(query_id=f"q{index}")
    )


def satisfies_semantics(group, engine) -> bool:
    """Check a matched group directly against the declarative semantics."""
    answer_relation: dict[str, set] = {}
    for query in group.queries:
        for valuation in group.bindings[query.query_id]:
            for atom in query.heads:
                answer_relation.setdefault(atom.relation.lower(), set()).add(
                    atom.substitute(valuation)
                )
    for query in group.queries:
        for valuation in group.bindings[query.query_id]:
            # every domain constraint holds
            for domain in query.domains:
                rows = {tuple(row) for row in engine.execute(domain.subquery).rows}
                observed = tuple(valuation[name] for name in domain.variables)
                if observed not in rows:
                    return False
            # every answer constraint is satisfied by the group's own tuples
            for atom in query.answer_atoms:
                if atom.substitute(valuation) not in answer_relation.get(atom.relation.lower(), set()):
                    return False
    return True


@settings(max_examples=60, deadline=None)
@given(query_specs, st.integers(min_value=0, max_value=10_000))
def test_matcher_agrees_with_exhaustive_baseline(specs, seed):
    engine = build_engine()
    queries = [build_query(i, *spec) for i, spec in enumerate(specs)]
    pool = {query.query_id: query for query in queries}
    index = ProviderIndex()
    for query in pool.values():
        index.add_query(query)

    matcher = Matcher(engine, rng=random.Random(seed))
    baseline = ExhaustiveEvaluator(engine, rng=random.Random(seed), max_group_size=4)

    for trigger in queries:
        fast = matcher.find_group(trigger, pool, index)
        slow = baseline.find_group(trigger, pool)
        assert (fast is None) == (slow is None), (
            f"matcher and baseline disagree for trigger {trigger.query_id}: "
            f"fast={fast is not None}, slow={slow is not None}"
        )
        if fast is not None:
            assert trigger.query_id in fast.query_ids
            assert satisfies_semantics(fast, engine)
        if slow is not None:
            assert satisfies_semantics(slow, engine)


@settings(max_examples=40, deadline=None)
@given(query_specs, st.integers(min_value=0, max_value=10_000))
def test_constant_index_does_not_change_matchability(specs, seed):
    """The (relation, constant-position) index is a pure optimization."""
    engine = build_engine()
    queries = [build_query(i, *spec) for i, spec in enumerate(specs)]
    pool = {query.query_id: query for query in queries}

    indexed = ProviderIndex(use_constant_index=True)
    naive = ProviderIndex(use_constant_index=False)
    for query in pool.values():
        indexed.add_query(query)
        naive.add_query(query)

    for trigger in queries:
        with_index = Matcher(engine, rng=random.Random(seed)).find_group(trigger, pool, indexed)
        without_index = Matcher(engine, rng=random.Random(seed)).find_group(trigger, pool, naive)
        assert (with_index is None) == (without_index is None)
