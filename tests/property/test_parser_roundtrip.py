"""Property-based tests: the SQL pretty-printer round-trips through the parser."""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.sqlparser import ast, format_statement, parse_statement

# -- strategies -----------------------------------------------------------------

identifiers = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8).filter(
    lambda name: name.upper() not in {
        "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "INTO", "ANSWER", "CHOOSE",
        "AS", "JOIN", "INNER", "LEFT", "OUTER", "ON", "GROUP", "BY", "HAVING", "ORDER",
        "ASC", "DESC", "LIMIT", "OFFSET", "DISTINCT", "CREATE", "TABLE", "PRIMARY", "KEY",
        "DROP", "IF", "EXISTS", "INSERT", "VALUES", "UPDATE", "SET", "DELETE", "NULL",
        "TRUE", "FALSE", "IS", "BETWEEN", "LIKE", "CROSS", "UNION", "ALL",
    }
)

string_literals = st.text(
    alphabet=string.ascii_letters + string.digits + " '.,-", max_size=12
)

literals = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000).map(ast.Literal),
    st.booleans().map(ast.Literal),
    st.just(ast.Literal(None)),
    string_literals.map(ast.Literal),
)

column_refs = st.builds(
    ast.ColumnRef,
    name=identifiers,
    table=st.one_of(st.none(), identifiers),
)


def expressions(max_depth: int = 3):
    base = st.one_of(literals, column_refs)
    if max_depth == 0:
        return base
    sub = expressions(max_depth - 1)
    return st.one_of(
        base,
        st.builds(
            ast.BinaryOp,
            operator=st.sampled_from(["+", "-", "*", "=", "!=", "<", "<=", ">", ">=", "AND", "OR"]),
            left=sub,
            right=sub,
        ),
        st.builds(ast.UnaryOp, operator=st.just("NOT"), operand=sub),
        st.builds(ast.IsNull, operand=sub, negated=st.booleans()),
        st.builds(
            ast.InList,
            operand=sub,
            items=st.lists(literals, min_size=1, max_size=3).map(tuple),
            negated=st.booleans(),
        ),
        st.builds(
            ast.Between,
            operand=sub,
            low=literals,
            high=literals,
            negated=st.booleans(),
        ),
        st.builds(
            ast.AnswerMembership,
            items=st.lists(st.one_of(literals, column_refs), min_size=1, max_size=3).map(tuple),
            relation=identifiers,
            negated=st.just(False),
        ),
    )


select_statements = st.builds(
    ast.Select,
    items=st.lists(
        st.builds(ast.SelectItem, expression=expressions(2), alias=st.one_of(st.none(), identifiers)),
        min_size=1,
        max_size=4,
    ).map(tuple),
    from_table=st.one_of(st.none(), st.builds(ast.TableRef, name=identifiers, alias=st.none())),
    where=st.one_of(st.none(), expressions(2)),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=100)),
    distinct=st.booleans(),
)


entangled_statements = st.builds(
    ast.EntangledSelect,
    heads=st.lists(
        st.builds(
            ast.AnswerHead,
            items=st.lists(st.one_of(literals.filter(lambda l: l.value is not None), column_refs),
                           min_size=1, max_size=3).map(tuple),
            relation=identifiers,
        ),
        min_size=1,
        max_size=2,
    ).map(tuple),
    where=st.one_of(st.none(), expressions(2)),
    choose=st.integers(min_value=1, max_value=5),
)


@settings(max_examples=150, deadline=None)
@given(select_statements)
def test_select_round_trip(statement: ast.Select):
    """parse(format(ast)) == ast and formatting is idempotent for SELECTs."""
    formatted = format_statement(statement)
    reparsed = parse_statement(formatted)
    # Aliases that the generator left as None may legitimately differ in how
    # bare columns pick up implicit aliases, so compare the formatted text,
    # which is the canonical form.
    assert format_statement(reparsed) == formatted


@settings(max_examples=150, deadline=None)
@given(entangled_statements)
def test_entangled_round_trip(statement: ast.EntangledSelect):
    formatted = format_statement(statement)
    reparsed = parse_statement(formatted)
    assert isinstance(reparsed, ast.EntangledSelect)
    assert format_statement(reparsed) == formatted
    assert reparsed.choose == statement.choose
    assert len(reparsed.heads) == len(statement.heads)


@settings(max_examples=100, deadline=None)
@given(st.lists(literals, min_size=1, max_size=5))
def test_insert_round_trip(values):
    statement = ast.Insert(table="t", columns=(), rows=(tuple(values),))
    formatted = format_statement(statement)
    reparsed = parse_statement(formatted)
    assert format_statement(reparsed) == formatted
