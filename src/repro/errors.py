"""Shared exception hierarchy for the Youtopia reproduction.

Every subsystem raises exceptions derived from :class:`YoutopiaError` so that
applications built on top of the system (the travel app, the CLI, the admin
interface) can catch a single base class at their outer boundary while still
being able to distinguish failure categories.
"""

from __future__ import annotations


class YoutopiaError(Exception):
    """Base class of every error raised by this package."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------


class StorageError(YoutopiaError):
    """Base class for errors raised by :mod:`repro.storage`."""


class SchemaError(StorageError):
    """A schema definition is invalid (duplicate columns, bad types, ...)."""


class UnknownTableError(StorageError):
    """A statement referenced a table that does not exist in the catalog."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown table: {name!r}")
        self.table_name = name


class DuplicateTableError(StorageError):
    """CREATE TABLE for a name that already exists."""

    def __init__(self, name: str) -> None:
        super().__init__(f"table already exists: {name!r}")
        self.table_name = name


class UnknownColumnError(StorageError):
    """A statement referenced a column not present in the table schema."""

    def __init__(self, column: str, table: str | None = None) -> None:
        where = f" in table {table!r}" if table else ""
        super().__init__(f"unknown column: {column!r}{where}")
        self.column = column
        self.table = table


class TypeMismatchError(StorageError):
    """A value does not conform to the declared column type."""


class ConstraintViolationError(StorageError):
    """A primary-key / not-null / uniqueness constraint was violated."""


class TransactionError(StorageError):
    """Invalid transaction usage (commit without begin, nested begin, ...)."""


# ---------------------------------------------------------------------------
# SQL front end
# ---------------------------------------------------------------------------


class ParseError(YoutopiaError):
    """The SQL text could not be tokenized or parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token in the input text, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" (line {line}, column {column})" if column is not None else f" (line {line})"
        super().__init__(message + location)
        self.line = line
        self.column = column


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------


class PlanError(YoutopiaError):
    """The planner could not translate an AST into an executable plan."""


class EvaluationError(YoutopiaError):
    """A runtime error occurred while evaluating an expression or plan."""


# ---------------------------------------------------------------------------
# Entangled-query core
# ---------------------------------------------------------------------------


class EntanglementError(YoutopiaError):
    """Base class for errors specific to entangled-query processing."""


class CompilationError(EntanglementError):
    """An entangled SQL statement could not be compiled to the internal IR."""


class SafetyError(EntanglementError):
    """The entangled query violates the safety conditions.

    A query is *safe* when every variable appearing in its head or in an
    answer constraint is range-restricted by a database atom or bound to a
    constant; unsafe queries are rejected at registration time.
    """


class UniquenessError(EntanglementError):
    """The entangled query violates the uniqueness (origin) condition.

    The polynomial matching algorithm relies on every answer-constraint atom
    having an unambiguous *origin*; queries that cannot be analysed this way
    are either rejected or routed to the exhaustive evaluator depending on the
    system's configuration.
    """


class QueryNotPendingError(EntanglementError):
    """An operation referenced a query id that is not (or no longer) pending."""

    def __init__(self, query_id: str) -> None:
        super().__init__(f"no pending entangled query with id {query_id!r}")
        self.query_id = query_id


class QueryAlreadyAnsweredError(QueryNotPendingError):
    """A pending-only operation (e.g. ``cancel``) hit an already-matched query.

    Subclasses :class:`QueryNotPendingError` so existing handlers that treat
    "the query is gone from the pool" generically keep working, while callers
    that care can distinguish "matched and answered" from "never registered /
    already cancelled".
    """

    def __init__(self, query_id: str) -> None:
        # Skip QueryNotPendingError.__init__ to carry the precise message.
        EntanglementError.__init__(
            self,
            f"entangled query {query_id!r} was already matched and answered; "
            f"its group's effects are durable and cannot be cancelled",
        )
        self.query_id = query_id


class CoordinationTimeoutError(EntanglementError):
    """A blocking wait for coordination did not complete within the deadline."""

    def __init__(self, query_id: str, timeout: float) -> None:
        super().__init__(
            f"entangled query {query_id!r} was not coordinated within {timeout:.3f}s"
        )
        self.query_id = query_id
        self.timeout = timeout


class ExecutionError(EntanglementError):
    """Joint execution of a matched query group failed and was rolled back."""


class ScriptError(YoutopiaError):
    """A statement inside a multi-statement script failed.

    Wraps the underlying error (available as ``__cause__`` and ``cause``) and
    records *which* statement failed, so a mid-script failure surfaces with
    positional context instead of a bare engine error.

    Attributes
    ----------
    statement_index:
        0-based index of the failing statement within the script.
    statement_sql:
        The SQL text of the failing statement.
    cause:
        The original :class:`YoutopiaError`.
    """

    def __init__(self, statement_index: int, statement_sql: str, cause: Exception) -> None:
        super().__init__(
            f"statement #{statement_index + 1} of script failed: {cause} "
            f"[statement: {statement_sql}]"
        )
        self.statement_index = statement_index
        self.statement_sql = statement_sql
        self.cause = cause


# ---------------------------------------------------------------------------
# Remote transport
# ---------------------------------------------------------------------------


class ServiceUnavailableError(YoutopiaError):
    """The remote coordination service cannot be reached (or went away).

    Raised by :class:`~repro.service.remote.RemoteService` when the TCP
    connection to the :class:`~repro.service.remote.CoordinationServer` cannot
    be established, is closed by the server, or dies mid-call.  Every RPC in
    flight and every non-terminal handle fails fast with this error — clients
    never hang on a dead connection.

    Attributes
    ----------
    reason:
        A short description of why the service is unavailable.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(f"coordination service unavailable: {reason}")
        self.reason = reason


class ProtocolError(YoutopiaError):
    """A wire-protocol violation between a remote client and the server.

    Raised for malformed frames (bad length prefix, invalid JSON, missing
    envelope fields), protocol-version mismatches, oversized frames, and
    requests for operations the peer does not support.  Unlike
    :class:`ServiceUnavailableError` this signals a *bug or incompatibility*,
    not a liveness problem.
    """


# ---------------------------------------------------------------------------
# Applications
# ---------------------------------------------------------------------------


class ApplicationError(YoutopiaError):
    """Base class for errors raised by the demo applications."""


class UnknownUserError(ApplicationError):
    """The travel application was asked about a user that does not exist."""

    def __init__(self, username: str) -> None:
        super().__init__(f"unknown user: {username!r}")
        self.username = username


class BookingError(ApplicationError):
    """A booking request could not be constructed or submitted."""
