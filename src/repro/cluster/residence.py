"""Router-side query registry and the cross-node residence rule.

The in-process sharded coordinator sends cross-shard queries to a *global
residence* so entangled partners always share one matching universe.  The
cluster needs the same invariant at node granularity: two queries that can
coordinate with each other must live on the same node, because nodes never
gossip pending pools.

The rule the router enforces, mirroring ``ShardedCoordinator``:

* a query whose signature maps to a single node goes to that **home node**;
* a query whose signature spans nodes goes to the **residence node** (node 0),
  and every relation it names becomes **hot**;
* any later (or still-pending earlier) query touching a hot relation is also
  placed on the residence node — earlier ones are *relocated* there (cancel on
  the home node, resubmit on residence) so the partners can meet.

All registry state is mutated only on the router's event loop, so the class
needs no locking of its own.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

#: RoutedQuery lifecycle: submitting → pending → (relocating → pending)* → done
SUBMITTING = "submitting"
PENDING = "pending"
RELOCATING = "relocating"
DONE = "done"


@dataclass
class RoutedQuery:
    """One query the router has accepted, wherever it currently lives."""

    query_id: str
    sql: str
    owner: str
    signature: frozenset[str]
    node: int
    status: str = SUBMITTING
    #: resolves once the owning node has acked the (re)submission
    submitted: asyncio.Future = field(default_factory=asyncio.Future)
    #: resolves with the terminal wire-state dict (answered/cancelled/rejected)
    done_future: asyncio.Future = field(default_factory=asyncio.Future)
    final_state: Optional[dict[str, Any]] = None
    registered_at: float = 0.0
    #: set while the query is pinned to residence by the hot-relation rule
    resident: bool = False

    @property
    def terminal(self) -> bool:
        return self.status == DONE


class QueryRegistry:
    """Every live and terminal query the router knows, plus the hot set.

    ``hot_relations`` is the union of the signatures of all *non-terminal*
    queries currently placed on the residence node by the cross-node rule
    (``resident=True``).  It is recomputed from scratch on every change —
    registries hold at most the live working set, and correctness beats a
    clever incremental count here.
    """

    def __init__(self) -> None:
        self._entries: dict[str, RoutedQuery] = {}
        self.hot_relations: frozenset[str] = frozenset()

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, query_id: str) -> Optional[RoutedQuery]:
        return self._entries.get(query_id)

    def entries(self) -> list[RoutedQuery]:
        return list(self._entries.values())

    def live_entries(self) -> list[RoutedQuery]:
        return [entry for entry in self._entries.values() if not entry.terminal]

    def add(self, entry: RoutedQuery) -> None:
        if entry.query_id in self._entries:
            raise ValueError(f"query {entry.query_id!r} already registered")
        self._entries[entry.query_id] = entry
        if entry.resident:
            self._recompute_hot()

    def settle(self, query_id: str, state: dict[str, Any]) -> Optional[RoutedQuery]:
        """Record a terminal wire state; returns the entry if it transitioned."""
        entry = self._entries.get(query_id)
        if entry is None or entry.terminal:
            return None
        entry.status = DONE
        entry.final_state = state
        if not entry.done_future.done():
            entry.done_future.set_result(state)
        if entry.resident:
            self._recompute_hot()
        return entry

    def mark_resident(self, entry: RoutedQuery) -> None:
        if not entry.resident:
            entry.resident = True
            self._recompute_hot()

    def relocation_victims(self, hot: Iterable[str], residence_node: int) -> list[RoutedQuery]:
        """Live queries stranded off the residence node that touch hot relations."""
        hot_set = set(hot)
        return [
            entry
            for entry in self._entries.values()
            if not entry.terminal
            and entry.node != residence_node
            and entry.signature & hot_set
        ]

    def pending_on_node(self, node: int) -> list[RoutedQuery]:
        return [
            entry
            for entry in self._entries.values()
            if not entry.terminal and entry.node == node
        ]

    def counts_by_node(self, node_count: int) -> list[int]:
        counts = [0] * node_count
        for entry in self._entries.values():
            if not entry.terminal and 0 <= entry.node < node_count:
                counts[entry.node] += 1
        return counts

    def _recompute_hot(self) -> None:
        hot: set[str] = set()
        for entry in self._entries.values():
            if entry.resident and not entry.terminal:
                hot |= entry.signature
        self.hot_relations = frozenset(hot)
