"""Router-side query registry and the cross-node residence rule.

The in-process sharded coordinator sends cross-shard queries to a *global
residence* so entangled partners always share one matching universe.  The
cluster needs the same invariant at node granularity: two queries that can
coordinate with each other must live on the same node, because nodes never
gossip pending pools.

The rule the router enforces, mirroring ``ShardedCoordinator``:

* a query whose signature maps to a single node goes to that **home node**;
* a query whose signature spans nodes goes to the **residence node of its
  signature** (:meth:`~repro.cluster.placement.PlacementMap.residence_node_for`,
  a CRC32 hash of the sorted signature — so residence load spreads over all
  members), and every relation it names becomes **hot at that node**;
* any later (or still-pending earlier) query touching a hot relation is also
  placed on the relation's hot node — earlier ones are *relocated* there
  (cancel on the home node, resubmit at residence) so the partners can meet.

Because residence is per-signature, hot relations form **groups**: resident
queries whose signatures overlap must share one node.  The registry keeps a
union-find over the live residents' signatures; each group's node is where
the *majority* of its members currently live (ties to the lowest index), so
a merge of two groups relocates the minority side and nothing else, and the
choice is stable as relocation proceeds.  On a router restart the groups are
rebuilt from where residents are actually found, not from the hash — reality
on the nodes, not the arithmetic, is authoritative after recovery.

All registry state is mutated only on the router's event loop, so the class
needs no locking of its own.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Optional

#: RoutedQuery lifecycle: submitting → pending → (relocating → pending)* → done
SUBMITTING = "submitting"
PENDING = "pending"
RELOCATING = "relocating"
DONE = "done"


@dataclass
class RoutedQuery:
    """One query the router has accepted, wherever it currently lives."""

    query_id: str
    sql: str
    owner: str
    signature: frozenset[str]
    node: int
    status: str = SUBMITTING
    #: resolves once the owning node has acked the (re)submission
    submitted: asyncio.Future = field(default_factory=asyncio.Future)
    #: resolves with the terminal wire-state dict (answered/cancelled/rejected)
    done_future: asyncio.Future = field(default_factory=asyncio.Future)
    final_state: Optional[dict[str, Any]] = None
    registered_at: float = 0.0
    #: set while the query is pinned to residence by the hot-relation rule
    resident: bool = False
    #: optional per-query weight for the ``priority`` match policy; preserved
    #: across relocations (cancel + resubmit re-sends it on the wire)
    priority: Optional[float] = None
    #: the node a relocation is resubmitting to, while the RPC is in flight
    #: (``node`` keeps the old route until the resubmit succeeds, so a failed
    #: relocation never strands wait/cancel on a node that never saw the
    #: query; pushes from either side of the move are accepted meanwhile)
    relocating_to: Optional[int] = None

    @property
    def terminal(self) -> bool:
        return self.status == DONE


class QueryRegistry:
    """Every live and terminal query the router knows, plus the hot map.

    ``hot_nodes`` maps each hot relation to the node its residence group
    lives on: the union of the signatures of all *non-terminal* queries
    pinned to residence by the cross-node rule (``resident=True``), grouped
    by signature overlap.  It is recomputed from scratch on every change —
    registries hold at most the live working set, and correctness beats a
    clever incremental count here.
    """

    def __init__(self) -> None:
        self._entries: dict[str, RoutedQuery] = {}
        self.hot_nodes: dict[str, int] = {}

    @property
    def hot_relations(self) -> frozenset[str]:
        return frozenset(self.hot_nodes)

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, query_id: str) -> Optional[RoutedQuery]:
        return self._entries.get(query_id)

    def entries(self) -> list[RoutedQuery]:
        return list(self._entries.values())

    def live_entries(self) -> list[RoutedQuery]:
        return [entry for entry in self._entries.values() if not entry.terminal]

    def add(self, entry: RoutedQuery) -> None:
        if entry.query_id in self._entries:
            raise ValueError(f"query {entry.query_id!r} already registered")
        self._entries[entry.query_id] = entry
        if entry.resident:
            self._recompute_hot()

    def settle(self, query_id: str, state: dict[str, Any]) -> Optional[RoutedQuery]:
        """Record a terminal wire state; returns the entry if it transitioned."""
        entry = self._entries.get(query_id)
        if entry is None or entry.terminal:
            return None
        entry.status = DONE
        entry.final_state = state
        if not entry.done_future.done():
            entry.done_future.set_result(state)
        if entry.resident:
            self._recompute_hot()
        return entry

    def mark_resident(self, entry: RoutedQuery) -> None:
        if not entry.resident:
            entry.resident = True
            self._recompute_hot()

    def hot_target(self, signature: frozenset[str]) -> Optional[int]:
        """The node a signature must co-locate on, or ``None`` if nothing is hot.

        When a signature touches relations of more than one hot group (the
        query that will merge them), the pick is deterministic: the node of
        the lexicographically smallest hot relation.  The relocation pass
        then drags the other group over once this query is resident.
        """
        hits = sorted(relation for relation in signature if relation in self.hot_nodes)
        if not hits:
            return None
        return self.hot_nodes[hits[0]]

    def relocation_plan(self) -> list[tuple[RoutedQuery, int]]:
        """``(victim, target node)`` for every live query stranded off its hot node."""
        plan: list[tuple[RoutedQuery, int]] = []
        for entry in self._entries.values():
            if entry.terminal:
                continue
            target = self.hot_target(entry.signature)
            if target is not None and entry.node != target:
                plan.append((entry, target))
        return plan

    def pending_on_node(self, node: int) -> list[RoutedQuery]:
        return [
            entry
            for entry in self._entries.values()
            if not entry.terminal and entry.node == node
        ]

    def counts_by_node(self, node_count: int) -> list[int]:
        counts = [0] * node_count
        for entry in self._entries.values():
            if not entry.terminal and 0 <= entry.node < node_count:
                counts[entry.node] += 1
        return counts

    def _resident_groups(self) -> list[tuple[set[str], list[RoutedQuery]]]:
        """Union-find the live residents into overlap groups of (relations, members)."""
        residents = [
            entry
            for entry in self._entries.values()
            if entry.resident and not entry.terminal and entry.signature
        ]
        if not residents:
            return []
        parent: dict[str, str] = {}

        def find(relation: str) -> str:
            root = relation
            while parent[root] != root:
                root = parent[root]
            while parent[relation] != root:
                parent[relation], relation = root, parent[relation]
            return root

        for entry in residents:
            relations = sorted(entry.signature)
            for relation in relations:
                parent.setdefault(relation, relation)
            first = find(relations[0])
            for relation in relations[1:]:
                parent[find(relation)] = first
        relations_of: dict[str, set[str]] = {}
        for relation in parent:
            relations_of.setdefault(find(relation), set()).add(relation)
        members_of: dict[str, list[RoutedQuery]] = {}
        for entry in residents:
            members_of.setdefault(find(next(iter(entry.signature))), []).append(entry)
        return [(relations_of[root], members_of[root]) for root in relations_of]

    def _recompute_hot(self) -> None:
        """Rebuild ``hot_nodes`` from the live residents (union-find by overlap).

        Each group of overlapping resident signatures maps to one node.  The
        assignment is **sticky**: a group keeps the node a relation of its
        was already hot at (the lexicographically smallest such relation
        decides a merge of two groups deterministically).  A brand-new group
        gets the node where most of its members currently live (ties to the
        lowest index) — for a freshly routed cross-node signature that is the
        per-signature hashed residence; after a router restart it is wherever
        the residents were actually found.
        """
        new_hot: dict[str, int] = {}
        for relations, members in self._resident_groups():
            assigned = [
                self.hot_nodes[relation]
                for relation in sorted(relations)
                if relation in self.hot_nodes
            ]
            if assigned:
                node = assigned[0]
            else:
                counts: dict[int, int] = {}
                for entry in members:
                    counts[entry.node] = counts.get(entry.node, 0) + 1
                node = min(counts, key=lambda candidate: (-counts[candidate], candidate))
            for relation in relations:
                new_hot[relation] = node
        self.hot_nodes = new_hot

    def reset_residents(self, is_cross_node: Any) -> None:
        """Recompute every live entry's residence pin from first principles.

        ``is_cross_node(signature) -> bool`` decides which signatures are
        inherently cross-node under the *current* placement; residency then
        closes transitively over signature overlap (a single-node query
        entangled with a cross-node one must live with it).  Used by the
        reshard sweep, where a placement change can strand or free pins the
        incremental rule would never revisit.
        """
        live = [entry for entry in self._entries.values() if not entry.terminal]
        hot: set[str] = set()
        for entry in live:
            entry.resident = bool(entry.signature) and bool(is_cross_node(entry.signature))
            if entry.resident:
                hot |= entry.signature
        changed = True
        while changed:
            changed = False
            for entry in live:
                if not entry.resident and entry.signature & hot:
                    entry.resident = True
                    hot |= entry.signature
                    changed = True
        self.hot_nodes = {}
        self._recompute_hot()

    def rehash_hot(self, residence_node_for: Any) -> None:
        """Re-place every hot group at ``residence_node_for(group signature)``.

        The sticky rule then keeps these assignments while the relocation
        sweep drags members over — the reshard path's way of spreading
        residence groups over a changed node set.
        """
        new_hot: dict[str, int] = {}
        for relations, _members in self._resident_groups():
            node = residence_node_for(frozenset(relations))
            for relation in relations:
                new_hot[relation] = node
        self.hot_nodes = new_hot
