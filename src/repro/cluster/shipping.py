"""WAL shipping: the log-stream subscription a standby holds on its primary.

The primary side lives in the threaded server's ``wal_subscribe`` op: under
the coordinator's checkpoint locks it captures a state snapshot, registers a
subscriber on the :class:`~repro.core.durability.WriteAheadLog`, and returns
the snapshot.  From then on every ``append`` ships the record to the
subscriber *before* ``append`` returns — so any write the primary has acked
is already in the kernel socket buffer bound for the standby, which is what
makes SIGKILL failover lossless for acked queries.

This module is the **wire side** of that contract: :class:`WalStream` owns
the raw socket, sends the subscription request, and demultiplexes the reply
stream.  One subtlety it exists to hide: the snapshot *response* is written
by the server's request thread, but WAL *pushes* are written by whatever
thread appends to the log — a push for a record appended between snapshot
capture and response write can arrive **before** the response.  The stream
buffers early pushes and replays them to the caller after the snapshot, in
order; the standby's LSN guard discards any the snapshot already covers.
"""

from __future__ import annotations

import socket
from typing import Any, Iterator, Optional

from repro.errors import ProtocolError
from repro.service.remote import codec


class WalStream:
    """A subscription to a primary's write-ahead log over the wire codec."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 10.0) -> None:
        self.host = host
        self.port = port
        self._timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._early_pushes: list[dict[str, Any]] = []
        self.snapshot: Optional[dict[str, Any]] = None

    def subscribe(self) -> dict[str, Any]:
        """Connect, subscribe, and return the primary's state snapshot.

        A failed subscription closes the socket it opened — the caller holds
        no reference to retry on, so leaving it dangling would leak the fd
        (and a primary-side connection slot) on every bootstrap attempt.
        """
        sock = socket.create_connection((self.host, self.port), timeout=self._timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            sock.sendall(codec.encode_frame(codec.request_frame(1, "wal_subscribe", {})))
            # The response races with pushes for records appended after the
            # snapshot was captured; park those until the snapshot is delivered.
            while True:
                frame = codec.read_frame(sock)
                if frame is None:
                    raise ProtocolError(
                        "primary closed the connection before acking wal_subscribe"
                    )
                if frame.get("push") == "wal":
                    self._early_pushes.append(frame["data"])
                    continue
                if frame.get("id") == 1:
                    if not frame.get("ok", False):
                        raise codec.decode_error(frame.get("error") or {})
                    result = frame.get("result") or {}
                    self.snapshot = dict(result.get("state") or {})
                    return self.snapshot
                raise ProtocolError(f"unexpected frame while subscribing: {frame!r}")
        except BaseException:
            self._sock = None
            try:
                sock.close()
            except OSError:
                pass
            raise

    def records(self) -> Iterator[dict[str, Any]]:
        """Yield WAL records in shipping order until the stream ends.

        Ends cleanly (``StopIteration``) when the primary closes the socket —
        including when it is SIGKILLed: the kernel delivers everything the
        primary managed to ``sendall`` before the reset surfaces.
        """
        if self._sock is None:
            raise ProtocolError("wal stream is not subscribed")
        while self._early_pushes:
            yield self._early_pushes.pop(0)
        sock = self._sock
        sock.settimeout(None)
        while True:
            try:
                frame = codec.read_frame(sock)
            except (OSError, ProtocolError):
                # Connection reset / truncated frame: the primary died.  Every
                # complete frame before the break was already yielded.
                return
            if frame is None:
                return
            if frame.get("push") == "wal":
                yield frame["data"]
            # Other pushes (done notifications) are irrelevant to replication.

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "WalStream":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
