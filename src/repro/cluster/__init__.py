"""Multi-node coordination: placement, the shard-routing gateway, standbys.

The paper's coordination component is a single process; the ROADMAP's north
star is "heavy traffic from millions of users".  This package promotes the
relation-signature shards of :mod:`repro.core.sharding` into a **cluster**:

* :mod:`repro.cluster.placement` — a static placement map assigning
  relation-signature shards to member nodes (signature→node routing agrees
  with signature→shard routing by construction);
* :mod:`repro.cluster.router` — an asyncio gateway speaking the unchanged
  wire codec: it fans ``submit_many`` batches out by shard, merges stats and
  answers, forwards ``done`` pushes, and runs the **cross-node residence
  pass** (queries whose relations span nodes are co-located on the residence
  node, mirroring the in-process global residence);
* :mod:`repro.cluster.shipping` / :mod:`repro.cluster.standby` — **WAL
  shipping**: a primary streams its write-ahead log to a standby that replays
  records LSN-idempotently and can be promoted on failure.

Any existing client (:class:`~repro.service.remote.RemoteService`,
:class:`~repro.service.aio.AsyncRemoteService`) connects to the router as if
it were one big coordination server.
"""

from repro.cluster.placement import NodeSpec, PlacementMap, extract_signature
from repro.cluster.residence import QueryRegistry, RoutedQuery
from repro.cluster.router import BackgroundClusterRouter, ClusterRouter
from repro.cluster.shipping import WalStream
from repro.cluster.standby import StandbyFollower, StandbyServer

__all__ = [
    "BackgroundClusterRouter",
    "ClusterRouter",
    "NodeSpec",
    "PlacementMap",
    "QueryRegistry",
    "RoutedQuery",
    "StandbyFollower",
    "StandbyServer",
    "WalStream",
    "extract_signature",
]
