"""The shard-routing gateway: one wire endpoint in front of N member nodes.

:class:`ClusterRouter` is an :class:`~repro.service.aio.server.AsyncServerBase`
speaking the unchanged :mod:`repro.service.remote.codec` protocol — any
existing client (threaded or asyncio) connects to it exactly as it would to a
single coordination server.  Behind the listener it holds one multiplexed
:class:`~repro.service.aio.client.AsyncRemoteService` connection per member
node and:

* **routes** each submission by its relation signature through the
  :class:`~repro.cluster.placement.PlacementMap` — a ``submit_many`` batch is
  fanned out as **one** ``submit_many`` frame per target node, so the
  per-batch framing/locking economics survive the extra hop;
* runs the **cross-node residence pass**: a query whose signature spans
  nodes is co-located on the *residence node of its signature* (a CRC32 hash
  over the sorted signature, so residence load spreads over all members) and
  its relations become *hot* there; pending queries stranded on home nodes
  that touch a hot relation are relocated (cancel there, resubmit at the hot
  node, same query id) so entangled partners always share one matching
  universe — the cluster analogue of the sharded coordinator's global
  residence;
* **forwards pushes**: nodes push ``done`` states to the router's node
  connection; the router settles its registry entry and re-pushes to every
  client connection watching that query — client handles stay push-driven
  end to end;
* **merges** introspection: stats counters are summed, shard tables are
  concatenated (tagged with their node), answers are gathered, and a
  ``cluster`` block reports placement, routing counters and standby
  replication lag;
* **fails over**: when a node connection dies and the placement map names a
  standby for it, the router connects to the standby, promotes it, and
  re-binds the node index to the promoted server; pending queries on the
  failed node are re-watched there.

The router never compiles SQL for routing (signatures come from
:func:`~repro.cluster.placement.extract_signature`'s keyword scan) and never
holds answers: all coordination state lives on the nodes; the registry holds
only routing facts and terminal snapshots.

Because the registry is *soft* state, the router is restartable: on start it
fans ``requests`` out to every member node, rebuilds the registry from what
the nodes report (owning node, terminal snapshots, hot relations recomputed
from where cross-node residents actually live) and advances the ``r{n}`` id
counter past the maximum id observed anywhere — so after a crash every
previously acked query is waitable/cancelable again and new ids never
collide with pre-crash ones.  The same rebuild underpins ``--reshard``: a
router started over a *changed* node list first recovers, then sweeps every
live query to its placement under the new map.
"""

from __future__ import annotations

import asyncio
import itertools
import re
import time
from typing import Any, Optional, Sequence

from repro.errors import (
    EntanglementError,
    CoordinationTimeoutError,
    ProtocolError,
    QueryAlreadyAnsweredError,
    QueryNotPendingError,
    ScriptError,
    ServiceUnavailableError,
    YoutopiaError,
)
from repro.service.aio.client import AsyncRemoteService
from repro.service.aio.server import (
    DEFAULT_MAX_IN_FLIGHT,
    AsyncServerBase,
    BackgroundAsyncServer,
    _AsyncConnection,
)
from repro.service.remote import codec
from repro.sqlparser import ast, parse_script, parse_statement
from repro.sqlparser.pretty import format_statement

from repro.cluster.placement import PlacementMap, extract_signature
from repro.cluster.residence import (
    PENDING,
    RELOCATING,
    SUBMITTING,
    QueryRegistry,
    RoutedQuery,
)


class _NodeClient(AsyncRemoteService):
    """The router's connection to one member node.

    Differs from a plain client in what it does with frames: ``done`` pushes
    are handed to the router's registry instead of a local handle table, and
    a connection failure triggers the router's node-loss path (failover to
    the node's standby) instead of failing local handles.
    """

    node_index: int = -1
    router: Optional["ClusterRouter"] = None

    def _on_push(self, frame: dict[str, Any]) -> None:
        if frame.get("push") != "done":
            return
        router = self.router
        if router is not None:
            router._on_node_push(self.node_index, dict(frame.get("data") or {}))

    def _fail(self, exc: Exception) -> None:
        first_failure = self._failure is None and not self._closing
        super()._fail(exc)
        router = self.router
        if router is not None and first_failure:
            router._schedule_node_loss(self.node_index)


#: router-assigned query ids, scanned during the restart rebuild
_ROUTER_ID = re.compile(r"^r(\d+)$")

#: rebuild merge priority when one query id shows up on several nodes — a
#: pre-crash relocation leaves a ``cancelled`` ghost on the home node next to
#: the live copy at residence, so the live state must win, and any real
#: outcome beats the relocation ghost
_REBUILD_PRIORITY = {"pending": 0, "answered": 1, "rejected": 2, "cancelled": 3}


def _rejected_state(
    query_id: str, owner: Optional[str], sql: Optional[str], error: str
) -> dict[str, Any]:
    """A terminal wire state the router synthesizes without any node's help."""
    return {
        "query_id": query_id,
        "owner": owner,
        "status": "rejected",
        "error": error,
        "group": [],
        "registered_at": time.time(),
        "answered_at": None,
        "sql": sql,
        "description": "",
        "answer": None,
    }


class ClusterRouter(AsyncServerBase):
    """An asyncio gateway that serves the coordination wire protocol by
    fanning requests out across a :class:`~repro.cluster.placement.PlacementMap`."""

    def __init__(
        self,
        placement: PlacementMap,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        connect_timeout: float = 10.0,
        reshard: bool = False,
    ) -> None:
        super().__init__(host=host, port=port, max_in_flight=max_in_flight)
        self.placement = placement
        self.registry = QueryRegistry()
        self._connect_timeout = connect_timeout
        #: when set, the post-rebuild sweep relocates every live query to its
        #: placement under (a possibly changed) ``placement`` before serving
        self._reshard = reshard
        self._clients: list[Optional[_NodeClient]] = [None] * placement.node_count
        self._standby_stat_clients: dict[int, AsyncRemoteService] = {}
        #: router-assigned query ids (``r1``, ``r2``…) — the router is the id
        #: authority, so two nodes can never hand out the same ``q<n>`` id
        self._router_ids = itertools.count(1)
        self._relocation_lock: Optional[asyncio.Lock] = None
        self._broadcast_lock: Optional[asyncio.Lock] = None
        #: client connections awaiting a ``done`` push, per query id
        self._watchers: dict[str, set[_AsyncConnection]] = {}
        # routing counters (merged into the cluster stats block)
        self.routed_submits = 0
        self.cross_node_submits = 0
        self.relocations = 0
        self.duplicate_rejections = 0
        self.failovers = 0
        self.router_timeouts = 0
        self.recovered_queries = 0
        self.resharded_relocations = 0
        #: nodes that could not be introspected during a fan-out that was
        #: served anyway from the reachable members (stats/answers/rebuild)
        self.introspection_gaps = 0

    # -- lifecycle ---------------------------------------------------------------------------

    async def _open_resources(self) -> None:
        self._relocation_lock = asyncio.Lock()
        self._broadcast_lock = asyncio.Lock()
        for spec in self.placement.nodes:
            client = await _NodeClient.connect(
                spec.host, spec.port, connect_timeout=self._connect_timeout
            )
            client.node_index = spec.index
            client.router = self
            self._clients[spec.index] = client
        # Recover the soft routing state from the nodes before the listener
        # accepts anyone: on a fresh cluster this is one cheap empty fan-out,
        # after a router crash it is the whole point.
        await self._rebuild_registry()
        if self._reshard:
            await self._reshard_sweep()
        if self.registry.hot_nodes:
            await self._relocation_pass()

    async def _rebuild_registry(self) -> None:
        """Reconstruct the registry by introspecting every member node.

        ``requests`` on a node returns every query it knows — pending and
        terminal, with answers — *and* subscribes this connection to ``done``
        pushes for the pending ones, so recovered entries settle the same way
        freshly routed ones do.  When one query id shows up on several nodes
        (a pre-crash relocation leaves a ``cancelled`` ghost on the home
        node), :data:`_REBUILD_PRIORITY` picks the live copy.  Hot relations
        are rebuilt from where cross-node residents are *actually found* —
        after recovery, reality on the nodes beats the placement arithmetic —
        and the ``r{n}`` counter advances past the maximum id observed
        anywhere, so post-restart ids never collide.
        """

        async def requests_of(node: int) -> list[dict[str, Any]]:
            try:
                return await self._client(node)._call("requests")
            except Exception:  # noqa: BLE001 - rebuild from the reachable members
                self.introspection_gaps += 1
                return []

        per_node = await asyncio.gather(
            *(requests_of(node) for node in range(self.placement.node_count))
        )
        best: dict[str, tuple[int, int, dict[str, Any]]] = {}
        highest = 0
        for node, states in enumerate(per_node):
            for state in states:
                query_id = str(state.get("query_id"))
                match = _ROUTER_ID.match(query_id)
                if match:
                    highest = max(highest, int(match.group(1)))
                rank = _REBUILD_PRIORITY.get(str(state.get("status")), 4)
                incumbent = best.get(query_id)
                if incumbent is None or rank < incumbent[0]:
                    best[query_id] = (rank, node, state)
        for query_id, (_rank, node, state) in sorted(best.items()):
            if query_id in self.registry:
                continue
            sql = state.get("sql") or ""
            signature = extract_signature(sql) if sql else frozenset()
            home = self.placement.node_for_signature(signature)
            priority = state.get("priority")
            entry = RoutedQuery(
                query_id=query_id,
                sql=sql,
                owner=state.get("owner"),
                signature=signature,
                node=node,
                status=PENDING,
                registered_at=float(state.get("registered_at") or 0.0),
                priority=None if priority is None else float(priority),
            )
            entry.submitted.set_result(None)
            live = str(state.get("status")) == "pending"
            # A live query found off its single home node was pinned there by
            # the pre-crash residence pass; marking it resident re-heats its
            # relations at that node, so future partners co-locate with it.
            entry.resident = live and bool(signature) and (home is None or home != node)
            self.registry.add(entry)
            if not live:
                self.registry.settle(query_id, state)
            self.recovered_queries += 1
        if highest:
            self._router_ids = itertools.count(highest + 1)

    async def _reshard_sweep(self) -> None:
        """Relocate every live query to its placement under the current map.

        Run once after the rebuild when the router was started with
        ``reshard=True`` over a changed node list (the
        :meth:`~repro.cluster.placement.PlacementMap.split` invariant keeps
        ``shard_count`` fixed, so only the shard→node projection moved).
        Residence pins are recomputed from first principles, hot groups are
        re-hashed over the new member set, and each stranded query is moved
        — single-home queries back to their home node, residence groups to
        their re-hashed node.
        """
        assert self._relocation_lock is not None
        async with self._relocation_lock:
            self.registry.reset_residents(
                lambda signature: self.placement.node_for_signature(signature) is None
            )
            self.registry.rehash_hot(self.placement.residence_node_for)
            for entry in self.registry.live_entries():
                if entry.terminal:
                    continue
                home = self.placement.node_for_signature(entry.signature)
                target = self.registry.hot_target(entry.signature)
                make_resident = target is not None
                if target is None:
                    target = (
                        home
                        if home is not None
                        else self.placement.residence_node_for(entry.signature)
                    )
                if entry.node != target:
                    await self._relocate(entry, target, make_resident=make_resident)
                    self.resharded_relocations += 1

    async def _close_resources(self) -> None:
        clients = [c for c in self._clients if c is not None]
        clients.extend(self._standby_stat_clients.values())
        self._clients = [None] * self.placement.node_count
        self._standby_stat_clients.clear()
        for client in clients:
            client.router = None  # type: ignore[attr-defined]
            await client.close()

    def _client(self, node: int) -> _NodeClient:
        client = self._clients[node]
        if client is None or client._failure is not None:
            spec = self.placement.nodes[node]
            raise ServiceUnavailableError(
                f"cluster node {node} ({spec.address}) is unavailable"
            )
        return client

    # -- push forwarding ---------------------------------------------------------------------

    def _on_node_push(self, node_index: int, state: dict[str, Any]) -> None:
        """A node reported a terminal state; settle and re-push (loop thread)."""
        query_id = str(state.get("query_id"))
        entry = self.registry.get(query_id)
        if entry is None or entry.terminal:
            return
        if entry.node != node_index and entry.relocating_to != node_index:
            return  # stale push from a node the query was relocated away from
        if entry.status == RELOCATING and state.get("status") == "cancelled":
            return  # the router's own relocation cancel, not a client outcome
        self._settle_entry(entry, state)

    def _settle_entry(self, entry: RoutedQuery, state: dict[str, Any]) -> None:
        settled = self.registry.settle(entry.query_id, state)
        if settled is None:
            return
        watchers = self._watchers.pop(entry.query_id, None)
        if watchers:
            payload = codec.push_frame("done", state)
            for connection in watchers:
                connection.send(payload)

    def _state_and_watch(
        self, connection: _AsyncConnection, entry: RoutedQuery, state: dict[str, Any]
    ) -> dict[str, Any]:
        """Return a state snapshot, arranging a client push if it is pending.

        If the entry settled while other node responses were still in flight
        the terminal state wins — the client gets it in the response and
        never waits for a push that already happened.
        """
        if entry.final_state is not None:
            return entry.final_state
        if state.get("status") == "pending" and connection.claim_watch(entry.query_id):
            self._watchers.setdefault(entry.query_id, set()).add(connection)
        return state

    # -- submission routing ------------------------------------------------------------------

    @staticmethod
    def _validate_item(item: Any) -> tuple[str, Optional[str], Optional[str], Optional[float]]:
        if not isinstance(item, dict):
            raise ProtocolError(
                f"submission items must be objects, got {type(item).__name__}"
            )
        sql = item.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ProtocolError("submission item carries no SQL text")
        query_id = item.get("query_id")
        priority = item.get("priority")
        if priority is not None:
            try:
                priority = float(priority)
            except (TypeError, ValueError):
                raise ProtocolError(f"submission priority must be numeric, got {priority!r}")
        return sql, item.get("owner"), None if query_id is None else str(query_id), priority

    def _plan_route(self, signature: frozenset[str]) -> tuple[int, Optional[int], bool]:
        """``(target node, home node, resident?)`` for one signature.

        Precedence: an already-hot relation pins the query to its group's
        node (partners must meet where the group lives); otherwise a
        cross-node signature takes up residence at its hashed node; otherwise
        the query simply goes home.
        """
        home = self.placement.node_for_signature(signature)
        hot = self.registry.hot_target(signature)
        if hot is not None:
            return hot, home, True
        if home is None:
            return self.placement.residence_node_for(signature), home, True
        return home, home, False

    async def _route_and_submit(
        self, connection: _AsyncConnection, items: Sequence[Any], batch: bool
    ) -> list[dict[str, Any]]:
        """The submit path shared by ``submit``, ``submit_many`` and ``execute``."""
        slots: list[Optional[dict[str, Any]]] = [None] * len(items)
        entries_by_index: dict[int, RoutedQuery] = {}
        by_node: dict[int, list[tuple[int, dict[str, Any], RoutedQuery]]] = {}
        relocation_needed = False
        for index, item in enumerate(items):
            sql, owner, query_id, priority = self._validate_item(item)
            if query_id is None:
                query_id = f"r{next(self._router_ids)}"
            if query_id in self.registry:
                # The single-server contract, enforced cluster-wide: one id,
                # one query — whichever node the original landed on.
                self.duplicate_rejections += 1
                error = f"a query with id {query_id!r} is already registered"
                if not batch:
                    raise EntanglementError(error)
                slots[index] = _rejected_state(query_id, owner, sql, error)
                continue
            signature = extract_signature(sql)
            target, home, resident = self._plan_route(signature)
            entry = RoutedQuery(
                query_id=query_id,
                sql=sql,
                owner=owner,
                signature=signature,
                node=target,
                status=SUBMITTING,
                registered_at=time.time(),
                resident=resident,
                priority=priority,
            )
            self.registry.add(entry)
            entries_by_index[index] = entry
            self.routed_submits += 1
            if home is None or target != home:
                self.cross_node_submits += 1
            relocation_needed = relocation_needed or bool(resident and signature)
            wire_item = {"sql": sql, "owner": owner, "query_id": query_id}
            if priority is not None:
                wire_item["priority"] = priority
            by_node.setdefault(target, []).append((index, wire_item, entry))

        async def submit_on(node: int, group: list[tuple[int, dict[str, Any], RoutedQuery]]) -> None:
            try:
                client = self._client(node)
                if len(group) == 1 and not batch:
                    states = [await client._call("submit", item=group[0][1])]
                else:
                    states = await client._call(
                        "submit_many", items=[wire for _, wire, _ in group]
                    )
            except Exception as exc:
                for index, _wire, entry in group:
                    state = _rejected_state(
                        entry.query_id, entry.owner, entry.sql, str(exc)
                    )
                    self._settle_entry(entry, state)
                    if not entry.submitted.done():
                        entry.submitted.set_result(None)
                    slots[index] = state
                if not batch:
                    raise
                return
            for (index, _wire, entry), state in zip(group, states):
                if not entry.terminal:
                    if state.get("status") == "pending":
                        entry.status = PENDING
                    else:
                        self._settle_entry(entry, state)
                if not entry.submitted.done():
                    entry.submitted.set_result(None)
                slots[index] = state

        # one frame per target node, all nodes concurrently
        results = await asyncio.gather(
            *(submit_on(node, group) for node, group in by_node.items()),
            return_exceptions=True,
        )
        for outcome in results:
            if isinstance(outcome, BaseException) and not batch:
                raise outcome
        if relocation_needed:
            # Run the residence pass before answering: once the client holds
            # its handles, every entangled partner is already co-located.
            await self._relocation_pass()
        out: list[dict[str, Any]] = []
        for index in range(len(items)):
            state = slots[index] or {}
            entry = entries_by_index.get(index)
            if entry is None:  # synthesized duplicate rejection: no entry, no watch
                out.append(state)
            else:
                out.append(self._state_and_watch(connection, entry, state))
        return out

    # -- the cross-node residence pass --------------------------------------------------------

    async def _relocation_pass(self) -> None:
        """Move every pending query stranded off its hot group's node there.

        Runs to a fixpoint: relocated queries contribute their own relations
        to the hot set, which can implicate further victims (the transitive
        closure a single matching universe requires).
        """
        assert self._relocation_lock is not None
        async with self._relocation_lock:
            while True:
                plan = self.registry.relocation_plan()
                if not plan:
                    return
                for entry, target in plan:
                    await self._relocate(entry, target)

    async def _relocate(
        self, entry: RoutedQuery, target: int, make_resident: bool = True
    ) -> None:
        """Cancel ``entry`` where it lives and resubmit it (same id) on ``target``.

        ``entry.node`` keeps the old route until the resubmit RPC returns:
        flipping it early would strand ``wait``/``cancel`` on a node that
        never received the query if the resubmit fails.  While the move is in
        flight ``relocating_to`` names the target so a ``done`` push from
        either side of the move is accepted — the target node can match and
        push before the resubmit response is processed here.
        """
        loop = asyncio.get_running_loop()
        while entry.status == SUBMITTING:
            try:
                await asyncio.shield(entry.submitted)
            except Exception:  # noqa: BLE001 - the submit path settled it
                break
        if entry.terminal or entry.node == target:
            return
        old_node = entry.node
        entry.status = RELOCATING
        entry.relocating_to = target
        entry.submitted = loop.create_future()
        try:
            try:
                await self._client(old_node)._call("cancel", query_id=entry.query_id)
            except QueryAlreadyAnsweredError:
                # Matched on the old node before the pass reached it; its
                # ``done`` push settles the entry (entry.node still points
                # there, so the push is accepted).
                if not entry.terminal:
                    entry.status = PENDING
                return
            except QueryNotPendingError:
                if entry.terminal:
                    return
                # The old node does not know it (lost to a failover window):
                # resubmitting on the target below restores it.
            except ServiceUnavailableError:
                if entry.terminal:
                    return
                # Old node is gone; the resubmission below is the rescue.
            try:
                wire_item = {
                    "sql": entry.sql,
                    "owner": entry.owner,
                    "query_id": entry.query_id,
                }
                if entry.priority is not None:
                    wire_item["priority"] = entry.priority
                state = await self._client(target)._call("submit", item=wire_item)
            except Exception as exc:  # noqa: BLE001 - surface as a terminal outcome
                # The route still names the old node (where the query was
                # last known); the outcome is terminal either way.
                self._settle_entry(
                    entry,
                    _rejected_state(
                        entry.query_id,
                        entry.owner,
                        entry.sql,
                        f"relocation to node {target} failed: {exc}",
                    ),
                )
                return
            entry.node = target
            self.relocations += 1
            if make_resident:
                self.registry.mark_resident(entry)
            if not entry.terminal:
                if state.get("status") == "pending":
                    entry.status = PENDING
                else:
                    self._settle_entry(entry, state)
        finally:
            entry.relocating_to = None
            if not entry.submitted.done():
                entry.submitted.set_result(None)

    # -- operations: handshake ----------------------------------------------------------------

    def _fastop_hello(self, _connection: _AsyncConnection) -> dict[str, Any]:
        node0 = self._clients[0]
        config = dict((node0.server_info.get("config") or {}) if node0 else {})
        return {
            "server": "youtopia",
            "protocol": codec.PROTOCOL_VERSION,
            "config": config,
            "transport": "cluster-router",
            "cluster": self.placement.describe(),
        }

    # -- operations: submission ----------------------------------------------------------------

    async def _op_submit(
        self, connection: _AsyncConnection, item: Any = None
    ) -> dict[str, Any]:
        states = await self._route_and_submit(connection, [item], batch=False)
        return states[0]

    async def _op_submit_many(
        self, connection: _AsyncConnection, items: Any = None
    ) -> list[dict[str, Any]]:
        if not isinstance(items, list):
            raise ProtocolError("submit_many expects a list of submission items")
        return await self._route_and_submit(connection, items, batch=True)

    # -- operations: waiting / cancellation ----------------------------------------------------

    async def _wait_one(
        self, query_id: str, timeout: Optional[float]
    ) -> dict[str, Any]:
        entry = self.registry.get(query_id)
        if entry is None:
            raise QueryNotPendingError(query_id)
        if entry.final_state is None:
            try:
                if timeout is None:
                    state = await asyncio.shield(entry.done_future)
                else:
                    state = await asyncio.wait_for(
                        asyncio.shield(entry.done_future), timeout
                    )
            except asyncio.TimeoutError:
                self.router_timeouts += 1
                raise CoordinationTimeoutError(query_id, timeout) from None
        else:
            state = entry.final_state
        status = state.get("status")
        if status != "answered":
            raise EntanglementError(
                f"query {query_id!r} is {status}: {state.get('error') or ''}"
            )
        return state

    async def _op_wait(
        self, _connection: _AsyncConnection, query_id: str, timeout: Optional[float] = None
    ) -> dict[str, Any]:
        return await self._wait_one(query_id, timeout)

    async def _op_wait_many(
        self,
        _connection: _AsyncConnection,
        query_ids: Sequence[str],
        timeout: Optional[float] = None,
    ) -> list[dict[str, Any]]:
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        states = []
        for query_id in query_ids:
            remaining = None if deadline is None else max(deadline - loop.time(), 0.0)
            states.append(await self._wait_one(query_id, remaining))
        return states

    async def _op_cancel(self, _connection: _AsyncConnection, query_id: str) -> None:
        entry = self.registry.get(query_id)
        if entry is None:
            raise QueryNotPendingError(query_id)
        while entry.status in (SUBMITTING, RELOCATING):
            submitted = entry.submitted
            try:
                await asyncio.shield(submitted)
            except Exception:  # noqa: BLE001 - submission failed; node decides below
                break
        # Forward even when the entry looks terminal: the node raises the
        # authoritative typed error (already answered / not pending).
        await self._client(entry.node)._call("cancel", query_id=query_id)

    # -- operations: plain SQL -----------------------------------------------------------------

    def _read_client(self) -> _NodeClient:
        """Any live node can answer a read (base data is broadcast to all)."""
        for node in range(self.placement.node_count):
            client = self._clients[node]
            if client is not None and client._failure is None:
                return client
        return self._client(0)

    async def _op_query(self, _connection: _AsyncConnection, sql: str) -> dict[str, Any]:
        return await self._read_client()._call("query", sql=sql)

    async def _execute_statement(
        self, connection: _AsyncConnection, statement: ast.Statement, owner: Optional[str]
    ) -> Any:
        sql = format_statement(statement)
        if isinstance(statement, ast.EntangledSelect):
            states = await self._route_and_submit(
                connection, [{"sql": sql, "owner": owner}], batch=False
            )
            return {"kind": "handle", "state": states[0]}
        if isinstance(statement, ast.Select):
            result = await self._read_client()._call("query", sql=sql)
            return {"kind": "relation", "result": result}
        # DDL/DML changes base data that matching reads everywhere: broadcast
        # to every node, serialized so concurrent broadcasts cannot interleave
        # half-applied across the cluster.
        assert self._broadcast_lock is not None
        async with self._broadcast_lock:
            results = await asyncio.gather(
                *(
                    self._client(node)._call("execute", sql=sql, owner=owner)
                    for node in range(self.placement.node_count)
                )
            )
        return results[0]

    async def _op_execute(
        self, connection: _AsyncConnection, sql: str, owner: Optional[str] = None
    ) -> dict[str, Any]:
        return await self._execute_statement(connection, parse_statement(sql), owner)

    async def _op_execute_script(
        self, connection: _AsyncConnection, sql: str, owner: Optional[str] = None
    ) -> list[dict[str, Any]]:
        results: list[dict[str, Any]] = []
        for index, statement in enumerate(parse_script(sql)):
            try:
                results.append(
                    await self._execute_statement(connection, statement, owner)
                )
            except YoutopiaError as exc:
                raise ScriptError(index, format_statement(statement), exc) from exc
        return results

    async def _op_declare_answer_relation(
        self,
        _connection: _AsyncConnection,
        name: str,
        columns: Optional[Sequence[str]] = None,
        types: Optional[Sequence[str]] = None,
        arity: Optional[int] = None,
    ) -> None:
        await asyncio.gather(
            *(
                self._client(node)._call(
                    "declare_answer_relation",
                    name=name,
                    columns=columns,
                    types=types,
                    arity=arity,
                )
                for node in range(self.placement.node_count)
            )
        )

    # -- operations: answers / stats ------------------------------------------------------------

    async def _op_answers(
        self, _connection: _AsyncConnection, relation: str
    ) -> list[list[Any]]:
        # Answers land on whichever node matched the group; the union over
        # nodes is the cluster's answer relation.  A relation auto-created at
        # registration exists only on its home node, so nodes that have never
        # seen it contribute nothing — the relation is unknown to the cluster
        # only when *every* node says so.
        async def answers_of(node: int) -> list[list[Any]]:
            return await self._client(node)._call("answers", relation=relation)

        per_node = await asyncio.gather(
            *(answers_of(node) for node in range(self.placement.node_count)),
            return_exceptions=True,
        )
        merged: list[list[Any]] = []
        known = False
        unknown: Optional[BaseException] = None
        gaps = 0
        for rows in per_node:
            if isinstance(rows, BaseException):
                if isinstance(rows, EntanglementError):
                    unknown = unknown or rows
                    continue
                # A node unreachable mid-fan-out is a gap in the union, not a
                # failure of it: the reachable members' answers are still the
                # cluster's answers (stats reports the gap count).
                gaps += 1
                continue
            known = True
            merged.extend(rows)
        self.introspection_gaps += gaps
        if not known:
            if unknown is not None:
                raise unknown
            raise ServiceUnavailableError(
                f"no cluster node is reachable to serve answers for {relation!r}"
            )
        return merged

    async def _op_stats(self, _connection: _AsyncConnection) -> dict[str, Any]:
        async def stats_of(node: int) -> Optional[dict[str, Any]]:
            try:
                return await self._client(node)._call("stats")
            except Exception:  # noqa: BLE001 - a dead node must not break stats
                return None

        per_node = await asyncio.gather(
            *(stats_of(node) for node in range(self.placement.node_count))
        )
        unreachable = [node for node, stats in enumerate(per_node) if stats is None]
        self.introspection_gaps += len(unreachable)
        counters: dict[str, int] = {}
        pending = 0
        shards: list[dict[str, Any]] = []
        node_blocks: list[dict[str, Any]] = []
        matching: dict[str, Any] = {}
        match_policies: set[str] = set()
        match_plans: set[str] = set()
        provider_indexes: set[str] = set()
        tiering: dict[str, Any] = {"enabled": False}
        tiering_policies: set[str] = set()
        tiering_backends: set[str] = set()
        routed_counts = self.registry.counts_by_node(self.placement.node_count)
        for spec, stats in zip(self.placement.nodes, per_node):
            block: dict[str, Any] = {
                "index": spec.index,
                "address": spec.address,
                "shards": list(self.placement.shards_of(spec.index)),
                "routed_pending": routed_counts[spec.index],
                "reachable": stats is not None,
            }
            if stats is not None:
                for key, value in (stats.get("counters") or {}).items():
                    counters[key] = counters.get(key, 0) + int(value)
                pending += int(stats.get("pending", 0))
                for shard in stats.get("shards") or ():
                    shards.append({"node": spec.index, **shard})
                block["pending"] = int(stats.get("pending", 0))
                node_matching = stats.get("matching") or {}
                if node_matching:
                    policy = node_matching.get("policy")
                    if policy:
                        match_policies.add(str(policy))
                        block["match_policy"] = policy
                    if node_matching.get("match_plan"):
                        match_plans.add(str(node_matching["match_plan"]))
                    if node_matching.get("provider_index"):
                        provider_indexes.add(str(node_matching["provider_index"]))
                    for key, value in node_matching.items():
                        if key in ("policy", "candidate_limit", "match_plan", "provider_index"):
                            continue
                        if isinstance(value, bool) or not isinstance(value, (int, float)):
                            continue
                        matching[key] = matching.get(key, 0) + value
                    if "candidate_limit" in node_matching:
                        matching["candidate_limit"] = node_matching["candidate_limit"]
                node_tiering = stats.get("tiering") or {}
                if node_tiering.get("enabled"):
                    # Numeric tiering counters sum across nodes; policy and
                    # backend strings follow the "mixed" convention, and the
                    # derived latency average is recomputed from the sums.
                    tiering["enabled"] = True
                    if node_tiering.get("eviction_policy"):
                        tiering_policies.add(str(node_tiering["eviction_policy"]))
                    if node_tiering.get("backend"):
                        tiering_backends.add(str(node_tiering["backend"]))
                    for key, value in node_tiering.items():
                        if key in ("enabled", "eviction_policy", "backend", "avg_page_in_ms"):
                            continue
                        if isinstance(value, bool) or not isinstance(value, (int, float)):
                            continue
                        tiering[key] = tiering.get(key, 0) + value
                durability = stats.get("durability") or {}
                block["wal_last_lsn"] = durability.get("wal_last_lsn")
                block["wal_subscribers"] = durability.get("wal_subscribers")
            lag = await self._standby_lag(spec, block.get("wal_last_lsn"))
            if lag is not None:
                block["standby"] = lag
            node_blocks.append(block)
        counters["queries_rejected"] = (
            counters.get("queries_rejected", 0) + self.duplicate_rejections
        )
        counters["queries_timed_out"] = (
            counters.get("queries_timed_out", 0) + self.router_timeouts
        )
        cluster = {
            "role": "router",
            "node_count": self.placement.node_count,
            "shard_count": self.placement.shard_count,
            "residence": "per-signature",
            "nodes": node_blocks,
            "unreachable_nodes": unreachable,
            "routed_submits": self.routed_submits,
            "cross_node_submits": self.cross_node_submits,
            "relocations": self.relocations,
            "duplicate_rejections": self.duplicate_rejections,
            "failovers": self.failovers,
            "hot_relations": sorted(self.registry.hot_relations),
            "hot_nodes": {
                relation: self.registry.hot_nodes[relation]
                for relation in sorted(self.registry.hot_nodes)
            },
            "registered_queries": len(self.registry),
            "recovered_queries": self.recovered_queries,
            "resharded_relocations": self.resharded_relocations,
            "introspection_gaps": self.introspection_gaps,
        }
        if match_policies:
            # One policy across the fleet is the expected deployment; report
            # "mixed" (plus per-node blocks above) when nodes disagree.
            matching["policy"] = (
                next(iter(match_policies)) if len(match_policies) == 1 else "mixed"
            )
        if match_plans:
            matching["match_plan"] = (
                next(iter(match_plans)) if len(match_plans) == 1 else "mixed"
            )
        if provider_indexes:
            matching["provider_index"] = (
                next(iter(provider_indexes)) if len(provider_indexes) == 1 else "mixed"
            )
        if tiering["enabled"]:
            tiering["eviction_policy"] = (
                next(iter(tiering_policies)) if len(tiering_policies) == 1 else "mixed"
            )
            tiering["backend"] = (
                next(iter(tiering_backends)) if len(tiering_backends) == 1 else "mixed"
            )
            page_ins = tiering.get("page_ins") or 0
            tiering["avg_page_in_ms"] = (
                round(1000.0 * tiering.get("page_in_seconds", 0.0) / page_ins, 3)
                if page_ins
                else 0.0
            )
        return {
            "counters": counters,
            "pending": pending,
            "shards": shards,
            "durability": {"enabled": False},
            "transport": self.metrics.snapshot(),
            "cluster": cluster,
            "matching": matching,
            "tiering": tiering,
        }

    async def _standby_lag(
        self, spec: Any, wal_last_lsn: Optional[int]
    ) -> Optional[dict[str, Any]]:
        """Replication lag (in LSNs) of a node's standby, best effort."""
        if spec.standby is None:
            return None
        host, port = spec.standby
        lag: dict[str, Any] = {"address": f"{host}:{port}"}
        try:
            client = self._standby_stat_clients.get(spec.index)
            if client is None or client._failure is not None:
                client = await AsyncRemoteService.connect(host, port, connect_timeout=2.0)
                self._standby_stat_clients[spec.index] = client
            stats = await client._call("stats")
        except Exception:  # noqa: BLE001 - an absent standby is lag "unknown"
            lag["reachable"] = False
            return lag
        cluster = stats.get("cluster") or {}
        applied = cluster.get("applied_lsn")
        lag["reachable"] = True
        lag["applied_lsn"] = applied
        if wal_last_lsn is not None and applied is not None:
            lag["lag_lsns"] = max(int(wal_last_lsn) - int(applied), 0)
        return lag

    # -- operations: introspection ---------------------------------------------------------------

    async def _op_request(
        self, connection: _AsyncConnection, query_id: str
    ) -> dict[str, Any]:
        entry = self.registry.get(query_id)
        if entry is None:
            raise QueryNotPendingError(query_id)
        if entry.final_state is not None:
            return entry.final_state
        state = await self._client(entry.node)._call("request", query_id=query_id)
        return self._state_and_watch(connection, entry, state)

    def _synthesized_pending_state(self, entry: RoutedQuery) -> dict[str, Any]:
        return {
            "query_id": entry.query_id,
            "owner": entry.owner,
            "status": "pending",
            "error": None,
            "group": [],
            "registered_at": entry.registered_at,
            "answered_at": None,
            "sql": entry.sql,
            "description": "",
            "answer": None,
        }

    async def _op_requests(self, connection: _AsyncConnection) -> list[dict[str, Any]]:
        async def requests_of(node: int) -> list[dict[str, Any]]:
            try:
                return await self._client(node)._call("requests")
            except Exception:  # noqa: BLE001 - merged view over reachable nodes
                return []

        per_node = await asyncio.gather(
            *(requests_of(node) for node in range(self.placement.node_count))
        )
        by_location: dict[tuple[int, str], dict[str, Any]] = {}
        for node, states in enumerate(per_node):
            for state in states:
                by_location[(node, str(state.get("query_id")))] = state
        merged: list[dict[str, Any]] = []
        for entry in self.registry.entries():
            if entry.final_state is not None:
                merged.append(entry.final_state)
                continue
            state = by_location.get((entry.node, entry.query_id))
            if state is None:
                # in flight between registries; present the router's view
                state = self._synthesized_pending_state(entry)
            merged.append(self._state_and_watch(connection, entry, state))
        return merged

    async def _op_pending_queries(
        self, _connection: _AsyncConnection
    ) -> list[dict[str, Any]]:
        async def pending_of(node: int) -> list[dict[str, Any]]:
            try:
                return await self._client(node)._call("pending_queries")
            except Exception:  # noqa: BLE001 - merged view over reachable nodes
                return []

        per_node = await asyncio.gather(
            *(pending_of(node) for node in range(self.placement.node_count))
        )
        by_location: dict[tuple[int, str], dict[str, Any]] = {}
        for node, items in enumerate(per_node):
            for item in items:
                by_location[(node, str(item.get("query_id")))] = item
        merged = []
        for entry in self.registry.live_entries():
            item = by_location.get((entry.node, entry.query_id))
            if item is None:
                item = {
                    "query_id": entry.query_id,
                    "owner": entry.owner,
                    "sql": entry.sql,
                    "description": "",
                }
            merged.append(item)
        return merged

    async def _op_retry_pending(self, _connection: _AsyncConnection) -> int:
        retried = await asyncio.gather(
            *(
                self._client(node)._call("retry_pending")
                for node in range(self.placement.node_count)
            )
        )
        return sum(int(count) for count in retried)

    async def _op_drain(
        self, _connection: _AsyncConnection, timeout: Optional[float] = None
    ) -> bool:
        drained = await asyncio.gather(
            *(
                self._client(node)._call("drain", timeout=timeout)
                for node in range(self.placement.node_count)
            )
        )
        return all(bool(flag) for flag in drained)

    async def _op_shutdown(self, _connection: _AsyncConnection) -> bool:
        # Stops the router only; member nodes keep running (they are owned
        # by their own processes, not by the gateway).
        return True

    # -- failover -------------------------------------------------------------------------------

    def _schedule_node_loss(self, node_index: int) -> None:
        if self._stopping or self._loop is None or node_index < 0:
            return
        self._loop.create_task(self._handle_node_loss(node_index))

    async def _handle_node_loss(self, node_index: int) -> None:
        """A node connection died: promote its standby or fail its queries."""
        if self._stopping:
            return
        spec = self.placement.nodes[node_index]
        affected = self.registry.pending_on_node(node_index)
        if spec.standby is None:
            for entry in affected:
                self._settle_entry(
                    entry,
                    _rejected_state(
                        entry.query_id,
                        entry.owner,
                        entry.sql,
                        f"cluster node {node_index} ({spec.address}) failed "
                        "and has no standby",
                    ),
                )
            return
        host, port = spec.standby
        try:
            client = await _NodeClient.connect(host, port, connect_timeout=self._connect_timeout)
            client.node_index = node_index
            await client._call("promote")
        except Exception as exc:  # noqa: BLE001 - failover itself failed
            for entry in affected:
                self._settle_entry(
                    entry,
                    _rejected_state(
                        entry.query_id,
                        entry.owner,
                        entry.sql,
                        f"cluster node {node_index} ({spec.address}) failed and its "
                        f"standby at {host}:{port} could not take over: {exc}",
                    ),
                )
            return
        client.router = self
        self._clients[node_index] = client
        self._standby_stat_clients.pop(node_index, None)
        self.failovers += 1
        for entry in affected:
            if entry.terminal:
                continue
            try:
                state = await client._call("request", query_id=entry.query_id)
            except Exception as exc:  # noqa: BLE001 - not replayed on the standby
                self._settle_entry(
                    entry,
                    _rejected_state(
                        entry.query_id,
                        entry.owner,
                        entry.sql,
                        f"lost in failover of node {node_index}: {exc}",
                    ),
                )
                continue
            if not entry.submitted.done():
                entry.submitted.set_result(None)
            if entry.terminal:
                # A push settled the entry while the re-request was in
                # flight; re-marking it pending here would resurrect a done
                # query, so the settled outcome stands.
                continue
            entry.status = PENDING
            if state.get("status") != "pending":
                self._settle_entry(entry, state)


class BackgroundClusterRouter(BackgroundAsyncServer):
    """A :class:`ClusterRouter` on its own event-loop thread.

    The synchronous ``start``/``stop``/``wait_stopped`` surface of
    :class:`~repro.service.aio.server.BackgroundAsyncServer`, for the CLI's
    ``router`` subcommand, tests and benchmarks.
    """

    def __init__(
        self,
        placement: PlacementMap,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        reshard: bool = False,
    ) -> None:
        super().__init__(
            server_factory=ClusterRouter,
            placement=placement,
            host=host,
            port=port,
            max_in_flight=max_in_flight,
            reshard=reshard,
        )
