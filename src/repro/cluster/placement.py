"""The static placement map: which member node owns which relation shard.

Placement is pure arithmetic — no catalog, no gossip: a relation's node is
:func:`repro.core.sharding.node_for_relation` (CRC32 of the lower-cased name,
modulo the node count), so every router, node and test computes the same
assignment independently.  Deriving node placement from the *same* hash as
in-process shard placement keeps the two routing layers consistent: queries
that share a matching universe inside one process also share a node across
the cluster.

The router needs a query's relation signature *before* any node sees the
query.  Fully compiling entangled SQL at the gateway would put the whole
compiler on the hot path of every routed submission, so
:func:`extract_signature` reads the signature straight off the SQL text
(every entangled relation is introduced by the keyword ``ANSWER``), falling
back to the real compiler only when the scan finds nothing.  A conformance
test asserts the scan agrees with :func:`~repro.core.sharding.relation_signature`
of the compiled query across the test corpus.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.core.sharding import (
    node_for_relation,
    relation_signature,
    route_signature_to_node,
)

#: SQL string literals (with '' escapes) — stripped before the keyword scan so
#: a literal like 'IN ANSWER Hotel' cannot forge a routing relation.
_STRING_LITERAL = re.compile(r"'(?:[^']|'')*'")

#: Every entangled relation reference: INTO ANSWER R (a head) or IN ANSWER R
#: (an answer constraint).  Matching bare ``ANSWER <ident>`` covers both.
_ANSWER_RELATION = re.compile(r"\bANSWER\s+([A-Za-z_][A-Za-z0-9_]*)", re.IGNORECASE)


def extract_signature(sql: str) -> frozenset[str]:
    """The relation signature of entangled SQL, without compiling it.

    Returns the lower-cased set of relations named by ``ANSWER <relation>``
    clauses.  When the scan finds none (programmatic SQL shapes the regex
    does not anticipate), the real compiler decides; SQL the compiler rejects
    too routes as an empty signature — the target node re-compiles and raises
    the authoritative typed error.
    """
    found = _ANSWER_RELATION.findall(_STRING_LITERAL.sub("''", sql))
    if found:
        return frozenset(name.lower() for name in found)
    try:
        from repro.core.compiler import compile_entangled

        return relation_signature(compile_entangled(sql))
    except Exception:  # noqa: BLE001 - the node owns the authoritative error
        return frozenset()


@dataclass(frozen=True)
class NodeSpec:
    """One cluster member: its placement index, address, optional standby."""

    index: int
    host: str
    port: int
    standby: Optional[tuple[str, int]] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @classmethod
    def parse(
        cls, index: int, spec: str, standby: Optional[str] = None
    ) -> "NodeSpec":
        """``"host:port"`` → :class:`NodeSpec` (the CLI's address syntax)."""
        host, _, port = spec.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"node address must be HOST:PORT, got {spec!r}")
        standby_address: Optional[tuple[str, int]] = None
        if standby:
            standby_host, _, standby_port = standby.rpartition(":")
            if not standby_host or not standby_port.isdigit():
                raise ValueError(f"standby address must be HOST:PORT, got {standby!r}")
            standby_address = (standby_host, int(standby_port))
        return cls(index=index, host=host, port=int(port), standby=standby_address)


class PlacementMap:
    """Signature→node routing over a fixed member list.

    ``shard_count`` defaults to the node count, making node routing the
    coarsest consistent view of shard routing; a larger multiple of the node
    count keeps finer shards while still agreeing on node boundaries.  Node 0
    doubles as the **residence node**: cross-node signatures (and anything
    entangled with them) are co-located there, the cluster analogue of the
    sharded coordinator's global residence.
    """

    def __init__(self, nodes: Sequence[NodeSpec], shard_count: Optional[int] = None) -> None:
        if not nodes:
            raise ValueError("a placement map needs at least one node")
        self.nodes: tuple[NodeSpec, ...] = tuple(nodes)
        indices = [node.index for node in self.nodes]
        if indices != list(range(len(self.nodes))):
            raise ValueError(f"node indices must be 0..{len(self.nodes) - 1}, got {indices}")
        self.shard_count = shard_count or len(self.nodes)
        if self.shard_count % len(self.nodes) != 0:
            raise ValueError(
                f"shard_count ({self.shard_count}) must be a multiple of the "
                f"node count ({len(self.nodes)}) so shard and node routing agree"
            )

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    #: Cross-node (and hot-relation-entangled) queries are co-located here.
    residence_node = 0

    def node_for_relation(self, relation: str) -> int:
        return node_for_relation(relation, self.node_count, self.shard_count)

    def node_for_signature(self, signature: frozenset[str]) -> Optional[int]:
        """The single owning node, or ``None`` for a cross-node signature."""
        return route_signature_to_node(signature, self.node_count, self.shard_count)

    def shards_of(self, node_index: int) -> tuple[int, ...]:
        """The relation shards a node owns (for observability/docs)."""
        return tuple(
            shard for shard in range(self.shard_count)
            if shard % self.node_count == node_index
        )

    def describe(self) -> dict[str, Any]:
        """A JSON-safe summary (the ``cluster`` stats block's ``placement``)."""
        return {
            "node_count": self.node_count,
            "shard_count": self.shard_count,
            "residence_node": self.residence_node,
            "nodes": [
                {
                    "index": node.index,
                    "address": node.address,
                    "shards": list(self.shards_of(node.index)),
                    "standby": None if node.standby is None else f"{node.standby[0]}:{node.standby[1]}",
                }
                for node in self.nodes
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlacementMap(nodes={self.node_count}, shards={self.shard_count})"
