"""The static placement map: which member node owns which relation shard.

Placement is pure arithmetic — no catalog, no gossip: a relation's node is
:func:`repro.core.sharding.node_for_relation` (CRC32 of the lower-cased name,
modulo the node count), so every router, node and test computes the same
assignment independently.  Deriving node placement from the *same* hash as
in-process shard placement keeps the two routing layers consistent: queries
that share a matching universe inside one process also share a node across
the cluster.

The router needs a query's relation signature *before* any node sees the
query.  Fully compiling entangled SQL at the gateway would put the whole
compiler on the hot path of every routed submission, so
:func:`extract_signature` reads the signature straight off the SQL text
(every entangled relation is introduced by the keyword ``ANSWER``), falling
back to the real compiler only when the scan finds nothing.  A conformance
test asserts the scan agrees with :func:`~repro.core.sharding.relation_signature`
of the compiled query across the test corpus.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.core.sharding import (
    node_for_relation,
    relation_signature,
    route_signature_to_node,
)

#: SQL string literals (with '' escapes) — stripped before the keyword scan so
#: a literal like 'IN ANSWER Hotel' cannot forge a routing relation.
_STRING_LITERAL = re.compile(r"'(?:[^']|'')*'")

#: Every entangled relation reference: INTO ANSWER R (a head) or IN ANSWER R
#: (an answer constraint).  Matching bare ``ANSWER <ident>`` covers both.
_ANSWER_RELATION = re.compile(r"\bANSWER\s+([A-Za-z_][A-Za-z0-9_]*)", re.IGNORECASE)


def extract_signature(sql: str) -> frozenset[str]:
    """The relation signature of entangled SQL, without compiling it.

    Returns the lower-cased set of relations named by ``ANSWER <relation>``
    clauses.  When the scan finds none (programmatic SQL shapes the regex
    does not anticipate), the real compiler decides; SQL the compiler rejects
    too routes as an empty signature — the target node re-compiles and raises
    the authoritative typed error.
    """
    found = _ANSWER_RELATION.findall(_STRING_LITERAL.sub("''", sql))
    if found:
        return frozenset(name.lower() for name in found)
    try:
        from repro.core.compiler import compile_entangled

        return relation_signature(compile_entangled(sql))
    except Exception:  # noqa: BLE001 - the node owns the authoritative error
        return frozenset()


@dataclass(frozen=True)
class NodeSpec:
    """One cluster member: its placement index, address, optional standby."""

    index: int
    host: str
    port: int
    standby: Optional[tuple[str, int]] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @classmethod
    def parse(
        cls, index: int, spec: str, standby: Optional[str] = None
    ) -> "NodeSpec":
        """``"host:port"`` → :class:`NodeSpec` (the CLI's address syntax)."""
        host, _, port = spec.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"node address must be HOST:PORT, got {spec!r}")
        standby_address: Optional[tuple[str, int]] = None
        if standby:
            standby_host, _, standby_port = standby.rpartition(":")
            if not standby_host or not standby_port.isdigit():
                raise ValueError(f"standby address must be HOST:PORT, got {standby!r}")
            standby_address = (standby_host, int(standby_port))
        return cls(index=index, host=host, port=int(port), standby=standby_address)


class PlacementMap:
    """Signature→node routing over a fixed member list.

    ``shard_count`` defaults to the node count, making node routing the
    coarsest consistent view of shard routing; a larger multiple of the node
    count keeps finer shards while still agreeing on node boundaries.

    Cross-node signatures need a **residence node** where every entangled
    partner can meet (the cluster analogue of the sharded coordinator's
    global residence).  Residence is *per signature*: the sorted cross-node
    signature is hashed with the same CRC32 arithmetic that places single
    relations (:meth:`residence_node_for`), so residence load spreads over
    all members instead of piling onto node 0.  Two queries that can
    coordinate share at least one answer relation, and the router's
    hot-relation rule drags later arrivals to wherever the first cross-node
    signature landed — per-signature hashing only has to be *deterministic*,
    not globally unique, for partners to meet.
    """

    def __init__(self, nodes: Sequence[NodeSpec], shard_count: Optional[int] = None) -> None:
        if not nodes:
            raise ValueError("a placement map needs at least one node")
        self.nodes: tuple[NodeSpec, ...] = tuple(nodes)
        indices = [node.index for node in self.nodes]
        if indices != list(range(len(self.nodes))):
            raise ValueError(f"node indices must be 0..{len(self.nodes) - 1}, got {indices}")
        self.shard_count = shard_count or len(self.nodes)
        if self.shard_count % len(self.nodes) != 0:
            raise ValueError(
                f"shard_count ({self.shard_count}) must be a multiple of the "
                f"node count ({len(self.nodes)}) so shard and node routing agree"
            )

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def node_for_relation(self, relation: str) -> int:
        return node_for_relation(relation, self.node_count, self.shard_count)

    def node_for_signature(self, signature: frozenset[str]) -> Optional[int]:
        """The single owning node, or ``None`` for a cross-node signature."""
        return route_signature_to_node(signature, self.node_count, self.shard_count)

    def residence_node_for(self, signature: frozenset[str]) -> int:
        """Where a cross-node (or empty) signature takes up residence.

        CRC32 of the sorted, ``|``-joined lower-cased signature, modulo the
        node count — the same arithmetic family as
        :func:`~repro.core.sharding.shard_for_relation`, applied to the whole
        signature so distinct cross-node signatures spread over all members.
        An empty signature (unparseable SQL the target node will reject with
        the authoritative error) pins to node 0.
        """
        if not signature:
            return 0
        key = "|".join(sorted(relation.lower() for relation in signature))
        return zlib.crc32(key.encode("utf-8")) % self.node_count

    def shards_of(self, node_index: int) -> tuple[int, ...]:
        """The relation shards a node owns (for observability/docs)."""
        return tuple(
            shard for shard in range(self.shard_count)
            if shard % self.node_count == node_index
        )

    def split(self, new_nodes: Sequence[NodeSpec]) -> "PlacementMap":
        """A map over more (or fewer) nodes that keeps every relation's shard.

        The resharding invariant: ``shard_count`` never changes, so a
        relation's *shard* is stable across the split and only the
        shard→node projection moves.  Guarded so a reshard can only happen
        when the old and new projections are commensurable — the inherited
        ``shard_count`` must be a multiple of the new node count — which
        bounds the relocation sweep to :meth:`moved_shards` instead of every
        relation in the cluster.
        """
        new_map = PlacementMap(new_nodes, shard_count=self.shard_count)
        return new_map

    def moved_shards(self, new_map: "PlacementMap") -> tuple[int, ...]:
        """Shards whose owning node differs between this map and ``new_map``.

        Only meaningful between maps sharing ``shard_count`` (the
        :meth:`split` invariant); a relation needs relocation after a
        reshard exactly when its shard appears here.
        """
        if new_map.shard_count != self.shard_count:
            raise ValueError(
                f"maps shard differently ({self.shard_count} vs "
                f"{new_map.shard_count}); moved_shards needs a split() pair"
            )
        return tuple(
            shard
            for shard in range(self.shard_count)
            if shard % self.node_count != shard % new_map.node_count
        )

    def describe(self) -> dict[str, Any]:
        """A JSON-safe summary (the ``cluster`` stats block's ``placement``)."""
        return {
            "node_count": self.node_count,
            "shard_count": self.shard_count,
            "residence": "per-signature",
            "nodes": [
                {
                    "index": node.index,
                    "address": node.address,
                    "shards": list(self.shards_of(node.index)),
                    "standby": None if node.standby is None else f"{node.standby[0]}:{node.standby[1]}",
                }
                for node in self.nodes
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlacementMap(nodes={self.node_count}, shards={self.shard_count})"
