"""WAL-shipped standbys: a warm replica that replays the primary's log.

A standby is an ordinary memory-only :class:`~repro.service.InProcessService`
whose state is built exclusively from the primary's shipped write-ahead log:
the bootstrap snapshot from ``wal_subscribe``, then every subsequent record,
applied through the same :func:`~repro.core.durability.apply_wal_record` /
:func:`~repro.core.durability.apply_snapshot_state` primitives crash recovery
uses — replica replay *is* recovery, run continuously.

While following, the standby is **read-only**: introspection ops (requests,
answers, stats, pending_queries) serve from replicated state, but mutating
ops raise :class:`~repro.errors.ServiceUnavailableError` — accepting a submit
the primary never logged would fork history.  The replica also never matches
spontaneously (its coordinator runs inline with no match workers and sees no
submissions), so its answer state is exactly the primary's logged prefix.

On primary failure, ``promote`` turns the replica into a primary: the
follower stream stops, the query-id counter is advanced past every replayed
id, the whole pool is marked dirty and retried (a crash between a match's
execution and its commit record leaves the group pending again — identical
to single-node recovery), and the mutation guard drops.
"""

from __future__ import annotations

import re
import threading
import time
from typing import Any, Optional

from repro.core import ir
from repro.core.durability import (
    RecoveryReport,
    apply_snapshot_state,
    apply_wal_record,
)
from repro.errors import ServiceUnavailableError
from repro.service.inprocess import InProcessService
from repro.service.remote import codec
from repro.service.remote.server import CoordinationServer, _ClientConnection

from repro.cluster.shipping import WalStream

_QUERY_ID = re.compile(r"^q(\d+)$")

#: ops a standby refuses while following (everything that would fork history);
#: plain ``query`` (SELECT) stays allowed — reads are the point of a replica
_MUTATING_OPS = frozenset(
    {
        "submit",
        "submit_many",
        "cancel",
        "execute",
        "execute_script",
        "declare_answer_relation",
        "retry_pending",
    }
)


class StandbyFollower(threading.Thread):
    """The replication thread: subscribe, bootstrap, replay until the stream dies."""

    def __init__(
        self,
        service: InProcessService,
        primary_host: str,
        primary_port: int,
        connect_timeout: float = 10.0,
    ) -> None:
        super().__init__(name="youtopia-standby-follower", daemon=True)
        self.service = service
        self.primary_host = primary_host
        self.primary_port = primary_port
        self._stream = WalStream(primary_host, primary_port, timeout=connect_timeout)
        self.report = RecoveryReport()
        self.applied_lsn = 0
        self.records_applied = 0
        self.records_skipped = 0
        self.following = False
        #: set once the bootstrap snapshot is applied (reads are consistent)
        self.caught_up = threading.Event()
        #: set when the stream ends — primary death or deliberate stop
        self.disconnected = threading.Event()
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        system = self.service.system
        coordinator = system.coordinator
        # Replayed transitions must not mark shards dirty or arm retry
        # sweeps mid-stream (the promoted standby sweeps once, like
        # recovery); the guard is thread-local, so it scopes this thread.
        coordinator._executing.active = True
        try:
            snapshot = self._stream.subscribe()
            self.applied_lsn = int(snapshot.get("last_lsn", 0))
            apply_snapshot_state(system, snapshot, self.report)
            self.following = True
            self.caught_up.set()
            for record in self._stream.records():
                lsn = int(record.get("lsn", 0))
                if lsn <= self.applied_lsn:
                    self.records_skipped += 1
                    continue
                try:
                    apply_wal_record(system, record)
                except Exception as exc:  # noqa: BLE001 - mirror replay(): keep going
                    self.report.replay_errors.append(
                        f"lsn {lsn} ({record.get('type')}): {exc}"
                    )
                self.applied_lsn = lsn
                self.records_applied += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced via self.error
            self.error = exc
        finally:
            coordinator._executing.active = False
            self.following = False
            self.caught_up.set()  # never leave a waiter hanging on a dead stream
            self.disconnected.set()
            self._stream.close()

    def stop(self) -> None:
        """Tear the stream down; the thread exits at its next read."""
        self._stream.close()


class StandbyServer(CoordinationServer):
    """A read-only replica server that can be promoted to primary.

    Wire-compatible with every client: introspection works while following,
    mutations raise :class:`~repro.errors.ServiceUnavailableError` until a
    ``promote`` op (issued by an operator or the cluster router's failover
    pass) flips the guard.
    """

    def __init__(
        self,
        primary_host: str,
        primary_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
        service: Optional[InProcessService] = None,
    ) -> None:
        super().__init__(service=service, host=host, port=port)
        self.promoted = False
        self.promoted_at: Optional[float] = None
        self.follower = StandbyFollower(self.service, primary_host, primary_port)
        self.service.cluster_info = self._cluster_info

    def start(self) -> tuple[str, int]:
        address = super().start()
        if not self.follower.is_alive():
            self.follower.start()
        return address

    def stop(self) -> None:
        self.follower.stop()
        super().stop()

    close = stop

    def wait_caught_up(self, timeout: Optional[float] = None) -> bool:
        """Block until the bootstrap snapshot is applied (or the stream died)."""
        ok = self.follower.caught_up.wait(timeout)
        if ok and self.follower.error is not None:
            raise self.follower.error
        return ok

    # -- the read-only guard -----------------------------------------------------------------

    def _handle_request(self, connection: _ClientConnection, frame: dict[str, Any]) -> None:
        op = frame.get("op")
        if not self.promoted and op in _MUTATING_OPS:
            frame_id = frame.get("id")
            self.metrics.request_started()
            try:
                connection.send(
                    codec.error_frame(
                        frame_id if isinstance(frame_id, int) else -1,
                        ServiceUnavailableError(
                            "standby is read-only until promoted "
                            f"(following {self.follower.primary_host}:"
                            f"{self.follower.primary_port})"
                        ),
                    )
                )
            finally:
                self.metrics.request_finished()
            return
        super()._handle_request(connection, frame)

    # -- promotion ---------------------------------------------------------------------------

    def promote(self, drain_grace: float = 2.0) -> dict[str, Any]:
        """Stop following and take over as primary (idempotent).

        Promotion usually races the primary's death: records the primary
        acked are guaranteed to be *at least* in this replica's socket
        buffer, so closing the stream before the follower has drained to
        EOF would silently discard acked history.  ``drain_grace`` bounds
        how long promotion waits for that natural EOF (a dead primary's
        FIN/RST arrives within milliseconds; a deliberate promote-away
        from a live primary pays the full grace, then forces the close).

        Mirrors the tail of :meth:`~repro.core.durability.DurabilityManager.recover`:
        advance the query-id counter past every replayed id, then arm one
        retry sweep so groups whose match executed on the old primary but
        whose commit record never shipped are re-attempted here.
        """
        if self.promoted:
            return self._promotion_summary()
        self.follower.disconnected.wait(drain_grace)
        self.follower.stop()
        self.follower.disconnected.wait(5.0)
        coordinator = self.service.coordinator
        highest = 0
        for request in coordinator.requests():
            match = _QUERY_ID.match(request.query_id)
            if match:
                highest = max(highest, int(match.group(1)))
        if highest:
            ir.advance_query_counter(highest + 1)
        self.promoted = True
        self.promoted_at = time.time()
        coordinator.mark_all_dirty()
        self.service.retry_pending()
        return self._promotion_summary()

    def _promotion_summary(self) -> dict[str, Any]:
        coordinator = self.service.coordinator
        return {
            "promoted": True,
            "applied_lsn": self.follower.applied_lsn,
            "records_applied": self.follower.records_applied,
            "pending": coordinator.pending_count(),
            "requests": len(coordinator.requests()),
            "replay_errors": list(self.follower.report.replay_errors),
        }

    def _op_promote(self, _connection: _ClientConnection) -> dict[str, Any]:
        return self.promote()

    def _cluster_info(self) -> dict[str, Any]:
        return {
            "role": "primary (promoted standby)" if self.promoted else "standby",
            "following": None
            if self.promoted or not self.follower.following
            else f"{self.follower.primary_host}:{self.follower.primary_port}",
            "applied_lsn": self.follower.applied_lsn,
            "records_applied": self.follower.records_applied,
            "promoted": self.promoted,
        }
