"""The coordinated travel application (demo application #1).

Public surface:

* :func:`~repro.apps.travel.dataset.install_and_load` / :func:`~repro.apps.travel.dataset.generate_dataset`
* :class:`~repro.apps.travel.social.FriendGraph` / :func:`~repro.apps.travel.social.generate_friend_graph`
* :class:`~repro.apps.travel.notifications.Mailbox`
* :class:`~repro.apps.travel.service.TravelService` and the records in
  :mod:`repro.apps.travel.models`
"""

from repro.apps.travel.dataset import (
    ANSWER_RELATIONS,
    TravelDataset,
    figure1_rows,
    generate_dataset,
    install_and_load,
    install_schema,
    load_dataset,
)
from repro.apps.travel.models import (
    BookingConfirmation,
    Flight,
    FlightBooking,
    Hotel,
    HotelBooking,
    SeatAssignment,
    TripRequest,
    User,
)
from repro.apps.travel.notifications import Mailbox, Notification
from repro.apps.travel.service import TravelService
from repro.apps.travel.social import FriendGraph, generate_friend_graph

__all__ = [
    "ANSWER_RELATIONS",
    "BookingConfirmation",
    "Flight",
    "FlightBooking",
    "FriendGraph",
    "Hotel",
    "HotelBooking",
    "Mailbox",
    "Notification",
    "SeatAssignment",
    "TravelDataset",
    "TravelService",
    "TripRequest",
    "User",
    "figure1_rows",
    "generate_dataset",
    "generate_friend_graph",
    "install_and_load",
    "install_schema",
    "load_dataset",
]
