"""Synthetic travel datasets: flights, hotels, seats and users.

The demo ran against a travel database populated for the conference floor; we
generate an equivalent synthetic dataset deterministically from a seed.  The
tiny four-flight database of Figure 1(a) is also available verbatim via
:func:`figure1_rows` so the Figure-1 experiment reproduces the paper's example
exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.apps.travel.models import Flight, Hotel, User
from repro.core.system import YoutopiaSystem

DEFAULT_DESTINATIONS = (
    "Paris", "Rome", "Athens", "Berlin", "Madrid", "London", "Vienna", "Lisbon",
)
DEFAULT_ORIGINS = ("New York", "Boston", "Chicago", "San Francisco", "Ithaca")
_AIRLINES = ("United", "Lufthansa", "Alitalia", "Delta", "Air France", "Iberia")
_HOTEL_NAMES = (
    "Grand", "Plaza", "Central", "Royal", "Parkview", "Riverside", "Imperial", "Station",
)
_FIRST_NAMES = (
    "Jerry", "Kramer", "Elaine", "George", "Newman", "Susan", "Frank", "Estelle",
    "Morty", "Helen", "David", "Tim", "Jackie", "Kenny", "Mickey", "Bania",
)
_DATES = ("2011-06-12", "2011-06-13", "2011-06-14", "2011-06-15", "2011-06-16")


@dataclass
class TravelDataset:
    """An in-memory synthetic dataset ready to be loaded into a system."""

    flights: list[Flight] = field(default_factory=list)
    hotels: list[Hotel] = field(default_factory=list)
    users: list[User] = field(default_factory=list)
    seat_blocks: list[tuple[int, int, int]] = field(default_factory=list)
    # seat_blocks rows are (fno, block_id, seats_free)

    @property
    def destinations(self) -> list[str]:
        return sorted({flight.dest for flight in self.flights})


def figure1_rows() -> tuple[list[tuple[int, str]], list[tuple[int, str]]]:
    """The exact Flights / Airlines tables of Figure 1(a) of the paper."""
    flights = [(122, "Paris"), (123, "Paris"), (134, "Paris"), (136, "Rome")]
    airlines = [(122, "United"), (123, "United"), (134, "Lufthansa"), (136, "Alitalia")]
    return flights, airlines


def generate_dataset(
    num_flights: int = 60,
    num_hotels: int = 30,
    num_users: int = 24,
    destinations: Sequence[str] = DEFAULT_DESTINATIONS,
    origins: Sequence[str] = DEFAULT_ORIGINS,
    seats_per_flight: int = 50,
    rooms_per_hotel: int = 40,
    seed: int = 0,
) -> TravelDataset:
    """Generate a deterministic synthetic dataset.

    Every destination receives at least one flight and one hotel so that any
    coordination request over a listed destination is satisfiable in principle.
    """
    rng = random.Random(seed)
    dataset = TravelDataset()

    for index in range(num_flights):
        dest = destinations[index % len(destinations)]
        fno = 100 + index
        dataset.flights.append(
            Flight(
                fno=fno,
                origin=rng.choice(list(origins)),
                dest=dest,
                depart_date=rng.choice(_DATES),
                price=float(rng.randrange(180, 950, 5)),
                seats=seats_per_flight,
                airline=rng.choice(_AIRLINES),
            )
        )
        # Two seat blocks per flight, each able to hold a small group together.
        for block in (1, 2):
            dataset.seat_blocks.append((fno, block, max(2, seats_per_flight // 10)))

    for index in range(num_hotels):
        city = destinations[index % len(destinations)]
        dataset.hotels.append(
            Hotel(
                hid=500 + index,
                city=city,
                name=f"{rng.choice(_HOTEL_NAMES)} {city}",
                price=float(rng.randrange(60, 420, 5)),
                rooms=rooms_per_hotel,
                stars=rng.randrange(2, 6),
            )
        )

    for index in range(num_users):
        base = _FIRST_NAMES[index % len(_FIRST_NAMES)]
        username = base if index < len(_FIRST_NAMES) else f"{base}{index}"
        dataset.users.append(
            User(
                username=username,
                full_name=f"{base} Example{index}",
                home_city=rng.choice(list(origins)),
            )
        )

    return dataset


TRAVEL_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS Flights (
    fno INTEGER NOT NULL,
    origin TEXT,
    dest TEXT NOT NULL,
    depart_date TEXT,
    price REAL,
    seats INTEGER,
    airline TEXT,
    PRIMARY KEY (fno)
);
CREATE TABLE IF NOT EXISTS Hotels (
    hid INTEGER NOT NULL,
    city TEXT NOT NULL,
    name TEXT,
    price REAL,
    rooms INTEGER,
    stars INTEGER,
    PRIMARY KEY (hid)
);
CREATE TABLE IF NOT EXISTS Seats (
    fno INTEGER NOT NULL,
    block_id INTEGER NOT NULL,
    seats_free INTEGER,
    PRIMARY KEY (fno, block_id)
);
CREATE TABLE IF NOT EXISTS Users (
    username TEXT NOT NULL,
    full_name TEXT,
    home_city TEXT,
    PRIMARY KEY (username)
);
"""

# Answer relations of the travel application.  ``Reservation`` is the flight
# answer relation of the paper's running example.
ANSWER_RELATIONS = {
    "Reservation": (("traveler", "fno"), ("TEXT", "INTEGER")),
    "HotelReservation": (("traveler", "hid"), ("TEXT", "INTEGER")),
    "SeatBlock": (("traveler", "fno", "block_id"), ("TEXT", "INTEGER", "INTEGER")),
}


def install_schema(system: YoutopiaSystem) -> None:
    """Create the travel tables and declare the travel answer relations."""
    system.execute_script(TRAVEL_SCHEMA_SQL)
    for name, (columns, types) in ANSWER_RELATIONS.items():
        system.declare_answer_relation(name, columns=list(columns), types=list(types))


def load_dataset(system: YoutopiaSystem, dataset: TravelDataset) -> None:
    """Insert a dataset into an already-installed schema."""
    flights_table = system.database.table("Flights")
    for flight in dataset.flights:
        flights_table.insert(
            (
                flight.fno,
                flight.origin,
                flight.dest,
                flight.depart_date,
                flight.price,
                flight.seats,
                flight.airline,
            )
        )
    hotels_table = system.database.table("Hotels")
    for hotel in dataset.hotels:
        hotels_table.insert(
            (hotel.hid, hotel.city, hotel.name, hotel.price, hotel.rooms, hotel.stars)
        )
    seats_table = system.database.table("Seats")
    for row in dataset.seat_blocks:
        seats_table.insert(row)
    users_table = system.database.table("Users")
    for user in dataset.users:
        users_table.insert((user.username, user.full_name, user.home_city))


def install_and_load(
    system: YoutopiaSystem, dataset: TravelDataset | None = None, seed: int = 0
) -> TravelDataset:
    """Convenience: install the schema and load a (possibly generated) dataset."""
    if dataset is None:
        dataset = generate_dataset(seed=seed)
    install_schema(system)
    load_dataset(system, dataset)
    return dataset
