"""Typed records used by the travel application's middle tier.

These are plain data holders translated from/to database rows; the application
logic in :mod:`repro.apps.travel.service` works with these rather than raw
tuples so the examples and tests read like the demo's user workflows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Flight:
    """One row of the ``Flights`` table."""

    fno: int
    origin: str
    dest: str
    depart_date: str
    price: float
    seats: int
    airline: str

    @property
    def is_full(self) -> bool:
        return self.seats <= 0


@dataclass(frozen=True)
class Hotel:
    """One row of the ``Hotels`` table."""

    hid: int
    city: str
    name: str
    price: float
    rooms: int
    stars: int

    @property
    def is_full(self) -> bool:
        return self.rooms <= 0


@dataclass(frozen=True)
class User:
    """One row of the ``Users`` table."""

    username: str
    full_name: str
    home_city: str


@dataclass(frozen=True)
class FlightBooking:
    """A confirmed flight reservation (a tuple of the ``Reservation`` relation)."""

    traveler: str
    fno: int


@dataclass(frozen=True)
class HotelBooking:
    """A confirmed hotel reservation (a tuple of the ``HotelReservation`` relation)."""

    traveler: str
    hid: int


@dataclass(frozen=True)
class SeatAssignment:
    """A coordinated seat-block assignment (``SeatBlock`` answer relation)."""

    traveler: str
    fno: int
    block: int


@dataclass
class TripRequest:
    """A high-level coordination request as the web front end would pose it.

    ``flight_partners`` / ``hotel_partners`` list the friends this user wants
    to coordinate the respective reservation with; empty means "book for me
    alone".  ``adjacent_seats`` additionally coordinates on a seat block.
    """

    user: str
    destination: str
    flight_partners: tuple[str, ...] = ()
    hotel_partners: tuple[str, ...] = ()
    book_flight: bool = True
    book_hotel: bool = False
    adjacent_seats: bool = False
    max_flight_price: Optional[float] = None
    max_hotel_price: Optional[float] = None
    depart_date: Optional[str] = None
    min_hotel_stars: Optional[int] = None


@dataclass(frozen=True)
class BookingConfirmation:
    """What the user sees once a coordination request has been answered."""

    user: str
    flight: Optional[FlightBooking] = None
    hotel: Optional[HotelBooking] = None
    seat: Optional[SeatAssignment] = None
    coordinated_with: tuple[str, ...] = ()
