"""The travel application's middle tier.

This is the application logic of the demo's first application: "searching for
flights and hotels, selecting specific flights and hotels, and to create and
coordinate new travel reservations based on the user's list of friends"
(Section 2.2).  High-level requests (``TripRequest``) are translated into
entangled queries via :class:`~repro.core.compiler.EntangledQueryBuilder` and
submitted through the transport-agnostic coordination service
(:class:`~repro.service.CoordinationService`); confirmed answers are read back
from the ``Reservation`` / ``HotelReservation`` / ``SeatBlock`` answer
relations.  Group bookings go through ``submit_many`` so the whole party is
registered and coordinated in a single batch pass.

The service also registers side-effect hooks so that every confirmed
reservation atomically decrements the corresponding inventory (flight seats,
hotel rooms, seat-block capacity) inside the joint-execution transaction.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Union

from repro.apps.travel.models import (
    BookingConfirmation,
    Flight,
    FlightBooking,
    Hotel,
    HotelBooking,
    SeatAssignment,
    TripRequest,
)
from repro.apps.travel.notifications import Mailbox
from repro.apps.travel.social import FriendGraph
from repro.core.compiler import EntangledQueryBuilder, var
from repro.core.coordinator import QueryStatus
from repro.core.system import YoutopiaSystem
from repro.errors import BookingError, UnknownUserError
from repro.relalg.engine import QueryEngine
from repro.service.api import SubmitRequest
from repro.service.handles import RequestHandle
from repro.service.inprocess import InProcessService


def _sql_quote(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


class TravelService:
    """Middle-tier facade for the coordinated travel web site.

    Accepts either a raw :class:`~repro.core.system.YoutopiaSystem` (wrapped
    into an :class:`~repro.service.InProcessService`) or an in-process service
    directly.  All query/submit/answer traffic flows through the
    :class:`~repro.service.CoordinationService` protocol; the inventory hooks,
    mailbox subscription and partner lookup additionally need the in-process
    extras (``register_side_effect``, ``subscribe``,
    :class:`~repro.service.IntrospectionService`\\ 's ``request``), so a pure
    remote transport would have to provide those before it could host this
    middle tier.
    """

    def __init__(
        self,
        system: Union[YoutopiaSystem, InProcessService],
        friends: Optional[FriendGraph] = None,
        mailbox: Optional[Mailbox] = None,
        enforce_friendship: bool = True,
        manage_inventory: bool = True,
    ) -> None:
        if isinstance(system, YoutopiaSystem):
            self.service: InProcessService = system.service()
            self.system: Optional[YoutopiaSystem] = system
        else:
            self.service = system
            self.system = getattr(system, "system", None)
        self.friends = friends
        self.mailbox = mailbox or Mailbox(self.service)
        self.enforce_friendship = enforce_friendship and friends is not None
        if manage_inventory:
            self._register_inventory_hooks()

    # -- inventory side effects --------------------------------------------------------------

    def _register_inventory_hooks(self) -> None:
        def decrement_seats(_relation: str, values: tuple[Any, ...], engine: QueryEngine) -> None:
            fno = values[1]
            engine.execute(f"UPDATE Flights SET seats = seats - 1 WHERE fno = {int(fno)}")

        def decrement_rooms(_relation: str, values: tuple[Any, ...], engine: QueryEngine) -> None:
            hid = values[1]
            engine.execute(f"UPDATE Hotels SET rooms = rooms - 1 WHERE hid = {int(hid)}")

        def decrement_block(_relation: str, values: tuple[Any, ...], engine: QueryEngine) -> None:
            fno, block = values[1], values[2]
            engine.execute(
                "UPDATE Seats SET seats_free = seats_free - 1 "
                f"WHERE fno = {int(fno)} AND block_id = {int(block)}"
            )

        self.service.register_side_effect(decrement_seats, relation="Reservation")
        self.service.register_side_effect(decrement_rooms, relation="HotelReservation")
        self.service.register_side_effect(decrement_block, relation="SeatBlock")

    # -- search & browse ------------------------------------------------------------------------

    def search_flights(
        self,
        dest: str,
        depart_date: Optional[str] = None,
        max_price: Optional[float] = None,
    ) -> list[Flight]:
        conditions = [f"dest = {_sql_quote(dest)}", "seats > 0"]
        if depart_date is not None:
            conditions.append(f"depart_date = {_sql_quote(depart_date)}")
        if max_price is not None:
            conditions.append(f"price <= {float(max_price)}")
        result = self.service.query(
            "SELECT fno, origin, dest, depart_date, price, seats, airline FROM Flights "
            f"WHERE {' AND '.join(conditions)} ORDER BY price"
        )
        return [Flight(*row) for row in result.rows]

    def search_hotels(
        self,
        city: str,
        max_price: Optional[float] = None,
        min_stars: Optional[int] = None,
    ) -> list[Hotel]:
        conditions = [f"city = {_sql_quote(city)}", "rooms > 0"]
        if max_price is not None:
            conditions.append(f"price <= {float(max_price)}")
        if min_stars is not None:
            conditions.append(f"stars >= {int(min_stars)}")
        result = self.service.query(
            "SELECT hid, city, name, price, rooms, stars FROM Hotels "
            f"WHERE {' AND '.join(conditions)} ORDER BY price"
        )
        return [Hotel(*row) for row in result.rows]

    def flight(self, fno: int) -> Flight:
        result = self.service.query(
            "SELECT fno, origin, dest, depart_date, price, seats, airline FROM Flights "
            f"WHERE fno = {int(fno)}"
        )
        if not result.rows:
            raise BookingError(f"no flight with number {fno}")
        return Flight(*result.rows[0])

    def friends_of(self, user: str) -> list[str]:
        """The friend list the demo imports through the Facebook API."""
        if self.friends is None:
            return []
        return self.friends.friends_of(user)

    def friends_on_flight(self, user: str, fno: int) -> list[str]:
        """Which of the user's friends already hold a booking on ``fno``."""
        booked = {
            traveler
            for traveler, booked_fno in self.service.answers("Reservation")
            if booked_fno == fno
        }
        return sorted(booked & set(self.friends_of(user)))

    def browse_flights_with_friends(self, user: str, dest: str) -> list[tuple[Flight, list[str]]]:
        """The alternate path of Figure 4: browse flights and see friends' bookings."""
        return [
            (flight, self.friends_on_flight(user, flight.fno))
            for flight in self.search_flights(dest)
        ]

    def bookings_of(self, user: str) -> BookingConfirmation:
        """The demo's "account view": everything currently booked for a user."""
        flight_rows = [
            FlightBooking(traveler, fno)
            for traveler, fno in self.service.answers("Reservation")
            if traveler == user
        ]
        hotel_rows = [
            HotelBooking(traveler, hid)
            for traveler, hid in self.service.answers("HotelReservation")
            if traveler == user
        ]
        seat_rows = [
            SeatAssignment(traveler, fno, block)
            for traveler, fno, block in self.service.answers("SeatBlock")
            if traveler == user
        ]
        return BookingConfirmation(
            user=user,
            flight=flight_rows[-1] if flight_rows else None,
            hotel=hotel_rows[-1] if hotel_rows else None,
            seat=seat_rows[-1] if seat_rows else None,
        )

    # -- validation -------------------------------------------------------------------------------

    def _check_partners(self, user: str, partners: Iterable[str]) -> None:
        if not self.enforce_friendship or self.friends is None:
            return
        if not self.friends.has_user(user):
            raise UnknownUserError(user)
        for partner in partners:
            if partner == user:
                raise BookingError("a user cannot coordinate with themselves")
            if not self.friends.are_friends(user, partner):
                raise BookingError(
                    f"{user!r} and {partner!r} are not friends; coordination requests "
                    "can only target the user's friend list"
                )

    # -- building entangled queries ---------------------------------------------------------------------

    def build_trip_query(self, trip: TripRequest):
        """Translate a :class:`TripRequest` into a compiled entangled query."""
        if not trip.book_flight and not trip.book_hotel:
            raise BookingError("a trip request must book a flight, a hotel, or both")
        self._check_partners(trip.user, set(trip.flight_partners) | set(trip.hotel_partners))

        builder = EntangledQueryBuilder(owner=trip.user)

        if trip.book_flight:
            flight_conditions = [f"dest = {_sql_quote(trip.destination)}", "seats > 0"]
            if trip.max_flight_price is not None:
                flight_conditions.append(f"price <= {float(trip.max_flight_price)}")
            if trip.depart_date is not None:
                flight_conditions.append(f"depart_date = {_sql_quote(trip.depart_date)}")
            builder.head("Reservation", trip.user, var("fno"))
            builder.domain(
                "fno",
                f"SELECT fno FROM Flights WHERE {' AND '.join(flight_conditions)}",
            )
            for partner in trip.flight_partners:
                builder.require("Reservation", partner, var("fno"))

            if trip.adjacent_seats:
                party_size = len(trip.flight_partners) + 1
                builder.head("SeatBlock", trip.user, var("fno"), var("block_id"))
                builder.domain(
                    ("fno", "block_id"),
                    "SELECT s.fno, s.block_id FROM Seats s JOIN Flights f ON s.fno = f.fno "
                    f"WHERE f.dest = {_sql_quote(trip.destination)} "
                    f"AND s.seats_free >= {party_size}",
                )
                for partner in trip.flight_partners:
                    builder.require("SeatBlock", partner, var("fno"), var("block_id"))

        if trip.book_hotel:
            hotel_conditions = [f"city = {_sql_quote(trip.destination)}", "rooms > 0"]
            if trip.max_hotel_price is not None:
                hotel_conditions.append(f"price <= {float(trip.max_hotel_price)}")
            if trip.min_hotel_stars is not None:
                hotel_conditions.append(f"stars >= {int(trip.min_hotel_stars)}")
            builder.head("HotelReservation", trip.user, var("hid"))
            builder.domain(
                "hid",
                f"SELECT hid FROM Hotels WHERE {' AND '.join(hotel_conditions)}",
            )
            for partner in trip.hotel_partners:
                builder.require("HotelReservation", partner, var("hid"))

        return builder.build()

    # -- submitting requests ----------------------------------------------------------------------------

    def request_trip(self, trip: TripRequest) -> RequestHandle:
        """Build and submit the entangled query for a trip request."""
        query = self.build_trip_query(trip)
        return self.service.submit(SubmitRequest(query=query, owner=trip.user))

    def book_flight(self, user: str, fno: int) -> RequestHandle:
        """Book a specific flight directly (no coordination partners).

        This is the "he can go ahead and make his own booking directly through
        the system" path of the first demo scenario.  The request is still an
        entangled query (so it lands in the ``Reservation`` answer relation and
        decrements inventory atomically), it simply has no coordination
        constraints and is therefore answered immediately.
        """
        flight = self.flight(fno)
        if flight.is_full:
            raise BookingError(f"flight {fno} is fully booked")
        query = (
            EntangledQueryBuilder(owner=user)
            .head("Reservation", user, var("fno"))
            .domain("fno", f"SELECT fno FROM Flights WHERE fno = {int(fno)} AND seats > 0")
            .build()
        )
        handle = self.service.submit(SubmitRequest(query=query, owner=user))
        if handle.status is not QueryStatus.ANSWERED:
            raise BookingError(f"direct booking of flight {fno} unexpectedly did not complete")
        return handle

    def request_flight_with_friend(
        self,
        user: str,
        friend: str,
        dest: str,
        max_price: Optional[float] = None,
        depart_date: Optional[str] = None,
        adjacent_seats: bool = False,
    ) -> RequestHandle:
        """Scenario "Book a flight with a friend" (demo Section 3.1, Figures 3-4)."""
        trip = TripRequest(
            user=user,
            destination=dest,
            flight_partners=(friend,),
            max_flight_price=max_price,
            depart_date=depart_date,
            adjacent_seats=adjacent_seats,
        )
        return self.request_trip(trip)

    def request_flight_and_hotel_with_friend(
        self,
        user: str,
        friend: str,
        dest: str,
        max_flight_price: Optional[float] = None,
        max_hotel_price: Optional[float] = None,
        min_hotel_stars: Optional[int] = None,
    ) -> RequestHandle:
        """Scenario "Book a flight and a hotel with a friend" (Section 3.1)."""
        trip = TripRequest(
            user=user,
            destination=dest,
            flight_partners=(friend,),
            hotel_partners=(friend,),
            book_hotel=True,
            max_flight_price=max_flight_price,
            max_hotel_price=max_hotel_price,
            min_hotel_stars=min_hotel_stars,
        )
        return self.request_trip(trip)

    def request_group_flight(
        self,
        user: str,
        companions: Sequence[str],
        dest: str,
        max_price: Optional[float] = None,
    ) -> RequestHandle:
        """One member's request in the "Group flight booking" scenario."""
        trip = TripRequest(
            user=user,
            destination=dest,
            flight_partners=tuple(companions),
            max_flight_price=max_price,
        )
        return self.request_trip(trip)

    def submit_group_flight(
        self, members: Sequence[str], dest: str, max_price: Optional[float] = None
    ) -> dict[str, RequestHandle]:
        """Submit the whole group's requests (each member requires all others).

        The group goes through ``submit_many``: one batch registration, one
        coordination pass for the whole party instead of one per member.
        """
        trips = [
            TripRequest(
                user=member,
                destination=dest,
                flight_partners=tuple(other for other in members if other != member),
                max_flight_price=max_price,
            )
            for member in members
        ]
        return self._submit_group(members, trips)

    def submit_group_flight_hotel(
        self, members: Sequence[str], dest: str
    ) -> dict[str, RequestHandle]:
        """The "Group flight and hotel booking" scenario (batched)."""
        trips = [
            TripRequest(
                user=member,
                destination=dest,
                flight_partners=tuple(other for other in members if other != member),
                hotel_partners=tuple(other for other in members if other != member),
                book_hotel=True,
            )
            for member in members
        ]
        return self._submit_group(members, trips)

    def _submit_group(
        self, members: Sequence[str], trips: Sequence[TripRequest]
    ) -> dict[str, RequestHandle]:
        if len(members) < 2:
            raise BookingError("a group booking needs at least two members")
        submissions = [
            SubmitRequest(query=self.build_trip_query(trip), owner=trip.user, tag=trip.user)
            for trip in trips
        ]
        handles = self.service.submit_many(submissions)
        return {member: handle for member, handle in zip(members, handles)}

    # -- reading back results ---------------------------------------------------------------------------

    def confirmation_for(self, request: RequestHandle) -> Optional[BookingConfirmation]:
        """Turn an answered coordination request into a booking confirmation."""
        if request.status is not QueryStatus.ANSWERED or request.answer is None:
            return None
        flight: Optional[FlightBooking] = None
        hotel: Optional[HotelBooking] = None
        seat: Optional[SeatAssignment] = None
        for relation, values in request.answer.all_tuples():
            lowered = relation.lower()
            if lowered == "reservation":
                flight = FlightBooking(values[0], values[1])
            elif lowered == "hotelreservation":
                hotel = HotelBooking(values[0], values[1])
            elif lowered == "seatblock":
                seat = SeatAssignment(values[0], values[1], values[2])
        partners = tuple(
            self.service.request(query_id).owner or query_id
            for query_id in request.group_query_ids
            if query_id != request.query_id
        )
        return BookingConfirmation(
            user=request.owner or "",
            flight=flight,
            hotel=hotel,
            seat=seat,
            coordinated_with=partners,
        )

    def notifications_for(self, user: str):
        """The user's "Facebook messages" about completed coordinations."""
        return self.mailbox.messages_for(user)
