"""Notification mailbox — the stand-in for the demo's Facebook messages.

"Jerry is notified of the success of his request via a Facebook message."
The mailbox subscribes to the coordination event bus and turns
``QUERY_ANSWERED`` (and cancellation / rejection) events into per-user
messages that the travel application's account view can display.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from repro.core.events import Event, EventType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import YoutopiaSystem
    from repro.service.inprocess import InProcessService


@dataclass(frozen=True)
class Notification:
    """One message delivered to a user's mailbox."""

    recipient: str
    subject: str
    body: str
    query_id: Optional[str] = None
    timestamp: float = field(default_factory=time.time)


class Mailbox:
    """Collects coordination notifications per user."""

    def __init__(self, system: Union["YoutopiaSystem", "InProcessService"]) -> None:
        self._system = system
        self._messages: dict[str, list[Notification]] = {}
        system.subscribe(self._on_event)

    # -- event handling ----------------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        if event.type is EventType.QUERY_ANSWERED:
            owner = event.payload.get("owner")
            if not owner:
                return
            tuples = event.payload.get("tuples", {})
            described = "; ".join(
                f"{relation}: {', '.join(str(values) for values in rows)}"
                for relation, rows in sorted(tuples.items())
            )
            group = event.payload.get("group", [])
            self._deliver(
                Notification(
                    recipient=owner,
                    subject="Your coordinated reservation is confirmed",
                    body=(
                        f"Your request {event.query_id} was answered jointly with "
                        f"{len(group) - 1} other request(s). Reserved: {described}."
                    ),
                    query_id=event.query_id,
                )
            )
        elif event.type is EventType.QUERY_CANCELLED:
            owner = event.payload.get("owner")
            if owner:
                self._deliver(
                    Notification(
                        recipient=owner,
                        subject="Your coordination request was withdrawn",
                        body=f"Request {event.query_id} was cancelled before it could be matched.",
                        query_id=event.query_id,
                    )
                )

    def _deliver(self, notification: Notification) -> None:
        self._messages.setdefault(notification.recipient, []).append(notification)

    # -- reading ------------------------------------------------------------------------

    def messages_for(self, user: str) -> list[Notification]:
        return list(self._messages.get(user, []))

    def unread_count(self, user: str) -> int:
        return len(self._messages.get(user, []))

    def clear(self, user: str) -> None:
        self._messages.pop(user, None)
