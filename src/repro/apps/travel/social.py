"""Synthetic social graph — the stand-in for the demo's Facebook integration.

The demo imports the user's friend list "using the Facebook API" and sends
success notifications "via a Facebook message".  Friend data is only used to
pick coordination partners, so any graph over the user population exercises
the same entangled-query code path; this module provides a deterministic
synthetic friend graph (optionally exportable to :mod:`networkx` for
inspection or plotting).
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Iterable, Iterator, Sequence

from repro.errors import UnknownUserError


class FriendGraph:
    """An undirected friendship graph over usernames."""

    def __init__(self, users: Iterable[str] = ()) -> None:
        self._adjacency: dict[str, set[str]] = {}
        for user in users:
            self.add_user(user)

    # -- construction ---------------------------------------------------------------

    def add_user(self, username: str) -> None:
        self._adjacency.setdefault(username, set())

    def add_friendship(self, left: str, right: str) -> None:
        if left == right:
            raise ValueError("a user cannot befriend themselves")
        self.add_user(left)
        self.add_user(right)
        self._adjacency[left].add(right)
        self._adjacency[right].add(left)

    def remove_friendship(self, left: str, right: str) -> None:
        self._adjacency.get(left, set()).discard(right)
        self._adjacency.get(right, set()).discard(left)

    # -- queries ----------------------------------------------------------------------

    def users(self) -> list[str]:
        return sorted(self._adjacency)

    def has_user(self, username: str) -> bool:
        return username in self._adjacency

    def friends_of(self, username: str) -> list[str]:
        """The friend list shown by the demo's "choose a friend" screen."""
        if username not in self._adjacency:
            raise UnknownUserError(username)
        return sorted(self._adjacency[username])

    def are_friends(self, left: str, right: str) -> bool:
        return right in self._adjacency.get(left, set())

    def mutual_friends(self, left: str, right: str) -> list[str]:
        return sorted(self._adjacency.get(left, set()) & self._adjacency.get(right, set()))

    def friend_pairs(self) -> Iterator[tuple[str, str]]:
        """Every friendship exactly once (lexicographically ordered pairs)."""
        for user, friends in sorted(self._adjacency.items()):
            for friend in sorted(friends):
                if user < friend:
                    yield (user, friend)

    def __len__(self) -> int:
        return len(self._adjacency)

    # -- interoperability -----------------------------------------------------------------

    def to_networkx(self):  # pragma: no cover - thin convenience wrapper
        """Export to a :class:`networkx.Graph` (networkx ships with the env)."""
        import networkx

        graph = networkx.Graph()
        graph.add_nodes_from(self.users())
        graph.add_edges_from(self.friend_pairs())
        return graph


def generate_friend_graph(
    usernames: Sequence[str],
    average_friends: int = 4,
    seed: int = 0,
) -> FriendGraph:
    """Generate a connected random friendship graph.

    A ring over the users guarantees connectivity (so any two users have a
    friendship path, as on a real social network); additional random edges
    bring the average degree up to ``average_friends``.
    """
    rng = random.Random(seed)
    graph = FriendGraph(usernames)
    users = list(usernames)
    if len(users) < 2:
        return graph

    for index, user in enumerate(users):
        graph.add_friendship(user, users[(index + 1) % len(users)])

    target_edges = max(len(users), (average_friends * len(users)) // 2)
    attempts = 0
    while len(list(graph.friend_pairs())) < target_edges and attempts < 20 * target_edges:
        attempts += 1
        left, right = rng.sample(users, 2)
        graph.add_friendship(left, right)
    return graph
