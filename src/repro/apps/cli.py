"""SQL command-line interface (demo application #2).

"Our second application is an SQL command line interface which allows SQL and
entangled queries to be input directly to the system by the user."

The :class:`CommandLine` class is fully scriptable (``run_line`` /
``run_script`` return the printed text), which is how the integration tests
and the ``examples/cli_session.py`` example drive it; :func:`main` wraps it in
an interactive read-eval-print loop.  All statement traffic flows through the
coordination service layer, so the same shell drives an in-process system
(:class:`~repro.service.InProcessService`) or a remote one
(:class:`~repro.service.remote.RemoteService`).  Deep-introspection
dot-commands (``.schema``, ``.explain``, ``.describe``, ``.graph``) reach
into the in-process system the service wraps and report themselves as
unavailable over a network connection.

Sub-commands of :func:`main`:

* ``youtopia-cli`` — interactive shell on a fresh in-process system;
* ``youtopia-cli serve [--host] [--port] [--seed] [--script file.sql]`` —
  host a :class:`~repro.service.remote.CoordinationServer` (with
  ``--cluster-node I/N`` to serve as a cluster member, or ``--standby-of
  HOST:PORT`` to serve as a WAL-shipped read-only standby);
* ``youtopia-cli router --node HOST:PORT [--node ...]`` — run the
  shard-routing cluster gateway (:class:`repro.cluster.ClusterRouter`);
* ``youtopia-cli connect [--host] [--port]`` — shell against a remote server.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.core.config import SystemConfig
from repro.core.coordinator import QueryStatus
from repro.core.system import YoutopiaSystem
from repro.errors import YoutopiaError
from repro.service.aio import BackgroundAsyncServer, BridgedService, connect_bridged
from repro.service.api import RelationResult
from repro.service.inprocess import InProcessService
from repro.service.remote import CoordinationServer, RemoteService

_HELP_TEXT = """\
Youtopia SQL command line.
Plain SQL statements and entangled queries (SELECT ... INTO ANSWER ... CHOOSE k)
are executed directly.  Dot-commands:
  .help                 show this help
  .tables               list tables in the catalog
  .schema NAME          show the columns of a table
  .pending              list pending entangled queries
  .describe QUERY_ID    show a query's internal representation and analysis
  .graph                show the potential-match graph over pending queries
  .answers RELATION     show the contents of an answer relation
  .requests             list all coordination requests and their status
  .stats                show coordination statistics
  .explain SELECT ...   show the optimized plan of a plain SELECT
  .retry                re-attempt matching for all pending queries
  .cancel QUERY_ID      withdraw a pending entangled query
  .user NAME            set the owner attached to subsequent entangled queries
  .quit                 leave the shell
"""


def format_result_table(columns: list[str], rows: list[tuple]) -> str:
    """Render a result set as a fixed-width text table."""
    if not columns:
        return "(no columns)"
    rendered_rows = [[("" if value is None else str(value)) for value in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    lines = [header, separator]
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    lines.append(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
    return "\n".join(lines)


class CommandLine:
    """A scriptable Youtopia shell bound to one coordination service."""

    def __init__(
        self,
        system: Optional[
            Union[YoutopiaSystem, InProcessService, RemoteService, BridgedService]
        ] = None,
        user: Optional[str] = None,
    ) -> None:
        if system is None:
            self.service = InProcessService()
        elif isinstance(system, YoutopiaSystem):
            self.service = system.service()
        else:
            self.service = system
        # None when the service is a network proxy: deep-introspection
        # dot-commands need the in-process system and degrade gracefully.
        self.system = getattr(self.service, "system", None)
        self.user = user
        self.done = False

    # -- command dispatch ---------------------------------------------------------------

    def run_line(self, line: str) -> str:
        """Execute one input line and return the text to display."""
        stripped = line.strip()
        if not stripped:
            return ""
        try:
            if stripped.startswith("."):
                return self._run_dot_command(stripped)
            return self._run_sql(stripped)
        except YoutopiaError as exc:
            return f"error: {exc}"

    def run_script(self, lines: Iterable[str]) -> list[str]:
        """Run several input lines, returning one output string per line."""
        return [self.run_line(line) for line in lines]

    # -- SQL ------------------------------------------------------------------------------

    def _run_sql(self, sql: str) -> str:
        outputs: list[str] = []
        for result in self.service.execute_script(sql, owner=self.user):
            if isinstance(result, RelationResult):
                outputs.append(self._format_query_result(result))
            else:  # a handle — in-process RequestHandle or RemoteHandle
                outputs.append(self._format_request(result))
        return "\n".join(output for output in outputs if output)

    @staticmethod
    def _format_query_result(result: RelationResult) -> str:
        if result.command == "SELECT":
            return format_result_table(result.columns, result.rows)
        if result.command in ("INSERT", "UPDATE", "DELETE"):
            return f"{result.command}: {result.affected} row(s) affected"
        return f"{result.command}: ok"

    @staticmethod
    def _format_request(request) -> str:
        if request.status is QueryStatus.ANSWERED and request.answer is not None:
            tuples = ", ".join(
                f"{relation}{values}" for relation, values in request.answer.all_tuples()
            )
            return (
                f"entangled query {request.query_id} ANSWERED jointly with "
                f"{len(request.group_query_ids) - 1} other quer(y/ies): {tuples}"
            )
        return (
            f"entangled query {request.query_id} registered and PENDING "
            "(waiting for matching queries)"
        )

    # -- dot commands ------------------------------------------------------------------------

    def _run_dot_command(self, command: str) -> str:
        parts = command.split()
        name = parts[0].lower()
        argument = parts[1] if len(parts) > 1 else None

        if name in (".quit", ".exit"):
            self.done = True
            return "bye"
        if name == ".help":
            return _HELP_TEXT
        if self.system is None and name in (".tables", ".schema", ".describe", ".graph", ".explain"):
            return (
                f"{name} needs the in-process system and is not available "
                "over a remote connection"
            )
        if name == ".tables":
            return "\n".join(self.system.database.table_names())
        if name == ".schema":
            if argument is None:
                return "usage: .schema TABLE"
            schema = self.system.database.schema(argument)
            lines = [
                f"{column.name} {column.type.value}" + ("" if column.nullable else " NOT NULL")
                for column in schema.columns
            ]
            if schema.primary_key:
                lines.append(f"PRIMARY KEY ({', '.join(schema.primary_key)})")
            return "\n".join(lines)
        if name == ".pending":
            pending = self.service.pending_queries()
            if not pending:
                return "(no pending entangled queries)"
            return "\n".join(f"{query.query_id} [{query.owner}]: {query.describe()}" for query in pending)
        if name == ".describe":
            if argument is None:
                return "usage: .describe QUERY_ID"
            from repro.apps.admin import AdminInterface

            return AdminInterface(self.service).describe_query(argument)
        if name == ".graph":
            from repro.apps.admin import AdminInterface

            return AdminInterface(self.service).match_graph_text()
        if name == ".explain":
            statement_text = command[len(".explain"):].strip()
            if not statement_text:
                return "usage: .explain SELECT ..."
            return self.system.engine.explain(statement_text)
        if name == ".answers":
            if argument is None:
                return "usage: .answers RELATION"
            tuples = self.service.answers(argument)
            if self.system is not None:
                columns = list(self.system.database.schema(argument).column_names)
            else:  # remote connection: the catalog is server-side
                columns = [f"c{index}" for index in range(len(tuples[0]))] if tuples else []
            return format_result_table(columns, tuples)
        if name == ".requests":
            requests = self.service.requests()
            if not requests:
                return "(no coordination requests)"
            return "\n".join(
                f"{request.query_id} [{request.owner}]: {request.status.value}"
                for request in requests
            )
        if name == ".stats":
            stats = self.service.stats()
            lines = [f"{key} = {value}" for key, value in sorted(stats.as_dict().items())]
            matching = dict(stats.matching)
            if matching:
                lines.append(
                    "match_policy = {policy} (limit={limit}, decisions={decisions}, "
                    "enumerated={enumerated}, skipped={skipped})".format(
                        policy=matching.get("policy"),
                        limit=matching.get("candidate_limit"),
                        decisions=matching.get("decisions", 0),
                        enumerated=matching.get("groups_enumerated", 0),
                        skipped=matching.get("groups_skipped", 0),
                    )
                )
            if matching.get("match_plan"):
                lines.append(
                    "match_plan = {plan} (index={index}, plans_cached={cached}, "
                    "pair_ops_hits={pair_hits})".format(
                        plan=matching.get("match_plan"),
                        index=matching.get("provider_index"),
                        cached=matching.get("plans_cached", 0),
                        pair_hits=matching.get("pair_ops_hits", 0),
                    )
                )
            tiering = dict(stats.tiering)
            if tiering.get("enabled"):
                lines.append(
                    "tiering = {policy}/{backend} (limit={limit}, hot={hot}, "
                    "cold={cold}, evictions={evictions}, page_ins={page_ins})".format(
                        policy=tiering.get("eviction_policy"),
                        backend=tiering.get("backend"),
                        limit=tiering.get("memory_limit"),
                        hot=tiering.get("hot", 0),
                        cold=tiering.get("cold", 0),
                        evictions=tiering.get("evictions", 0),
                        page_ins=tiering.get("page_ins", 0),
                    )
                )
            return "\n".join(lines)
        if name == ".retry":
            answered = self.service.retry_pending()
            return f"retried pending queries; {answered} newly answered"
        if name == ".cancel":
            if argument is None:
                return "usage: .cancel QUERY_ID"
            self.service.cancel(argument)
            return f"cancelled {argument}"
        if name == ".user":
            self.user = argument
            return f"entangled queries will now be owned by {argument!r}"
        return f"unknown command {name!r} (try .help)"


def build_parser() -> argparse.ArgumentParser:
    """The ``youtopia-cli`` argument parser (separate for testability)."""
    parser = argparse.ArgumentParser(
        prog="youtopia-cli",
        description="Youtopia SQL shell, coordination server, and remote client.",
    )
    commands = parser.add_subparsers(dest="command")

    serve = commands.add_parser("serve", help="host a coordination service over TCP")
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve.add_argument("--port", type=int, default=7399, help="port to bind (0 = ephemeral)")
    serve.add_argument(
        "--transport",
        choices=["threaded", "asyncio"],
        default="threaded",
        help="request plane: classic thread-per-connection server, or the "
        "single-event-loop asyncio server (same wire protocol; any client "
        "connects to either)",
    )
    serve.add_argument("--seed", type=int, default=None, help="CHOOSE tie-break seed")
    serve.add_argument(
        "--script", default=None, help="SQL script to run before serving (schema + data)"
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        help="durability directory (WAL + snapshots); restarting over the same "
        "directory recovers pending queries, answers and base data",
    )
    serve.add_argument(
        "--fsync-policy",
        choices=["always", "batch", "never"],
        default="batch",
        help="when WAL appends are forced to disk (needs --data-dir)",
    )
    serve.add_argument(
        "--snapshot-interval",
        type=int,
        default=1000,
        help="WAL records between automatic snapshots; 0 disables (needs --data-dir)",
    )
    serve.add_argument(
        "--match-policy",
        choices=["first_match", "priority", "fairness", "min_cost"],
        default="first_match",
        help="how the coordinator chooses among candidate match groups: "
        "first_match (classic first discovered group), priority (maximise "
        "summed SubmitRequest priorities), fairness (serve the "
        "longest-waiting member), min_cost (minimise the summed cost "
        "attribute over chosen valuations)",
    )
    serve.add_argument(
        "--policy-candidate-limit",
        type=int,
        default=16,
        help="max candidate groups a non-first_match policy enumerates per "
        "match attempt",
    )
    serve.add_argument(
        "--match-plan",
        choices=["compiled", "interpreted"],
        default="compiled",
        help="structural matching execution: compiled (precompiled slot-"
        "indexed match plans, the default) or interpreted (per-attempt term "
        "interpretation, the differential-testing reference)",
    )
    serve.add_argument(
        "--provider-index",
        choices=["grid", "single_key"],
        default="grid",
        help="provider index backing candidate pruning: grid (multi-attribute "
        "per-column buckets, the default) or single_key (classic single-"
        "attribute refinement)",
    )
    serve.add_argument(
        "--pending-memory-limit",
        type=int,
        default=None,
        metavar="N",
        help="max pending queries resident in shard memory; colder queries "
        "spill to the --cold-store backend and page back in on candidate "
        "hits (default: unlimited, tiering off)",
    )
    serve.add_argument(
        "--cold-store",
        default="sqlite",
        help="storage backend scheme for spilled pending queries (needs "
        "--pending-memory-limit); built-in: sqlite (durable, file-backed "
        "under --data-dir), memory (process-local, for testing)",
    )
    serve.add_argument(
        "--eviction-policy",
        choices=["lru", "fifo"],
        default="lru",
        help="which hot pending query spills when the memory limit is hit: "
        "lru (least recently touched by a match probe) or fifo (oldest "
        "arrival)",
    )
    serve.add_argument(
        "--cluster-node",
        default=None,
        metavar="I/N",
        help="serve as member I of an N-node cluster (0-based; purely "
        "observability — routing is the router's job, but stats and the "
        "admin screen then report the node's role)",
    )
    serve.add_argument(
        "--standby-of",
        default=None,
        metavar="HOST:PORT",
        help="serve as a WAL-shipped standby of the primary at HOST:PORT: "
        "read-only until promoted, state replayed live from the primary's "
        "log (incompatible with --data-dir and --script)",
    )

    router = commands.add_parser(
        "router", help="run a shard-routing gateway in front of cluster nodes"
    )
    router.add_argument("--host", default="127.0.0.1", help="interface to bind")
    router.add_argument("--port", type=int, default=7399, help="port to bind (0 = ephemeral)")
    router.add_argument(
        "--node",
        dest="nodes",
        action="append",
        default=None,
        metavar="HOST:PORT",
        required=True,
        help="a member node's address; repeat once per node — order defines "
        "the placement indices (cross-node signatures take up residence at "
        "a node hashed from the signature)",
    )
    router.add_argument(
        "--standby",
        dest="standbys",
        action="append",
        default=None,
        metavar="IDX=HOST:PORT",
        help="a standby serving node IDX's shipped WAL; the router promotes "
        "it automatically when the node fails (repeatable)",
    )
    router.add_argument(
        "--shards",
        type=int,
        default=None,
        help="relation shard count (default: the node count; must be a "
        "multiple of it so shard and node routing agree)",
    )
    router.add_argument(
        "--reshard",
        action="store_true",
        help="after rebuilding the registry from the nodes, relocate every "
        "live query to its placement under this (changed) --node list; "
        "pass the SAME --shards value as before — the shard count is the "
        "resharding invariant and must stay a multiple of the node count",
    )

    connect = commands.add_parser("connect", help="open a shell against a remote server")
    connect.add_argument("--host", default="127.0.0.1", help="server host")
    connect.add_argument("--port", type=int, default=7399, help="server port")
    connect.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="connect through the multiplexed asyncio client "
        "(AsyncRemoteService behind a synchronous shell bridge)",
    )
    return parser


def build_server(
    host: str = "127.0.0.1",
    port: int = 7399,
    seed: Optional[int] = None,
    script: Optional[str] = None,
    data_dir: Optional[str] = None,
    fsync_policy: str = "batch",
    snapshot_interval: int = 1000,
    transport: str = "threaded",
    cluster_node: Optional[str] = None,
    standby_of: Optional[str] = None,
    match_policy: str = "first_match",
    policy_candidate_limit: int = 16,
    match_plan: str = "compiled",
    provider_index: str = "grid",
    pending_memory_limit: Optional[int] = None,
    cold_store: str = "sqlite",
    eviction_policy: str = "lru",
) -> Union[CoordinationServer, BackgroundAsyncServer]:
    """Assemble (and start) the server the ``serve`` sub-command runs.

    ``cluster_node`` (``"I/N"``) tags the served system as member ``I`` of an
    ``N``-node cluster in its stats/admin output.  ``standby_of``
    (``"HOST:PORT"``) turns the server into a WAL-shipped read-only standby of
    that primary instead (see :class:`repro.cluster.StandbyServer`); the call
    returns once the bootstrap snapshot is applied.

    ``transport`` selects the request plane: ``"threaded"`` (the classic
    thread-per-connection :class:`~repro.service.remote.CoordinationServer`)
    or ``"asyncio"`` (the single-event-loop
    :class:`~repro.service.aio.AsyncCoordinationServer`, hosted here on a
    background loop thread).  Both speak the same wire protocol, so any
    client connects to either.

    With ``data_dir`` the system journals every state transition to a
    write-ahead log and recovers it on restart.  The ``--script`` bootstrap
    runs exactly once per data directory, tracked by two durable markers:
    ``bootstrap.started`` is written (and fsynced) before the script runs,
    ``bootstrap.done`` after it completed.  A restart sees one of:

    * ``done`` present — bootstrapped; the script is skipped (re-running
      would duplicate the replayed data);
    * ``started`` present without ``done`` — the predecessor provably died
      *mid-bootstrap*; the partial state is wiped and the script redone,
      which is safe because the script runs before the socket opens, so no
      client state can have been acknowledged yet;
    * neither marker but recovered state — the directory predates this
      ``--script``; it is left untouched and the script is skipped with a
      notice (wiping real acknowledged state to apply a bootstrap would be
      data loss).
    """
    if standby_of is not None:
        if data_dir is not None:
            raise ValueError(
                "--standby-of and --data-dir are mutually exclusive: a standby's "
                "state is the primary's shipped WAL, not its own log"
            )
        if script:
            raise ValueError(
                "--standby-of and --script are mutually exclusive: a standby is "
                "read-only until promoted"
            )
        from repro.cluster import StandbyServer

        primary_host, _, primary_port = standby_of.rpartition(":")
        if not primary_host or not primary_port.isdigit():
            raise ValueError(f"--standby-of expects HOST:PORT, got {standby_of!r}")
        standby = StandbyServer(primary_host, int(primary_port), host=host, port=port)
        standby.start()
        standby.wait_caught_up(30.0)
        return standby
    config = SystemConfig(
        seed=seed,
        data_dir=data_dir,
        fsync_policy=fsync_policy,
        snapshot_interval=snapshot_interval,
        match_policy=match_policy,
        policy_candidate_limit=policy_candidate_limit,
        match_plan=match_plan,
        provider_index=provider_index,
        pending_memory_limit=pending_memory_limit,
        cold_store=cold_store,
        eviction_policy=eviction_policy,
    )
    service = InProcessService(config=config)
    if cluster_node is not None:
        index_text, _, count_text = cluster_node.partition("/")
        if not index_text.isdigit() or not count_text.isdigit():
            raise ValueError(f"--cluster-node expects I/N, got {cluster_node!r}")
        service.cluster_info = {
            "role": "node",
            "node": int(index_text),
            "node_count": int(count_text),
        }
    if script:
        service = _bootstrap(service, config, script, data_dir)
    server: Union[CoordinationServer, BackgroundAsyncServer]
    if transport == "asyncio":
        server = BackgroundAsyncServer(
            service=service, host=host, port=port, close_service=True
        )
    else:
        server = CoordinationServer(service=service, host=host, port=port, close_service=True)
    server.start()
    return server


def build_router(
    host: str,
    port: int,
    nodes: list[str],
    standbys: Optional[list[str]] = None,
    shards: Optional[int] = None,
    reshard: bool = False,
):
    """Assemble (and start) the gateway the ``router`` sub-command runs."""
    from repro.cluster import BackgroundClusterRouter, NodeSpec, PlacementMap

    standby_map: dict[int, str] = {}
    for spec in standbys or ():
        index_text, separator, address = spec.partition("=")
        if not separator or not index_text.isdigit():
            raise ValueError(f"--standby expects IDX=HOST:PORT, got {spec!r}")
        standby_map[int(index_text)] = address
    unknown = set(standby_map) - set(range(len(nodes)))
    if unknown:
        raise ValueError(f"--standby names node indices that do not exist: {sorted(unknown)}")
    placement = PlacementMap(
        [
            NodeSpec.parse(index, address, standby_map.get(index))
            for index, address in enumerate(nodes)
        ],
        shard_count=shards,
    )
    router = BackgroundClusterRouter(placement, host=host, port=port, reshard=reshard)
    router.start()
    return router


def _bootstrap(
    service: InProcessService,
    config: SystemConfig,
    script: str,
    data_dir: Optional[str],
) -> InProcessService:
    """Run the ``--script`` bootstrap per the marker protocol (see above)."""

    def run_script(target: InProcessService) -> None:
        with open(script, "r", encoding="utf-8") as handle:
            target.execute_script(handle.read())

    if data_dir is None:  # memory-only serve: nothing to track
        run_script(service)
        return service

    from repro.core.durability import SNAPSHOT_FILE, WAL_FILE, write_durable_marker
    from repro.storage.backends import COLD_STORE_FILE, COLD_STORE_SIDECARS

    done = Path(data_dir) / "bootstrap.done"
    started = Path(data_dir) / "bootstrap.started"
    if done.exists():
        return service
    if service.system.recovered and not started.exists():
        print(
            f"note: {data_dir} holds prior durable state that predates "
            f"--script; the bootstrap script was NOT run",
            flush=True,
        )
        return service
    if started.exists():
        # provably crashed mid-bootstrap: wipe the partial state and redo
        service.close()
        for name in (SNAPSHOT_FILE, WAL_FILE, COLD_STORE_FILE, *COLD_STORE_SIDECARS):
            (Path(data_dir) / name).unlink(missing_ok=True)
        service = InProcessService(config=config)
    write_durable_marker(started)
    run_script(service)
    service.system.checkpoint()
    write_durable_marker(done)
    started.unlink(missing_ok=True)
    return service


def _repl(shell: CommandLine, banner: str) -> int:  # pragma: no cover - interactive loop
    print(banner)
    while not shell.done:
        try:
            line = input("youtopia> ")
        except EOFError:
            break
        output = shell.run_line(line)
        if output:
            print(output)
    return 0


def main(argv: Optional[list[str]] = None) -> int:  # pragma: no cover - interactive entry
    """Entry point (``youtopia-cli [serve|connect]``)."""
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        server = build_server(
            args.host,
            args.port,
            seed=args.seed,
            script=args.script,
            data_dir=args.data_dir,
            fsync_policy=args.fsync_policy,
            snapshot_interval=args.snapshot_interval,
            transport=args.transport,
            cluster_node=args.cluster_node,
            standby_of=args.standby_of,
            match_policy=args.match_policy,
            policy_candidate_limit=args.policy_candidate_limit,
            match_plan=args.match_plan,
            provider_index=args.provider_index,
            pending_memory_limit=args.pending_memory_limit,
            cold_store=args.cold_store,
            eviction_policy=args.eviction_policy,
        )
        transport_label = "standby" if args.standby_of else args.transport
        system = server.service.system
        if system.recovered and system.recovery is not None:
            summary = system.recovery
            print(
                f"recovered durable state from {args.data_dir}: "
                f"{summary.pending_recovered} pending, "
                f"{summary.answered_recovered} answered, "
                f"{summary.records_replayed} log records replayed",
                flush=True,
            )
        host, port = server.address
        print(
            f"youtopia coordination server ({transport_label}) listening on {host}:{port}",
            flush=True,
        )
        try:
            server.wait_stopped()
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            server.stop()
        return 0
    if args.command == "router":
        router = build_router(
            args.host,
            args.port,
            args.nodes,
            args.standbys,
            shards=args.shards,
            reshard=args.reshard,
        )
        host, port = router.address
        print(
            f"youtopia coordination server (cluster-router) listening on {host}:{port}",
            flush=True,
        )
        try:
            router.wait_stopped()
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            router.stop()
        return 0
    if args.command == "connect":
        service: Union[RemoteService, BridgedService]
        if args.use_async:
            service = connect_bridged(args.host, args.port)
            flavour = " (asyncio client)"
        else:
            service = RemoteService.connect(args.host, args.port)
            flavour = ""
        return _repl(
            CommandLine(service),
            f"Youtopia SQL shell — connected to {args.host}:{args.port}{flavour}; "
            ".help for help, .quit to exit",
        )
    return _repl(CommandLine(), "Youtopia SQL shell — type .help for help, .quit to exit")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
