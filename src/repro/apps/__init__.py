"""The three demo applications built on top of Youtopia.

* :mod:`repro.apps.travel` — the coordinated travel web site's middle tier
* :mod:`repro.apps.cli` — the SQL / entangled-SQL command line
* :mod:`repro.apps.admin` — the administrative inspection interface
"""

from repro.apps.admin import AdminInterface
from repro.apps.cli import CommandLine

__all__ = ["AdminInterface", "CommandLine"]
