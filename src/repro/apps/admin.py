"""Administrative interface (demo application #3).

"The third application is an administrative interface which allows us to show
the internal state of the system and to visualize the state created by the
matching algorithms."  This module exposes that internal state as plain Python
structures and as formatted text: the pending-query pool and each query's
intermediate representation, the potential-match graph between pending
queries, answer-relation contents, coordination statistics, the event log and
EXPLAIN output for plain SELECTs.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Optional, Union

from repro.core import ir
from repro.core.coordinator import QueryStatus
from repro.core.events import Event
from repro.core.safety import analyze, mutual_match_possible
from repro.core.system import YoutopiaSystem
from repro.service.inprocess import InProcessService
from repro.apps.cli import format_result_table


@dataclass(frozen=True)
class MatchEdge:
    """A potential coordination edge between two pending queries."""

    left: str
    right: str
    relations: tuple[str, ...]


class AdminInterface:
    """Read-only inspection of a running Youtopia system.

    Talks through the service layer's introspection surface
    (:class:`~repro.service.IntrospectionService`); the deep dumps that are
    inherently in-process (event log, EXPLAIN, table statistics) reach into
    the wrapped system.
    """

    def __init__(self, system: Union[YoutopiaSystem, InProcessService]) -> None:
        if isinstance(system, YoutopiaSystem):
            self.service = system.service()
            self.system = system
        else:
            self.service = system
            self.system = system.system

    # -- pending queries -----------------------------------------------------------------

    def pending_queries(self) -> list[ir.EntangledQuery]:
        return self.service.pending_queries()

    def describe_query(self, query_id: str) -> str:
        """The internal representation of one registered query."""
        request = self.service.request(query_id)
        query = request.query
        report = analyze(query)
        lines = [
            f"query id     : {query.query_id}",
            f"owner        : {query.owner}",
            f"status       : {request.status.value}",
            f"SQL          : {query.sql or '(built programmatically)'}",
            f"IR           : {query.describe()}",
            f"heads        : {', '.join(str(atom) for atom in query.heads)}",
            f"answer atoms : {', '.join(str(atom) for atom in query.answer_atoms) or '(none)'}",
            f"domains      : {', '.join(str(domain) for domain in query.domains) or '(none)'}",
            f"predicates   : {', '.join(str(predicate) for predicate in query.predicates) or '(none)'}",
            f"CHOOSE       : {query.choose}",
            f"safe         : {report.safe}",
            f"origin/unique: {report.unique}",
        ]
        if request.status is QueryStatus.ANSWERED and request.answer is not None:
            lines.append(f"answer       : {request.answer.tuples}")
            lines.append(f"group        : {list(request.group_query_ids)}")
        if report.warnings:
            lines.append("warnings     : " + "; ".join(report.warnings))
        return "\n".join(lines)

    # -- match graph -----------------------------------------------------------------------

    def match_graph(self) -> list[MatchEdge]:
        """Potential-coordination edges between currently pending queries.

        An edge between two pending queries means their answer constraints
        could *structurally* be provided by each other's heads (necessary but
        not sufficient for a match — grounding against the database may still
        fail).  This is the visualization the demo's admin mode shows.
        """
        pending = self.pending_queries()
        edges: list[MatchEdge] = []
        for index, left in enumerate(pending):
            for right in pending[index + 1 :]:
                if not mutual_match_possible(left, right):
                    continue
                shared = sorted(
                    left.answer_relations() & right.answer_relations(),
                    key=str.lower,
                )
                edges.append(MatchEdge(left.query_id, right.query_id, tuple(shared)))
        return edges

    def match_graph_text(self) -> str:
        edges = self.match_graph()
        if not edges:
            return "(no potential matches among pending queries)"
        return "\n".join(
            f"{edge.left} <-> {edge.right}  via {', '.join(edge.relations)}" for edge in edges
        )

    # -- answer relations and tables --------------------------------------------------------------

    def answer_relations(self) -> dict[str, list[tuple]]:
        return {
            name: self.service.answers(name) for name in self.system.answer_relations.names()
        }

    def answer_relation_text(self, relation: str) -> str:
        columns = list(self.system.database.schema(relation).column_names)
        return format_result_table(columns, self.service.answers(relation))

    def table_statistics(self) -> dict[str, int]:
        return self.system.database.statistics()

    # -- statistics and events ----------------------------------------------------------------------

    def statistics(self) -> dict[str, int]:
        return self.service.stats().as_dict()

    def shard_stats(self) -> list[dict[str, int]]:
        """Per-shard pending/index/queue sizes of the coordination component."""
        return [dict(entry) for entry in self.service.stats().shards]

    def shard_text(self) -> str:
        lines = []
        for entry in self.shard_stats():
            label = "global (cross-shard)" if entry.get("cross_shard") else str(entry["shard"])
            lines.append(
                f"shard {label}: pending={entry['pending']} "
                f"index={entry['index_size']} queued={entry['queued_events']} "
                f"dirty={bool(entry['dirty'])}"
            )
        return "\n".join(lines) or "(no shards)"

    def transport_stats(self) -> dict[str, int]:
        """Request-plane counters (empty for a purely in-process service)."""
        return dict(self.service.stats().transport)

    def transport_text(self) -> str:
        stats = self.transport_stats()
        if not stats:
            return "(no transport: in-process service)"
        return "\n".join(
            [
                f"connections: open={stats.get('connections_open')} "
                f"total={stats.get('connections_total')}",
                f"requests: in_flight={stats.get('requests_in_flight')} "
                f"total={stats.get('requests_total')} "
                f"rejected_backpressure={stats.get('rejected_backpressure')}",
                f"traffic: bytes_in={stats.get('bytes_in')} "
                f"bytes_out={stats.get('bytes_out')}",
            ]
        )

    def matching_stats(self) -> dict:
        """The match-policy block of :meth:`ServiceStats` (policy + counters)."""
        return dict(self.service.stats().matching)

    def matching_text(self) -> str:
        stats = self.matching_stats()
        if not stats:
            return "(no matching stats reported)"
        return "\n".join(
            [
                f"policy = {stats.get('policy', 'first_match')} "
                f"(candidate_limit={stats.get('candidate_limit')})",
                f"decisions: total={stats.get('decisions', 0)} "
                f"ties_broken={stats.get('ties_broken', 0)}",
                f"enumeration: groups={stats.get('groups_enumerated', 0)} "
                f"skipped={stats.get('groups_skipped', 0)} "
                f"truncated={stats.get('enumerations_truncated', 0)}",
            ]
        )

    def tiering_stats(self) -> dict:
        """The tiered-pool block of :meth:`ServiceStats` (disabled marker when off)."""
        return dict(self.service.stats().tiering)

    def tiering_text(self) -> str:
        stats = self.tiering_stats()
        if not stats.get("enabled"):
            return "(tiering off: all pending queries resident)"
        return "\n".join(
            [
                f"memory_limit = {stats.get('memory_limit')} "
                f"(eviction_policy={stats.get('eviction_policy')}, "
                f"backend={stats.get('backend')})",
                f"residency: hot={stats.get('hot', 0)} cold={stats.get('cold', 0)} "
                f"peak_hot={stats.get('peak_hot', 0)}",
                f"traffic: evictions={stats.get('evictions', 0)} "
                f"page_ins={stats.get('page_ins', 0)} "
                f"avg_page_in={stats.get('avg_page_in_ms', 0.0)}ms",
            ]
        )

    def cluster_stats(self) -> dict:
        """The cluster block of :meth:`ServiceStats` (empty for single-node)."""
        return dict(self.service.stats().cluster)

    def cluster_text(self) -> str:
        stats = self.cluster_stats()
        if not stats:
            return "(no cluster: single-node deployment)"
        role = stats.get("role", "node")
        lines = [f"role = {role}"]
        if role == "router":
            lines.append(
                f"topology: nodes={stats.get('node_count')} "
                f"shards={stats.get('shard_count')} "
                f"residence={stats.get('residence', 'per-signature')}"
            )
            lines.append(
                f"submits: routed={stats.get('routed_submits')} "
                f"cross_node={stats.get('cross_node_submits')} "
                f"relocations={stats.get('relocations')} "
                f"duplicates_rejected={stats.get('duplicate_rejections')} "
                f"failovers={stats.get('failovers')}"
            )
            lines.append(
                f"recovery: recovered={stats.get('recovered_queries', 0)} "
                f"resharded={stats.get('resharded_relocations', 0)} "
                f"introspection_gaps={stats.get('introspection_gaps', 0)}"
            )
            hot_nodes = stats.get("hot_nodes") or {}
            if hot_nodes:
                rendered = ", ".join(
                    f"{relation}@{node}" for relation, node in sorted(hot_nodes.items())
                )
            else:
                hot = stats.get("hot_relations") or []
                rendered = ", ".join(hot) if hot else "(none)"
            lines.append(f"hot relations: {rendered}")
            gaps = stats.get("unreachable_nodes") or []
            if gaps:
                lines.append(
                    "unreachable nodes: " + ", ".join(str(node) for node in gaps)
                )
            for node in stats.get("nodes", []):
                if not node.get("reachable", True):
                    lines.append(
                        f"node {node.get('index')} @ {node.get('address')}: UNREACHABLE"
                    )
                    continue
                line = (
                    f"node {node.get('index')} @ {node.get('address')}: "
                    f"shards={node.get('shards')} "
                    f"pending={node.get('pending')} "
                    f"routed_pending={node.get('routed_pending')} "
                    f"wal_last_lsn={node.get('wal_last_lsn')}"
                )
                standby = node.get("standby")
                if standby:
                    if standby.get("reachable", True):
                        line += (
                            f" standby@{standby.get('address')} "
                            f"lag={standby.get('lag_lsns')} lsns"
                        )
                    else:
                        line += f" standby@{standby.get('address')} UNREACHABLE"
                lines.append(line)
        else:
            for key, value in sorted(stats.items()):
                if key == "role":
                    continue
                lines.append(f"{key} = {value}")
        return "\n".join(lines)

    def durability_stats(self) -> dict:
        """The durability subsystem's counters (``{"enabled": False}`` when off)."""
        return dict(self.service.stats().durability)

    def durability_text(self) -> str:
        stats = self.durability_stats()
        if not stats.get("enabled"):
            return "(durability off: memory-only system)"
        lines = [
            f"data_dir = {stats.get('data_dir')}",
            f"fsync_policy = {stats.get('fsync_policy')} "
            f"(fsyncs={stats.get('wal_fsyncs')}, group_commits={stats.get('wal_group_commits')})",
            f"wal: last_lsn={stats.get('wal_last_lsn')} "
            f"appended={stats.get('wal_records_appended')} "
            f"since_checkpoint={stats.get('records_since_checkpoint')}",
            f"snapshots_taken = {stats.get('snapshots_taken')} "
            f"(interval={stats.get('snapshot_interval')})",
        ]
        recovery = stats.get("recovery")
        if recovery:
            lines.append(
                "last recovery: "
                f"pending={recovery.get('pending_recovered')} "
                f"answered={recovery.get('answered_recovered')} "
                f"replayed={recovery.get('records_replayed')} "
                f"repaired_bytes={recovery.get('repaired_bytes')} "
                f"in {recovery.get('elapsed_seconds', 0.0):.3f}s"
            )
        return "\n".join(lines)

    def event_log(self, limit: Optional[int] = None) -> list[Event]:
        events = self.system.events.history()
        if limit is not None:
            events = events[-limit:]
        return events

    def event_log_text(self, limit: int = 20) -> str:
        lines = []
        for event in self.event_log(limit):
            payload = {key: value for key, value in event.payload.items() if key != "sql"}
            lines.append(f"[{event.sequence:>5}] {event.type.value}: {payload}")
        return "\n".join(lines) or "(no events)"

    def explain(self, sql: str) -> str:
        """EXPLAIN a plain SELECT (the optimizer's plan, as indented text)."""
        return self.system.engine.explain(sql)

    # -- full dump -----------------------------------------------------------------------------------

    def render_state(self) -> str:
        """A complete text dump of the internal state (the demo's admin screen)."""
        sections = ["== Youtopia system state =="]
        sections.append("\n-- tables --")
        for name, count in sorted(self.table_statistics().items()):
            sections.append(f"{name}: {count} rows")
        sections.append("\n-- answer relations --")
        for name, tuples in sorted(self.answer_relations().items()):
            sections.append(f"{name}: {len(tuples)} tuples")
        sections.append("\n-- pending entangled queries --")
        pending = self.pending_queries()
        if pending:
            for query in pending:
                sections.append(f"{query.query_id} [{query.owner}]: {query.describe()}")
        else:
            sections.append("(none)")
        sections.append("\n-- potential match graph --")
        sections.append(self.match_graph_text())
        sections.append("\n-- matching shards --")
        sections.append(self.shard_text())
        sections.append("\n-- match policy --")
        sections.append(self.matching_text())
        sections.append("\n-- tiering --")
        sections.append(self.tiering_text())
        sections.append("\n-- transport --")
        sections.append(self.transport_text())
        sections.append("\n-- cluster --")
        sections.append(self.cluster_text())
        sections.append("\n-- durability --")
        sections.append(self.durability_text())
        sections.append("\n-- coordination statistics --")
        for key, value in sorted(self.statistics().items()):
            sections.append(f"{key} = {value}")
        return "\n".join(sections)


def main(argv: Optional[list[str]] = None) -> int:  # pragma: no cover - interactive helper
    """Entry point (``youtopia-admin``): dump the state of a fresh system."""
    del argv
    system = YoutopiaSystem()
    print(AdminInterface(system).render_state())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
