"""Reproduction of "Coordination through Querying in the Youtopia System".

Youtopia (SIGMOD 2011 demo) is a database system that supports *declarative
data-driven coordination*: users submit **entangled queries** whose answers
are placed in shared answer relations and are only produced when the
coordination constraints of a whole group of queries can be satisfied jointly.

Clients talk to the system through the transport-agnostic **coordination
service** (:mod:`repro.service`): typed requests in, future-style handles out.

Quickstart::

    from repro import InProcessService, SubmitRequest, SystemConfig

    service = InProcessService(config=SystemConfig(seed=0))
    service.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
    service.execute("INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris')")
    service.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])

    # submit_many registers the whole batch under one lock acquisition and
    # runs a single deferred match pass — the fast path for loaded systems.
    kramer, jerry = service.submit_many([
        SubmitRequest(owner="Kramer", sql=(
            "SELECT 'Kramer', fno INTO ANSWER Reservation "
            "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
            "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1")),
        SubmitRequest(owner="Jerry", sql=(
            "SELECT 'Jerry', fno INTO ANSWER Reservation "
            "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
            "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1")),
    ])

    # handles are future-style: done() / result(timeout) / add_done_callback
    assert kramer.done() and jerry.done()
    print(kramer.result().tuples)           # {'Reservation': (('Kramer', ...),)}
    print(service.answers("Reservation"))   # both travelers, same flight
    print(service.stats()["groups_matched"])  # 1

The classic facade (:class:`~repro.core.system.YoutopiaSystem`) remains
available and now delegates to the same machinery; ``docs/API.md`` has the
full protocol and a migration table.  See ``DESIGN.md`` for the system
inventory and ``EXPERIMENTS.md`` for the reproduced demo scenarios.
"""

from repro.core import (
    AnalysisReport,
    AnswerRelationRegistry,
    CoordinationRequest,
    Coordinator,
    EntangledQueryBuilder,
    EventBus,
    EventType,
    ExhaustiveEvaluator,
    GridProviderIndex,
    MatchPlanCache,
    MatchWorkerPool,
    MatchedGroup,
    Matcher,
    ProviderIndex,
    QueryStatus,
    ShardedCoordinator,
    SystemConfig,
    YoutopiaSession,
    YoutopiaSystem,
    analyze,
    check,
    compile_entangled,
    ir,
    var,
)
from repro.errors import YoutopiaError
from repro.relalg import QueryEngine, QueryResult
from repro.service import (
    AnswerEnvelope,
    CoordinationServer,
    CoordinationService,
    InProcessService,
    IntrospectionService,
    RelationResult,
    RemoteHandle,
    RemoteService,
    RequestHandle,
    ServiceStats,
    SubmitRequest,
)
from repro.storage import Database

__version__ = "1.1.0"

__all__ = [
    "AnalysisReport",
    "AnswerEnvelope",
    "AnswerRelationRegistry",
    "CoordinationRequest",
    "CoordinationServer",
    "CoordinationService",
    "Coordinator",
    "Database",
    "EntangledQueryBuilder",
    "EventBus",
    "EventType",
    "ExhaustiveEvaluator",
    "GridProviderIndex",
    "InProcessService",
    "IntrospectionService",
    "MatchPlanCache",
    "MatchWorkerPool",
    "MatchedGroup",
    "Matcher",
    "ProviderIndex",
    "QueryEngine",
    "QueryResult",
    "QueryStatus",
    "RelationResult",
    "RemoteHandle",
    "RemoteService",
    "RequestHandle",
    "ServiceStats",
    "ShardedCoordinator",
    "SubmitRequest",
    "SystemConfig",
    "YoutopiaError",
    "YoutopiaSession",
    "YoutopiaSystem",
    "analyze",
    "check",
    "compile_entangled",
    "ir",
    "var",
    "__version__",
]
