"""Reproduction of "Coordination through Querying in the Youtopia System".

Youtopia (SIGMOD 2011 demo) is a database system that supports *declarative
data-driven coordination*: users submit **entangled queries** whose answers
are placed in shared answer relations and are only produced when the
coordination constraints of a whole group of queries can be satisfied jointly.

Quickstart::

    from repro import YoutopiaSystem

    system = YoutopiaSystem(seed=0)
    system.execute("CREATE TABLE Flights (fno INT PRIMARY KEY, dest TEXT)")
    system.execute("INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris')")
    system.declare_answer_relation("Reservation", ["traveler", "fno"], ["TEXT", "INTEGER"])

    kramer = system.submit_entangled(
        "SELECT 'Kramer', fno INTO ANSWER Reservation "
        "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
        owner="Kramer",
    )
    jerry = system.submit_entangled(
        "SELECT 'Jerry', fno INTO ANSWER Reservation "
        "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
        "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
        owner="Jerry",
    )
    assert jerry.is_answered and kramer.is_answered
    print(system.answers("Reservation"))

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
reproduced demo scenarios and benchmarks.
"""

from repro.core import (
    AnalysisReport,
    AnswerRelationRegistry,
    CoordinationRequest,
    Coordinator,
    EntangledQueryBuilder,
    EventBus,
    EventType,
    ExhaustiveEvaluator,
    MatchedGroup,
    Matcher,
    ProviderIndex,
    QueryStatus,
    YoutopiaSession,
    YoutopiaSystem,
    analyze,
    check,
    compile_entangled,
    ir,
    var,
)
from repro.errors import YoutopiaError
from repro.relalg import QueryEngine, QueryResult
from repro.storage import Database

__version__ = "1.0.0"

__all__ = [
    "AnalysisReport",
    "AnswerRelationRegistry",
    "CoordinationRequest",
    "Coordinator",
    "Database",
    "EntangledQueryBuilder",
    "EventBus",
    "EventType",
    "ExhaustiveEvaluator",
    "MatchedGroup",
    "Matcher",
    "ProviderIndex",
    "QueryEngine",
    "QueryResult",
    "QueryStatus",
    "YoutopiaError",
    "YoutopiaSession",
    "YoutopiaSystem",
    "analyze",
    "check",
    "compile_entangled",
    "ir",
    "var",
    "__version__",
]
