"""Transport-level metrics shared by both network servers.

:class:`TransportMetrics` is a small thread-safe counter block that the
threaded :class:`~repro.service.remote.server.CoordinationServer` and the
asyncio :class:`~repro.service.aio.server.AsyncCoordinationServer` both
populate.  A snapshot crosses the wire inside the ``stats`` operation and
surfaces as :attr:`~repro.service.api.ServiceStats.transport`, so one admin
screen reads the request plane of either server:

* ``connections_open`` / ``connections_total`` — live and lifetime accepted
  client connections;
* ``requests_in_flight`` / ``requests_total`` — operations currently being
  handled and handled since start;
* ``bytes_in`` / ``bytes_out`` — wire traffic, counted on whole frames;
* ``rejected_backpressure`` — requests refused because a connection exceeded
  its in-flight budget (only the asyncio server enforces one; the threaded
  server reports 0).
"""

from __future__ import annotations

import threading


class TransportMetrics:
    """Thread-safe counters describing one server's request plane."""

    __slots__ = (
        "_lock",
        "connections_open",
        "connections_total",
        "requests_in_flight",
        "requests_total",
        "bytes_in",
        "bytes_out",
        "rejected_backpressure",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.connections_open = 0
        self.connections_total = 0
        self.requests_in_flight = 0
        self.requests_total = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.rejected_backpressure = 0

    # -- connection lifecycle ---------------------------------------------------------------

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_open += 1
            self.connections_total += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.connections_open -= 1

    # -- request lifecycle ------------------------------------------------------------------

    def request_started(self) -> None:
        with self._lock:
            self.requests_in_flight += 1
            self.requests_total += 1

    def request_finished(self) -> None:
        with self._lock:
            self.requests_in_flight -= 1

    def request_rejected(self) -> None:
        with self._lock:
            self.rejected_backpressure += 1

    # -- traffic ----------------------------------------------------------------------------

    def add_bytes_in(self, count: int) -> None:
        with self._lock:
            self.bytes_in += count

    def add_bytes_out(self, count: int) -> None:
        with self._lock:
            self.bytes_out += count

    # -- reporting ---------------------------------------------------------------------------

    def snapshot(self) -> dict[str, int]:
        """A point-in-time copy of every counter (wire- and admin-friendly)."""
        with self._lock:
            return {
                "connections_open": self.connections_open,
                "connections_total": self.connections_total,
                "requests_in_flight": self.requests_in_flight,
                "requests_total": self.requests_total,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "rejected_backpressure": self.rejected_backpressure,
            }
