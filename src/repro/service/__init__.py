"""The transport-agnostic coordination service layer.

Public surface (also re-exported from the top-level :mod:`repro` package):

* :class:`~repro.service.api.CoordinationService` — the protocol every client
  programs against (``submit``, ``submit_many``, ``wait``, ``wait_many``,
  ``cancel``, ``query``, ``answers``, ``stats``)
* :class:`~repro.service.api.IntrospectionService` — admin-grade extensions
* the DTOs: :class:`~repro.service.api.SubmitRequest`,
  :class:`~repro.service.api.RelationResult`,
  :class:`~repro.service.api.AnswerEnvelope`,
  :class:`~repro.service.api.ServiceStats`
* :class:`~repro.service.handles.RequestHandle` — future-style handles
* :class:`~repro.service.inprocess.InProcessService` — the in-process
  implementation
* :class:`~repro.service.remote.CoordinationServer` /
  :class:`~repro.service.remote.RemoteService` — the JSON-over-TCP network
  transport (same protocols, remote system)
* the asyncio surface (:mod:`repro.service.aio`):
  :class:`~repro.service.aio.AsyncCoordinationService` protocols, awaitable
  :class:`~repro.service.aio.AsyncRequestHandle` objects,
  :class:`~repro.service.aio.AsyncInProcessService`, and the multiplexed
  single-event-loop network plane
  (:class:`~repro.service.aio.AsyncCoordinationServer` /
  :class:`~repro.service.aio.AsyncRemoteService`) over the same wire codec
* :class:`~repro.service.metrics.TransportMetrics` — request-plane counters
  both servers publish through :attr:`~repro.service.api.ServiceStats.transport`
* :class:`~repro.core.config.SystemConfig` — typed system configuration

See ``docs/API.md`` for the full contract, the remote deployment guide and
the migration table from the old :class:`~repro.core.system.YoutopiaSystem`
facade calls; ``docs/ARCHITECTURE.md`` places this layer in the system map.
"""

from repro.core.config import SystemConfig
from repro.service.aio import (
    AsyncCoordinationServer,
    AsyncCoordinationService,
    AsyncInProcessService,
    AsyncIntrospectionService,
    AsyncRemoteHandle,
    AsyncRemoteService,
    AsyncRequestHandle,
    BackgroundAsyncServer,
    BridgedService,
    connect_async,
    connect_bridged,
)
from repro.service.api import (
    AnswerEnvelope,
    CoordinationService,
    IntrospectionService,
    RelationResult,
    ServiceStats,
    Submittable,
    SubmitRequest,
)
from repro.service.handles import RequestHandle
from repro.service.inprocess import InProcessService
from repro.service.metrics import TransportMetrics
from repro.service.remote import (
    CoordinationServer,
    RemoteHandle,
    RemoteService,
    connect,
    serve,
)

__all__ = [
    "AnswerEnvelope",
    "AsyncCoordinationServer",
    "AsyncCoordinationService",
    "AsyncInProcessService",
    "AsyncIntrospectionService",
    "AsyncRemoteHandle",
    "AsyncRemoteService",
    "AsyncRequestHandle",
    "BackgroundAsyncServer",
    "BridgedService",
    "CoordinationServer",
    "CoordinationService",
    "InProcessService",
    "IntrospectionService",
    "RelationResult",
    "RemoteHandle",
    "RemoteService",
    "RequestHandle",
    "ServiceStats",
    "Submittable",
    "SubmitRequest",
    "SystemConfig",
    "TransportMetrics",
    "connect",
    "connect_async",
    "connect_bridged",
    "serve",
]
