"""Transport-agnostic coordination service API: DTOs and protocols.

This module is the *contract* every Youtopia client programs against.  It
deliberately contains no coordination logic: only plain, transport-friendly
request/response dataclasses plus two :class:`typing.Protocol` definitions.

* :class:`CoordinationService` — the eight-method surface every deployment
  (in-process, and later network transports) must offer: ``submit``,
  ``submit_many``, ``wait``, ``wait_many``, ``cancel``, ``query``,
  ``answers`` and ``stats``.
* :class:`IntrospectionService` — optional extensions used by the admin
  tooling (raw request records, the pending pool, explicit retries).

The paper frames Youtopia's coordination component as the backend of a travel
web site's middle tier; this layer is the request/response seam that framing
implies.  Applications receive :class:`~repro.service.handles.RequestHandle`
objects — future-style handles with ``result(timeout)`` / ``done()`` /
``add_done_callback`` — instead of poll-waiting on query ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

from repro.core import ir
from repro.core.coordinator import CoordinationRequest
from repro.sqlparser import ast

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.relalg.engine import QueryResult
    from repro.service.handles import RequestHandle


# ---------------------------------------------------------------------------
# Request DTOs
# ---------------------------------------------------------------------------

#: Anything acceptable as one entangled submission: raw SQL text, a parsed
#: statement, compiled IR, or a fully-specified :class:`SubmitRequest`.
Submittable = Union["SubmitRequest", str, ast.EntangledSelect, ir.EntangledQuery]


@dataclass(frozen=True)
class SubmitRequest:
    """One entangled-query submission.

    Exactly one of ``sql`` (transportable) or ``query`` (pre-compiled IR,
    in-process fast path) must be provided.  ``tag`` is an opaque client-side
    correlation label echoed back on the returned handle.  ``priority`` is an
    optional per-query weight consumed by the ``priority`` match policy
    (larger wins); it is carried on the wire as an extra JSON key, so older
    servers ignore it and absent means "no preference".
    """

    sql: Optional[str] = None
    query: Optional[ir.EntangledQuery] = None
    owner: Optional[str] = None
    tag: Optional[str] = None
    priority: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.sql is None) == (self.query is None):
            raise ValueError("SubmitRequest needs exactly one of 'sql' or 'query'")

    def payload(self) -> Union[str, ir.EntangledQuery]:
        return self.query if self.query is not None else self.sql  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Response DTOs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RelationResult:
    """The transportable result of one plain SQL statement."""

    command: str
    columns: tuple[str, ...] = ()
    rows: tuple[tuple[Any, ...], ...] = ()
    affected: int = 0

    @classmethod
    def from_query_result(cls, result: "QueryResult") -> "RelationResult":
        return cls(
            command=result.command,
            columns=tuple(result.columns),
            rows=tuple(tuple(row) for row in result.rows),
            affected=result.affected,
        )

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} row(s)"
            )
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


@dataclass(frozen=True)
class AnswerEnvelope:
    """One query's share of a coordinated answer, as a transportable value.

    Mirrors :class:`~repro.core.ir.GroundAnswer` (``tuples`` / ``binding`` /
    ``all_tuples``) and adds the answering group and timing.
    """

    query_id: str
    owner: Optional[str]
    tuples: Mapping[str, tuple[tuple[Any, ...], ...]]
    binding: Mapping[str, Any] = field(default_factory=dict)
    group: tuple[str, ...] = ()
    answered_at: Optional[float] = None

    @classmethod
    def from_request(cls, record: CoordinationRequest) -> "AnswerEnvelope":
        if record.answer is None:
            raise ValueError(f"request {record.query_id!r} has no answer yet")
        return cls(
            query_id=record.query_id,
            owner=record.owner,
            tuples=dict(record.answer.tuples),
            binding=dict(record.answer.binding),
            group=record.group_query_ids,
            answered_at=record.answered_at,
        )

    def all_tuples(self) -> list[tuple[str, tuple[Any, ...]]]:
        pairs: list[tuple[str, tuple[Any, ...]]] = []
        for relation, relation_tuples in sorted(self.tuples.items()):
            for values in relation_tuples:
                pairs.append((relation, values))
        return pairs


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of coordination statistics.

    ``counters`` carries the monotonic counters of
    :class:`~repro.core.stats.CoordinationStatistics` (plus transaction
    counts); ``pending`` is the current pending-pool size.  ``shards``
    describes the sharded coordinator's per-shard state (pending set size,
    provider-index size, queued match events, dirty flag); the inline
    coordinator reports itself as one pseudo-shard.  ``durability`` reports
    the write-ahead-log subsystem (``{"enabled": False}`` for a memory-only
    system; otherwise WAL/fsync/snapshot counters plus a ``recovery`` summary
    of the last restart — see
    :meth:`~repro.core.durability.DurabilityManager.stats`).  ``transport``
    describes the network request plane when the service is reached through a
    server (open connections, in-flight requests, bytes in/out,
    backpressure rejections — see
    :class:`~repro.service.metrics.TransportMetrics`); an in-process service
    reports an empty mapping.  ``cluster`` describes multi-node deployments
    (the node's role and placement, or — from a
    :class:`~repro.cluster.router.ClusterRouter` — the member list with
    per-node shard counts, routed vs. cross-node submit counters and standby
    replication lag in LSNs); a single-node service reports an empty mapping.
    ``matching`` describes match-group selection: the active policy name,
    the candidate enumeration limit, and per-policy decision counters
    (decisions, groups enumerated/skipped, ties broken) — see
    :class:`~repro.core.policy.PolicyStatistics`.  ``tiering`` describes the
    tiered pending pool (``{"enabled": False}`` without a
    ``pending_memory_limit``; otherwise the memory budget, eviction policy,
    cold-store backend, hot/cold residency counts, eviction and page-in
    counters and cumulative page-in latency — see
    :class:`~repro.core.tiering.TieringManager`).
    """

    counters: Mapping[str, int]
    pending: int = 0
    shards: tuple[Mapping[str, int], ...] = ()
    durability: Mapping[str, Any] = field(default_factory=lambda: {"enabled": False})
    transport: Mapping[str, int] = field(default_factory=dict)
    cluster: Mapping[str, Any] = field(default_factory=dict)
    matching: Mapping[str, Any] = field(default_factory=dict)
    tiering: Mapping[str, Any] = field(default_factory=lambda: {"enabled": False})

    def __getitem__(self, key: str) -> int:
        return self.counters[key]

    def as_dict(self) -> dict[str, int]:
        return dict(self.counters)


# ---------------------------------------------------------------------------
# Protocols
# ---------------------------------------------------------------------------


@runtime_checkable
class CoordinationService(Protocol):
    """The transport-agnostic coordination API.

    Every client — the travel middle tier, the CLI, the admin screens, the
    benchmarks, a future network server — talks through this interface.  An
    implementation may run in-process (:class:`~repro.service.InProcessService`)
    or proxy a remote system; callers cannot tell the difference.
    """

    def submit(self, request: Submittable, owner: Optional[str] = None) -> "RequestHandle":
        """Submit one entangled query; returns a future-style handle."""
        ...

    def submit_many(
        self, requests: Sequence[Submittable], owner: Optional[str] = None
    ) -> list["RequestHandle"]:
        """Submit a batch in one coordination pass; one handle per request."""
        ...

    def wait(self, query_id: str, timeout: Optional[float] = None) -> AnswerEnvelope:
        """Block until a query is answered; raises on timeout/cancel/reject."""
        ...

    def wait_many(
        self, query_ids: Sequence[str], timeout: Optional[float] = None
    ) -> list[AnswerEnvelope]:
        """Block until every listed query is answered (shared deadline)."""
        ...

    def cancel(self, query_id: str) -> None:
        """Withdraw a pending query from the pool."""
        ...

    def query(self, sql: str) -> RelationResult:
        """Run a plain SELECT and return its rows."""
        ...

    def answers(self, relation: str) -> list[tuple[Any, ...]]:
        """The current contents of an answer relation."""
        ...

    def stats(self) -> ServiceStats:
        """Coordination statistics plus the pending-pool size."""
        ...


@runtime_checkable
class IntrospectionService(Protocol):
    """Optional admin-grade extensions on top of :class:`CoordinationService`."""

    def request(self, query_id: str) -> "RequestHandle":
        """A handle for an already-registered query."""
        ...

    def requests(self) -> list["RequestHandle"]:
        """Handles for every request ever registered."""
        ...

    def pending_queries(self) -> list[ir.EntangledQuery]:
        """The current pending pool."""
        ...

    def retry_pending(self) -> int:
        """Re-attempt coordination for the whole pool; returns newly answered."""
        ...
