"""The in-process implementation of the coordination service protocol.

:class:`InProcessService` adapts a :class:`~repro.core.system.YoutopiaSystem`
to the :class:`~repro.service.api.CoordinationService` contract: typed DTOs
in, future-style :class:`~repro.service.handles.RequestHandle` objects out.
It is the implementation every current client uses; a network transport would
implement the same protocol against a remote system.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Sequence, Union

from repro.core import ir
from repro.core.config import SystemConfig
from repro.core.coordinator import CoordinationRequest, Coordinator
from repro.core.events import EventType
from repro.core.executor import SideEffectHook
from repro.core.system import YoutopiaSystem
from repro.relalg.engine import QueryResult
from repro.service.api import (
    AnswerEnvelope,
    RelationResult,
    ServiceStats,
    Submittable,
    SubmitRequest,
)
from repro.service.handles import RequestHandle
from repro.sqlparser import ast
from repro.storage.database import Database


class InProcessService:
    """A :class:`CoordinationService` running against an in-process system."""

    def __init__(
        self,
        system: Optional[YoutopiaSystem] = None,
        config: Optional[SystemConfig] = None,
        database: Optional[Database] = None,
    ) -> None:
        if system is None:
            system = YoutopiaSystem(database=database, config=config or SystemConfig())
        self.system = system
        #: Cluster-role description folded into :meth:`stats` (``cluster``
        #: block).  A plain mapping for a static role (a ``--cluster-node``
        #: member's index/placement), or a zero-argument callable for live
        #: values (a standby's applied LSN).  Empty for single-node systems.
        self.cluster_info: Any = {}

    @property
    def coordinator(self) -> Coordinator:
        return self.system.coordinator

    # -- lifecycle --------------------------------------------------------------------------

    def close(self) -> None:
        self.system.close()

    def __enter__(self) -> "InProcessService":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- submission -------------------------------------------------------------------------

    def submit(self, request: Submittable, owner: Optional[str] = None) -> RequestHandle:
        """Submit one entangled query and return its future-style handle."""
        query, owner, tag, priority = self._normalize(request, owner)
        if priority is not None:
            query = self._apply_priority(
                Coordinator._coerce_query(query, owner), priority
            )
        record = self.coordinator.submit(query, owner=owner)
        return RequestHandle(self.coordinator, record, tag=tag)

    def submit_many(
        self, requests: Sequence[Submittable], owner: Optional[str] = None
    ) -> list[RequestHandle]:
        """Submit a whole batch in one lock acquisition and one match pass.

        Per-item owners from :class:`SubmitRequest` are honoured; ``owner`` is
        the default for items that carry none.  Items rejected by the static
        checks come back as terminal handles (``status == REJECTED``) instead
        of aborting the rest of the batch.
        """
        compiled: list[ir.EntangledQuery] = []
        tags: list[Optional[str]] = []
        for request in requests:
            query, item_owner, tag, priority = self._normalize(request, owner)
            item = Coordinator._coerce_query(query, item_owner)
            if priority is not None:
                item = self._apply_priority(item, priority)
            compiled.append(item)
            tags.append(tag)
        records = self.coordinator.submit_many(compiled)
        return [
            RequestHandle(self.coordinator, record, tag=tag)
            for record, tag in zip(records, tags)
        ]

    @staticmethod
    def _normalize(
        request: Submittable, owner: Optional[str]
    ) -> tuple[
        Union[str, ast.EntangledSelect, ir.EntangledQuery],
        Optional[str],
        Optional[str],
        Optional[float],
    ]:
        if isinstance(request, SubmitRequest):
            return request.payload(), request.owner or owner, request.tag, request.priority
        return request, owner, None, None

    @staticmethod
    def _apply_priority(query: ir.EntangledQuery, priority: float) -> ir.EntangledQuery:
        return dataclasses.replace(query, priority=float(priority))

    # -- waiting / cancellation --------------------------------------------------------------

    def wait(self, query_id: str, timeout: Optional[float] = None) -> AnswerEnvelope:
        self.coordinator.wait(query_id, timeout=timeout)
        return AnswerEnvelope.from_request(self.coordinator.request(query_id))

    def wait_many(
        self, query_ids: Sequence[str], timeout: Optional[float] = None
    ) -> list[AnswerEnvelope]:
        self.coordinator.wait_many(query_ids, timeout=timeout)
        return [
            AnswerEnvelope.from_request(self.coordinator.request(query_id))
            for query_id in query_ids
        ]

    def cancel(self, query_id: str) -> None:
        self.coordinator.cancel(query_id)

    # -- plain SQL ----------------------------------------------------------------------------

    def query(self, sql: str) -> RelationResult:
        return RelationResult.from_query_result(self.system.query(sql))

    def execute(
        self, sql: Union[str, ast.Statement], owner: Optional[str] = None
    ) -> Union[RelationResult, RequestHandle]:
        """Route one statement: plain SQL → rows, entangled SQL → handle."""
        result = self.system.execute(sql, owner=owner)
        return self._wrap_result(result)

    def execute_script(
        self, sql: str, owner: Optional[str] = None
    ) -> list[Union[RelationResult, RequestHandle]]:
        return [
            self._wrap_result(result)
            for result in self.system.execute_script(sql, owner=owner)
        ]

    def _wrap_result(
        self, result: Union[QueryResult, CoordinationRequest]
    ) -> Union[RelationResult, RequestHandle]:
        if isinstance(result, CoordinationRequest):
            return RequestHandle(self.coordinator, result)
        return RelationResult.from_query_result(result)

    # -- answers and statistics ------------------------------------------------------------------

    def answers(self, relation: str) -> list[tuple[Any, ...]]:
        return self.system.answers(relation)

    def stats(self) -> ServiceStats:
        cluster = self.cluster_info() if callable(self.cluster_info) else self.cluster_info
        return ServiceStats(
            counters=self.system.statistics(),
            pending=self.coordinator.pending_count(),
            shards=tuple(self.coordinator.shard_stats()),
            durability=self.system.durability_stats(),
            cluster=dict(cluster or {}),
            matching=self.coordinator.matching_statistics(),
            tiering=self.coordinator.tiering_statistics(),
        )

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until background match workers processed every queued event."""
        return self.coordinator.drain(timeout)

    # -- introspection extensions (IntrospectionService) ------------------------------------------

    def request(self, query_id: str) -> RequestHandle:
        return RequestHandle(self.coordinator, self.coordinator.request(query_id))

    def requests(self) -> list[RequestHandle]:
        return [
            RequestHandle(self.coordinator, record)
            for record in self.coordinator.requests()
        ]

    def pending_queries(self) -> list[ir.EntangledQuery]:
        return self.coordinator.pending_queries()

    def retry_pending(self) -> int:
        return self.coordinator.retry_pending()

    # -- in-process conveniences -------------------------------------------------------------------

    def declare_answer_relation(
        self,
        name: str,
        columns: Optional[Sequence[str]] = None,
        types: Optional[Sequence[str]] = None,
        arity: Optional[int] = None,
    ) -> None:
        self.system.declare_answer_relation(name, columns=columns, types=types, arity=arity)

    def register_side_effect(self, hook: SideEffectHook, relation: Optional[str] = None) -> None:
        self.system.register_side_effect(hook, relation)

    def subscribe(self, subscriber: Any, event_type: Optional[EventType] = None) -> None:
        self.system.subscribe(subscriber, event_type)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InProcessService(pending={self.coordinator.pending_count()})"
