"""The asyncio network plane: one event loop instead of a thread per socket.

:class:`AsyncCoordinationServer` hosts the same in-process coordination
service as the threaded :class:`~repro.service.remote.CoordinationServer`,
over the **same wire codec** (:mod:`repro.service.remote.codec`) — a sync
:class:`~repro.service.remote.RemoteService` client connects to either server
and cannot tell them apart.  What changes is the request plane:

* one event loop owns every connection — no reader thread per socket, no
  handler thread per request;
* each decoded request becomes a task, so blocking operations (``wait``,
  ``drain``) on one connection never stall other requests on the same
  connection — the multiplexing contract of the threaded server, at a
  fraction of the cost;
* **bounded in-flight concurrency**: a connection may have at most
  ``max_in_flight`` requests being handled; requests beyond the budget are
  *rejected* with a typed
  :class:`~repro.errors.ServiceUnavailableError` (and counted in
  ``transport.rejected_backpressure``) instead of queueing without bound;
* writes flow through a per-connection outbox task, so ``writer.drain()``
  exerts TCP backpressure without interleaving frames;
* blocking compute (matching, SQL, durability) is dispatched through the
  wrapped :class:`~repro.service.aio.inprocess.AsyncInProcessService`'s
  executor; cheap introspection reads (``stats``, ``answers``, ``hello``)
  are served inline on the loop;
* ``wait`` is served by the coordinator's completion callbacks bridged onto
  the loop — ten thousand clients awaiting pending queries hold ten thousand
  futures, zero server threads.

:class:`BackgroundAsyncServer` runs the whole thing on a dedicated
event-loop thread behind the threaded server's synchronous ``start`` /
``stop`` / ``wait_stopped`` surface, so the CLI, tests and benchmarks can
swap transports with one flag.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Optional, Sequence

from repro.core.config import SystemConfig
from repro.errors import ProtocolError, ServiceUnavailableError
from repro.service.aio.handles import AsyncRequestHandle
from repro.service.aio.inprocess import AsyncInProcessService
from repro.service.handles import RequestHandle
from repro.service.inprocess import InProcessService
from repro.service.metrics import TransportMetrics
from repro.service.remote import codec
from repro.service.remote.server import CoordinationServer

#: Default per-connection in-flight request budget.  Far above what a
#: well-behaved client pipelines, far below what an unbounded queue would
#: let one connection park on the server.
DEFAULT_MAX_IN_FLIGHT = 128


class _AsyncConnection:
    """One accepted client: framed reader state plus a serialised outbox."""

    def __init__(
        self,
        server: "AsyncServerBase",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.in_flight = 0
        self.closed = False
        #: Query ids this connection already watches (one push per query).
        #: Guarded by a lock: watches are claimed from the loop (fast-path
        #: snapshots) and from executor threads (bulk introspection ops).
        self.watched: set[str] = set()
        self._watch_lock = threading.Lock()
        self._outbox: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        self._writer_task: Optional[asyncio.Task[None]] = None
        self._tasks: set[asyncio.Task[None]] = set()

    def start_writer(self) -> None:
        self._writer_task = asyncio.get_running_loop().create_task(self._write_loop())

    async def _write_loop(self) -> None:
        """Drain the outbox onto the socket; one writer, frames never interleave."""
        while True:
            frame = await self._outbox.get()
            if frame is None:
                break
            try:
                self.writer.write(frame)
                await self.writer.drain()
            except (ConnectionError, OSError):
                self.closed = True
                break
            self.server.metrics.add_bytes_out(len(frame))

    def claim_watch(self, query_id: str) -> bool:
        """True exactly once per query id (any thread)."""
        with self._watch_lock:
            if query_id in self.watched:
                return False
            self.watched.add(query_id)
            return True

    def send(self, payload: dict[str, Any]) -> None:
        """Enqueue one frame (loop thread); silently dropped once closed."""
        if self.closed:
            return
        try:
            frame = codec.encode_frame(payload)
        except ProtocolError as exc:
            # An unencodable result (oversized answers, non-JSON value) must
            # not leave the client's RPC waiting forever: marshal the
            # encoding failure back under the same correlation id.  The
            # error frame itself is small and always serialisable.
            frame_id = payload.get("id")
            frame = codec.encode_frame(
                codec.error_frame(frame_id if isinstance(frame_id, int) else -1, exc)
            )
        self._outbox.put_nowait(frame)

    def send_encoded_threadsafe(self, frame: bytes) -> None:
        """Enqueue an already-encoded frame from a non-loop thread."""
        if not self.closed:
            self._outbox.put_nowait(frame)

    def track(self, task: "asyncio.Task[None]") -> None:
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._outbox.put_nowait(None)
        if self._writer_task is not None:
            try:
                await asyncio.wait_for(self._writer_task, timeout=1.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._writer_task.cancel()
        for task in list(self._tasks):
            task.cancel()
        try:
            self.writer.close()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


class AsyncServerBase:
    """The transport half of the asyncio request plane, service-agnostic.

    Owns the listener, the connection set, framed reading, the per-request
    dispatch (fast-path ``_fastop_*`` inline, regular ``_op_*`` as tasks under
    the in-flight budget) and the stop/teardown protocol.  Subclasses provide
    the operations — :class:`AsyncCoordinationServer` serves a local
    coordination service; the cluster gateway
    (:class:`repro.cluster.router.ClusterRouter`) serves the same wire
    protocol by fanning requests out to member nodes — and release their
    resources in :meth:`_close_resources`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
    ) -> None:
        self._host = host
        self._port = port
        self.max_in_flight = max_in_flight
        self.metrics = TransportMetrics()
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: set[_AsyncConnection] = set()
        self._stopping = False
        self._stopped: Optional[asyncio.Event] = None
        self._stop_task: Optional["asyncio.Task[None]"] = None

    # -- lifecycle --------------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; only meaningful after :meth:`start`."""
        return (self._host, self._port)

    async def start(self) -> tuple[str, int]:
        """Bind, listen and start accepting; returns the bound address."""
        if self._server is not None:
            return self.address
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        await self._open_resources()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port, backlog=1024
        )
        sockets = self._server.sockets or []
        if sockets:
            self._host, self._port = sockets[0].getsockname()[:2]
        return self.address

    async def _open_resources(self) -> None:
        """Subclass hook run on the loop before the listener binds."""

    async def _close_resources(self) -> None:
        """Subclass hook: release owned services/clients during :meth:`stop`."""

    async def wait_stopped(self) -> None:
        """Suspend until :meth:`stop` completed (the ``serve`` loop's anchor)."""
        assert self._stopped is not None, "server was never started"
        await self._stopped.wait()

    async def stop(self) -> None:
        """Close the listener and every connection; clients fail fast (idempotent)."""
        if self._stopping:
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self._stopping = True
        try:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            for connection in list(self._connections):
                await connection.close()
            self._connections.clear()
            await self._close_resources()
        finally:
            # always release wait_stopped(), even when closing resources failed
            if self._stopped is not None:
                self._stopped.set()

    async def __aenter__(self) -> "AsyncServerBase":
        await self.start()
        return self

    async def __aexit__(self, *_exc: object) -> None:
        await self.stop()

    # -- connection handling ----------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._stopping:
            writer.close()
            return
        connection = _AsyncConnection(self, reader, writer)
        connection.start_writer()
        self._connections.add(connection)
        self.metrics.connection_opened()
        try:
            await self._read_loop(connection)
        finally:
            await connection.close()
            self.metrics.connection_closed()
            self._connections.discard(connection)

    async def _read_loop(self, connection: _AsyncConnection) -> None:
        reader = connection.reader
        while not self._stopping:
            try:
                frame = await codec.read_frame_async(
                    reader, on_bytes=self.metrics.add_bytes_in
                )
            except ProtocolError as exc:
                # A malformed frame poisons the stream: report and drop.
                connection.send(codec.error_frame(-1, exc))
                return
            except (ConnectionError, OSError):
                return
            if frame is None:
                return  # clean end-of-stream: drop the connection
            self._dispatch(connection, frame)

    def _dispatch(self, connection: _AsyncConnection, frame: dict[str, Any]) -> None:
        """Turn one request frame into a handled task, or reject it.

        Cheap read-only operations (``stats``, ``answers``, ``hello``,
        request snapshots) take a synchronous fast path: handled inline in
        the read loop with no task allocation, and exempt from the
        in-flight budget — they complete before the next frame is read, so
        they can never accumulate.
        """
        op = frame.get("op")
        fast = getattr(self, f"_fastop_{op}", None) if isinstance(op, str) else None
        if fast is not None:
            self._handle_fast_request(connection, frame, fast)
            return
        if connection.in_flight >= self.max_in_flight:
            self.metrics.request_rejected()
            frame_id = frame.get("id")
            connection.send(
                codec.error_frame(
                    frame_id if isinstance(frame_id, int) else -1,
                    ServiceUnavailableError(
                        f"connection exceeded its in-flight budget of "
                        f"{self.max_in_flight} requests (backpressure)"
                    ),
                )
            )
            return
        connection.in_flight += 1
        task = asyncio.get_running_loop().create_task(
            self._handle_request(connection, frame)
        )
        connection.track(task)

    def _handle_fast_request(
        self,
        connection: _AsyncConnection,
        frame: dict[str, Any],
        handler: Any,
    ) -> None:
        """One synchronous op, start to finish, inline in the read loop."""
        frame_id = frame.get("id")
        self.metrics.request_started()
        try:
            if not isinstance(frame_id, int):
                raise ProtocolError(f"request frame without integer id: {frame!r}")
            args = frame.get("args") or {}
            if not isinstance(args, dict):
                raise ProtocolError(f"operation {frame.get('op')!r} arguments must be an object")
            result = handler(connection, **args)
        except Exception as exc:  # noqa: BLE001 - every failure is marshalled back
            connection.send(
                codec.error_frame(frame_id if isinstance(frame_id, int) else -1, exc)
            )
            return
        finally:
            self.metrics.request_finished()
        connection.send(codec.response_frame(frame_id, result))

    async def _handle_request(
        self, connection: _AsyncConnection, frame: dict[str, Any]
    ) -> None:
        frame_id = frame.get("id")
        op = frame.get("op")
        self.metrics.request_started()
        try:
            if not isinstance(frame_id, int):
                raise ProtocolError(f"request frame without integer id: {frame!r}")
            handler = getattr(self, f"_op_{op}", None)
            if handler is None or not isinstance(op, str):
                raise ProtocolError(f"unsupported operation {op!r}")
            args = frame.get("args") or {}
            if not isinstance(args, dict):
                raise ProtocolError(f"operation {op!r} arguments must be an object")
            result = await handler(connection, **args)
        except asyncio.CancelledError:  # server teardown: nothing to answer
            return
        except Exception as exc:  # noqa: BLE001 - every failure is marshalled back
            connection.send(
                codec.error_frame(frame_id if isinstance(frame_id, int) else -1, exc)
            )
            return
        finally:
            self.metrics.request_finished()
            connection.in_flight -= 1
        connection.send(codec.response_frame(frame_id, result))
        if op == "shutdown":
            assert self._loop is not None
            # keep a strong reference: the loop holds tasks only weakly, and
            # a GC'd stop() task would strand wait_stopped() forever
            self._stop_task = self._loop.create_task(self.stop())


class AsyncCoordinationServer(AsyncServerBase):
    """Hosts a coordination service on asyncio streams (same wire protocol).

    ``port=0`` binds an ephemeral port; :meth:`start` returns the bound
    address.  A server that built its own service closes it on :meth:`stop`;
    a caller-provided service is left running unless ``close_service=True``.
    """

    def __init__(
        self,
        service: Optional[InProcessService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[SystemConfig] = None,
        close_service: Optional[bool] = None,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
    ) -> None:
        super().__init__(host=host, port=port, max_in_flight=max_in_flight)
        owns_service = service is None
        self.service = service or InProcessService(config=config)
        self._close_service = owns_service if close_service is None else close_service
        self.aservice = AsyncInProcessService(service=self.service)

    async def _close_resources(self) -> None:
        if self._close_service:
            # the shutdown checkpoint can fsync: keep it off the loop
            await self.aservice.close()
        else:
            # the executor is server-owned either way; a caller-provided
            # service keeps running, but the dispatch pool must not leak
            self.aservice.shutdown_executor()

    # -- push notifications -----------------------------------------------------------------

    def _state_and_watch(
        self, connection: _AsyncConnection, handle: RequestHandle
    ) -> dict[str, Any]:
        """Snapshot a request and arrange a push once it turns terminal.

        Same decision rule as the threaded server: watch on a *pending*
        snapshot only, one watch per (connection, query).  The coordinator
        callback fires in a completing thread; the encoded push frame hops
        onto the loop thread-safely and leaves through the outbox.
        """
        state = codec.encode_request_state(handle)
        if state["status"] == "pending" and connection.claim_watch(handle.query_id):
            loop = self._loop
            assert loop is not None

            def push(record: Any) -> None:
                # encode_done_push degrades an unencodable answer to a
                # correlated error state rather than dropping the push
                frame = codec.encode_done_push(record)
                try:
                    loop.call_soon_threadsafe(connection.send_encoded_threadsafe, frame)
                except RuntimeError:  # loop already torn down
                    pass

            self.service.coordinator.add_done_callback(handle.query_id, push)
        return state

    # -- operations (same names and wire shapes as the threaded server) ----------------------

    def _fastop_hello(self, _connection: _AsyncConnection) -> dict[str, Any]:
        return {
            "server": "youtopia",
            "protocol": codec.PROTOCOL_VERSION,
            "config": self.service.system.config.as_dict(),
            "transport": "asyncio",
        }

    async def _op_submit(
        self, connection: _AsyncConnection, item: Any = None
    ) -> dict[str, Any]:
        handle = await self.aservice._run(self._compile_and_submit_one, item)
        return self._state_and_watch(connection, handle)

    def _compile_and_submit_one(self, item: Any) -> RequestHandle:
        return self.service.submit(CoordinationServer._compile_item(item))

    async def _op_submit_many(
        self, connection: _AsyncConnection, items: Any = None
    ) -> list[dict[str, Any]]:
        if not isinstance(items, list):
            raise ProtocolError("submit_many expects a list of submission items")
        handles = await self.aservice._run(self._compile_and_submit_batch, items)
        return [self._state_and_watch(connection, handle) for handle in handles]

    def _compile_and_submit_batch(self, items: list[Any]) -> list[RequestHandle]:
        queries = [CoordinationServer._compile_item(item) for item in items]
        return self.service.submit_many(queries)

    async def _op_wait(
        self, _connection: _AsyncConnection, query_id: str, timeout: Optional[float] = None
    ) -> dict[str, Any]:
        # Callback-driven: no server thread parks for the duration of the
        # wait, however many clients wait however long.  The async service
        # shares one handle per pending query, so a client polling wait()
        # in a timeout-retry loop cannot accumulate coordinator callbacks.
        await self.aservice.wait(query_id, timeout=timeout)
        return codec.encode_request_state(self.service.request(query_id))

    async def _op_wait_many(
        self,
        _connection: _AsyncConnection,
        query_ids: Sequence[str],
        timeout: Optional[float] = None,
    ) -> list[dict[str, Any]]:
        await self.aservice.wait_many(list(query_ids), timeout=timeout)
        return [
            codec.encode_request_state(self.service.request(query_id))
            for query_id in query_ids
        ]

    async def _op_cancel(self, _connection: _AsyncConnection, query_id: str) -> None:
        await self.aservice.cancel(query_id)

    async def _op_query(self, _connection: _AsyncConnection, sql: str) -> dict[str, Any]:
        return codec.encode_relation_result(await self.aservice.query(sql))

    def _tagged_result(self, connection: _AsyncConnection, result: Any) -> dict[str, Any]:
        if isinstance(result, AsyncRequestHandle):
            result = result.sync_handle
        if isinstance(result, RequestHandle):
            return {"kind": "handle", "state": self._state_and_watch(connection, result)}
        return {"kind": "relation", "result": codec.encode_relation_result(result)}

    async def _op_execute(
        self, connection: _AsyncConnection, sql: str, owner: Optional[str] = None
    ) -> dict[str, Any]:
        return self._tagged_result(connection, await self.aservice.execute(sql, owner=owner))

    async def _op_execute_script(
        self, connection: _AsyncConnection, sql: str, owner: Optional[str] = None
    ) -> list[dict[str, Any]]:
        return [
            self._tagged_result(connection, result)
            for result in await self.aservice.execute_script(sql, owner=owner)
        ]

    def _fastop_answers(
        self, _connection: _AsyncConnection, relation: str
    ) -> list[list[Any]]:
        # Cheap catalog read: served inline on the loop.
        return [list(values) for values in self.service.answers(relation)]

    def _fastop_stats(self, _connection: _AsyncConnection) -> dict[str, Any]:
        # Counter snapshots take locks only briefly: served inline on the
        # loop, so a fleet of monitoring clients costs no executor hops.
        return codec.encode_stats(self.service.stats(), self.metrics.snapshot())

    async def _op_declare_answer_relation(
        self,
        _connection: _AsyncConnection,
        name: str,
        columns: Optional[Sequence[str]] = None,
        types: Optional[Sequence[str]] = None,
        arity: Optional[int] = None,
    ) -> None:
        await self.aservice.declare_answer_relation(
            name, columns=columns, types=types, arity=arity
        )

    def _fastop_request(
        self, connection: _AsyncConnection, query_id: str
    ) -> dict[str, Any]:
        return self._state_and_watch(connection, self.service.request(query_id))

    async def _op_requests(self, connection: _AsyncConnection) -> list[dict[str, Any]]:
        # O(every request ever): far beyond the fast-path bargain, so the
        # serialization runs on the executor like any other heavy op.
        return await self.aservice._run(
            lambda: [
                self._state_and_watch(connection, handle)
                for handle in self.service.requests()
            ]
        )

    async def _op_pending_queries(
        self, _connection: _AsyncConnection
    ) -> list[dict[str, Any]]:
        # O(pool) with per-query describe() rendering: executor, not loop.
        return await self.aservice._run(
            lambda: [
                {
                    "query_id": query.query_id,
                    "owner": query.owner,
                    "sql": query.sql,
                    "priority": query.priority,
                    "description": query.describe(),
                }
                for query in self.service.pending_queries()
            ]
        )

    async def _op_retry_pending(self, _connection: _AsyncConnection) -> int:
        return await self.aservice.retry_pending()

    async def _op_drain(
        self, _connection: _AsyncConnection, timeout: Optional[float] = None
    ) -> bool:
        return await self.aservice.drain(timeout)

    async def _op_shutdown(self, _connection: _AsyncConnection) -> bool:
        # The response is written first; _handle_request then schedules stop().
        return True


class BackgroundAsyncServer:
    """An :class:`AsyncCoordinationServer` on its own event-loop thread.

    Mirrors the threaded :class:`~repro.service.remote.CoordinationServer`'s
    synchronous surface (``start`` → address, ``stop``, ``wait_stopped``,
    ``address``, ``service``, ``metrics``, context manager), so callers pick
    a transport without changing anything else.  The loop thread is created
    on :meth:`start` and joined on :meth:`stop`.
    """

    def __init__(self, server_factory: Any = None, **kwargs: Any) -> None:
        # ``server_factory`` picks the inner server class (any AsyncServerBase
        # subclass constructible from **kwargs); the default is the plain
        # coordination server.  The cluster router rides the same runner.
        self._server_factory = server_factory or AsyncCoordinationServer
        self._kwargs = kwargs
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self.server: Optional[AsyncServerBase] = None
        self._stopped = threading.Event()
        self._started = False
        self._torn_down = False

    @property
    def address(self) -> tuple[str, int]:
        assert self.server is not None, "server was never started"
        return self.server.address

    @property
    def service(self) -> InProcessService:
        service = getattr(self.server, "service", None)
        assert service is not None, "server was never started (or hosts no local service)"
        return service

    @property
    def metrics(self) -> TransportMetrics:
        assert self.server is not None, "server was never started"
        return self.server.metrics

    def start(self) -> tuple[str, int]:
        if self._started:
            return self.address
        self._started = True
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="youtopia-aio-server", daemon=True
        )
        self._thread.start()
        self.server = self._server_factory(**self._kwargs)
        try:
            address = asyncio.run_coroutine_threadsafe(
                self.server.start(), self._loop
            ).result(timeout=30.0)
        except BaseException:
            # a failed bind must not strand the loop thread; reset so a
            # caller may retry start() with a fresh loop
            loop, thread = self._loop, self._thread
            self._loop = self._thread = self.server = None
            self._started = False
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10.0)
            loop.close()
            raise
        # A remote 'shutdown' op stops the inner server on the loop; bridge
        # that to the threading-world event so wait_stopped() observes it.
        asyncio.run_coroutine_threadsafe(self._watch_inner_stop(), self._loop)
        return address

    async def _watch_inner_stop(self) -> None:
        assert self.server is not None
        await self.server.wait_stopped()
        self._stopped.set()

    def wait_stopped(self, timeout: Optional[float] = None) -> bool:
        """Block until the server stopped — via :meth:`stop` or a remote shutdown."""
        return self._stopped.wait(timeout)

    def stop(self) -> None:
        """Stop the server and tear the loop thread down (idempotent)."""
        loop, thread, server = self._loop, self._thread, self.server
        if loop is None or thread is None or server is None or self._torn_down:
            self._stopped.set()
            return
        self._torn_down = True
        try:
            asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=30.0)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10.0)
            loop.close()
            self._stopped.set()

    close = stop

    def __enter__(self) -> "BackgroundAsyncServer":
        self.start()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.stop()
