"""Drive an async coordination service from synchronous code.

:class:`BridgedService` owns a private event loop on a daemon thread and
projects an :class:`~repro.service.aio.api.AsyncCoordinationService` /
:class:`~repro.service.aio.api.AsyncIntrospectionService` implementation
back onto the *synchronous* service surface — the inverse adapter of
:class:`~repro.service.aio.inprocess.AsyncInProcessService`.  Two users:

* ``youtopia-cli connect --async`` — the interactive shell is synchronous,
  the transport underneath is the multiplexed
  :class:`~repro.service.aio.client.AsyncRemoteService`;
* the conformance suite's *async-adapter runner* — the transport-agnostic
  scenario classes in ``tests/service_conformance.py`` are written against
  the sync protocol; bridging lets the very same scenarios certify the
  async stack.

Completion callbacks registered through a :class:`BridgedHandle` run on a
dedicated dispatcher thread (mirroring the sync remote client), so a
callback may freely call back into the bridged service — running it on the
loop thread would deadlock the first nested synchronous call.
"""

from __future__ import annotations

import asyncio
import queue
import threading
from typing import Any, Callable, Coroutine, Optional, Sequence, TypeVar, Union

from repro.core import ir
from repro.service.api import (
    AnswerEnvelope,
    RelationResult,
    ServiceStats,
    Submittable,
)

_T = TypeVar("_T")


class BridgedHandle:
    """A synchronous, future-style view of one awaitable handle."""

    def __init__(self, bridge: "BridgedService", handle: Any, tag: Optional[str] = None) -> None:
        self._bridge = bridge
        self._handle = handle
        self.tag = tag if tag is not None else getattr(handle, "tag", None)

    # -- live state (attribute reads are loop-thread writes, GIL-atomic) ----------------------

    @property
    def query_id(self) -> str:
        return self._handle.query_id

    @property
    def owner(self) -> Optional[str]:
        return self._handle.owner

    @property
    def status(self) -> Any:
        return self._handle.status

    @property
    def error(self) -> Optional[str]:
        return self._handle.error

    @property
    def answer(self) -> Optional[ir.GroundAnswer]:
        return self._handle.answer

    @property
    def group_query_ids(self) -> tuple[str, ...]:
        return self._handle.group_query_ids

    @property
    def is_answered(self) -> bool:
        return self._handle.is_answered

    @property
    def registered_at(self) -> float:
        return self._handle.registered_at

    @property
    def answered_at(self) -> Optional[float]:
        return self._handle.answered_at

    # -- the future-style surface --------------------------------------------------------------

    def done(self) -> bool:
        return self._handle.done()

    def cancelled(self) -> bool:
        return self._handle.cancelled()

    def result(self, timeout: Optional[float] = None) -> AnswerEnvelope:
        """Block the calling thread until answered (the coroutine enforces
        the deadline and raises the typed timeout/cancellation errors)."""
        return self._bridge.run(self._handle.result(timeout=timeout))

    def exception(self, timeout: Optional[float] = None) -> Optional[Exception]:
        return self._bridge.run(self._handle.exception(timeout=timeout))

    def add_done_callback(self, fn: Callable[["BridgedHandle"], Any]) -> None:
        """Run ``fn(handle)`` on completion.

        Fires immediately in the calling thread if already terminal (the
        sync handles' contract); otherwise fires on the bridge's dispatcher
        thread, so ``fn`` may call back into the service.
        """
        if self.done():
            try:
                fn(self)
            except Exception:  # noqa: BLE001 - mirror the sync callback guard
                pass
            return

        def register() -> None:
            # Registration must happen on the loop: the async handles hang
            # their callbacks off a loop-owned asyncio.Future, which is not
            # thread-safe to mutate from here (a completion racing the
            # append could drop the callback, and a done future would
            # call_soon from a foreign thread).  A handle that completed
            # before this runs still fires: the future is done, so the
            # loop-side add_done_callback schedules immediately.
            self._handle.add_done_callback(
                lambda _async_handle: self._bridge._enqueue_callback(fn, self)
            )

        self._bridge.call_on_loop(register)

    def cancel(self) -> None:
        """Withdraw this query from the pending pool."""
        self._bridge.run(self._handle.cancel())

    # -- identity -------------------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        other_id = getattr(other, "query_id", None)
        if other_id is None:
            return NotImplemented
        return self.query_id == other_id

    def __hash__(self) -> int:
        return hash(self.query_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BridgedHandle({self._handle!r})"


class BridgedService:
    """A synchronous :class:`~repro.service.api.CoordinationService` facade
    over any async service, hosted on a private event-loop thread."""

    def __init__(
        self,
        service: Optional[Any] = None,
        service_factory: Optional[Callable[[], Coroutine[Any, Any, Any]]] = None,
    ) -> None:
        """Wrap ``service`` directly, or await ``service_factory()`` on the
        bridge loop (for services whose construction is itself async, e.g.
        :meth:`~repro.service.aio.client.AsyncRemoteService.connect`)."""
        if (service is None) == (service_factory is None):
            raise ValueError("provide exactly one of 'service' or 'service_factory'")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="youtopia-aio-bridge", daemon=True
        )
        self._thread.start()
        self._callbacks: "queue.Queue[Optional[tuple[Callable[[BridgedHandle], Any], BridgedHandle]]]" = (
            queue.Queue()
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_callbacks, name="youtopia-bridge-callbacks", daemon=True
        )
        self._dispatcher.start()
        self._closed = False
        try:
            self.aservice = service if service is not None else self.run(service_factory())
        except BaseException:
            self._teardown()
            raise

    # -- plumbing -------------------------------------------------------------------------------

    def run(self, coro: Coroutine[Any, Any, _T]) -> _T:
        """Run one coroutine on the bridge loop and block for its result."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def call_on_loop(self, fn: Callable[[], Any]) -> None:
        """Schedule a plain callable onto the bridge loop (fire and forget)."""
        self._loop.call_soon_threadsafe(fn)

    def _enqueue_callback(self, fn: Callable[[BridgedHandle], Any], handle: BridgedHandle) -> None:
        self._callbacks.put((fn, handle))

    def _dispatch_callbacks(self) -> None:
        while True:
            item = self._callbacks.get()
            if item is None:
                return
            fn, handle = item
            try:
                fn(handle)
            except Exception:  # noqa: BLE001 - observer failures stay contained
                pass

    def _wrap(self, handle: Any, tag: Optional[str] = None) -> BridgedHandle:
        return BridgedHandle(self, handle, tag=tag)

    # -- lifecycle ------------------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.run(self.aservice.close())
        finally:
            self._teardown()

    def _teardown(self) -> None:
        self._callbacks.put(None)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    def __enter__(self) -> "BridgedService":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- the synchronous service surface ---------------------------------------------------------

    def submit(self, request: Submittable, owner: Optional[str] = None) -> BridgedHandle:
        return self._wrap(self.run(self.aservice.submit(request, owner)))

    def submit_many(
        self, requests: Sequence[Submittable], owner: Optional[str] = None
    ) -> list[BridgedHandle]:
        return [
            self._wrap(handle)
            for handle in self.run(self.aservice.submit_many(requests, owner))
        ]

    def wait(self, query_id: str, timeout: Optional[float] = None) -> AnswerEnvelope:
        return self.run(self.aservice.wait(query_id, timeout=timeout))

    def wait_many(
        self, query_ids: Sequence[str], timeout: Optional[float] = None
    ) -> list[AnswerEnvelope]:
        return self.run(self.aservice.wait_many(query_ids, timeout=timeout))

    def cancel(self, query_id: str) -> None:
        self.run(self.aservice.cancel(query_id))

    def query(self, sql: str) -> RelationResult:
        return self.run(self.aservice.query(sql))

    def execute(
        self, sql: str, owner: Optional[str] = None
    ) -> Union[RelationResult, BridgedHandle]:
        result = self.run(self.aservice.execute(sql, owner=owner))
        if isinstance(result, RelationResult):
            return result
        return self._wrap(result)

    def execute_script(
        self, sql: str, owner: Optional[str] = None
    ) -> list[Union[RelationResult, BridgedHandle]]:
        return [
            result if isinstance(result, RelationResult) else self._wrap(result)
            for result in self.run(self.aservice.execute_script(sql, owner=owner))
        ]

    def answers(self, relation: str) -> list[tuple[Any, ...]]:
        return self.run(self.aservice.answers(relation))

    def stats(self) -> ServiceStats:
        return self.run(self.aservice.stats())

    def declare_answer_relation(
        self,
        name: str,
        columns: Optional[Sequence[str]] = None,
        types: Optional[Sequence[str]] = None,
        arity: Optional[int] = None,
    ) -> None:
        self.run(
            self.aservice.declare_answer_relation(
                name, columns=columns, types=types, arity=arity
            )
        )

    def drain(self, timeout: Optional[float] = None) -> bool:
        return bool(self.run(self.aservice.drain(timeout)))

    # -- introspection extensions ------------------------------------------------------------------

    def request(self, query_id: str) -> BridgedHandle:
        return self._wrap(self.run(self.aservice.request(query_id)))

    def requests(self) -> list[BridgedHandle]:
        return [self._wrap(handle) for handle in self.run(self.aservice.requests())]

    def pending_queries(self) -> list[ir.EntangledQuery]:
        return self.run(self.aservice.pending_queries())

    def retry_pending(self) -> int:
        return int(self.run(self.aservice.retry_pending()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BridgedService({self.aservice!r})"


def connect_bridged(
    host: str = "127.0.0.1", port: int = 7399, connect_timeout: Optional[float] = 5.0
) -> BridgedService:
    """A synchronous facade over an :class:`AsyncRemoteService` connection
    (what ``youtopia-cli connect --async`` uses)."""
    from repro.service.aio.client import AsyncRemoteService

    return BridgedService(
        service_factory=lambda: AsyncRemoteService.connect(
            host=host, port=port, connect_timeout=connect_timeout
        )
    )
