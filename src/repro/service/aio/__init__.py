"""The asyncio-native coordination service API (``repro.service.aio``).

The awaitable twin of :mod:`repro.service`: the same DTOs and wire codec,
an async call surface, and a single-event-loop network plane.

* :class:`~repro.service.aio.api.AsyncCoordinationService` /
  :class:`~repro.service.aio.api.AsyncIntrospectionService` — the protocols
* :class:`~repro.service.aio.handles.AsyncRequestHandle` — awaitable handles
  (``await handle`` → :class:`~repro.service.api.AnswerEnvelope`)
* :class:`~repro.service.aio.inprocess.AsyncInProcessService` — in-process
  implementation (compute on an executor, waits callback-driven)
* :class:`~repro.service.aio.server.AsyncCoordinationServer` /
  :class:`~repro.service.aio.server.BackgroundAsyncServer` — the asyncio
  network server (same wire protocol as the threaded one)
* :class:`~repro.service.aio.client.AsyncRemoteService` /
  :class:`~repro.service.aio.client.AsyncRemoteHandle` — the multiplexed
  asyncio client
* :class:`~repro.service.aio.bridge.BridgedService` — a synchronous facade
  over any async service (CLI ``connect --async``, conformance runs)

See ``docs/API.md`` ("Async quickstart") and ``docs/ARCHITECTURE.md``
("The request plane") for the contract and the backpressure rules.
"""

from repro.service.aio.api import AsyncCoordinationService, AsyncIntrospectionService
from repro.service.aio.bridge import BridgedHandle, BridgedService, connect_bridged
from repro.service.aio.client import AsyncRemoteHandle, AsyncRemoteService, connect_async
from repro.service.aio.handles import AsyncRequestHandle
from repro.service.aio.inprocess import AsyncInProcessService
from repro.service.aio.server import (
    AsyncCoordinationServer,
    AsyncServerBase,
    BackgroundAsyncServer,
)

__all__ = [
    "AsyncCoordinationServer",
    "AsyncServerBase",
    "AsyncCoordinationService",
    "AsyncInProcessService",
    "AsyncIntrospectionService",
    "AsyncRemoteHandle",
    "AsyncRemoteService",
    "AsyncRequestHandle",
    "BackgroundAsyncServer",
    "BridgedHandle",
    "BridgedService",
    "connect_async",
    "connect_bridged",
]
