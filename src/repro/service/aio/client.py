"""The asyncio client of the remote coordination service.

:class:`AsyncRemoteService` speaks the :mod:`repro.service.remote.codec`
protocol over one TCP connection — against either the threaded
:class:`~repro.service.remote.CoordinationServer` or the asyncio
:class:`~repro.service.aio.server.AsyncCoordinationServer`; the wire format
is identical — and implements the
:class:`~repro.service.aio.api.AsyncCoordinationService` /
:class:`~repro.service.aio.api.AsyncIntrospectionService` protocols.

Concurrency model (one connection, zero extra threads):

* any number of **tasks** issue RPCs concurrently; frames carry a
  correlation id, so calls multiplex freely over the single socket;
* one **reader task** demultiplexes response frames to awaiting callers and
  applies ``done`` push notifications to the local
  :class:`AsyncRemoteHandle` registry;
* ``await handle`` and ``add_done_callback`` are push-driven: no polling
  RPCs are issued while a query is pending.

If the connection dies — server shutdown, network failure, or
:meth:`AsyncRemoteService.close` — every RPC in flight and every
non-terminal handle fails fast with
:class:`~repro.errors.ServiceUnavailableError`; nothing hangs.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
from typing import Any, Optional, Sequence, Union

from repro.core import ir
from repro.core.compiler import compile_entangled
from repro.core.coordinator import QueryStatus
from repro.errors import EntanglementError, ProtocolError, ServiceUnavailableError
from repro.service.aio.handles import AwaitableHandle, _mark_retrieved
from repro.service.api import (
    AnswerEnvelope,
    RelationResult,
    ServiceStats,
    Submittable,
)
from repro.service.remote import codec
from repro.service.remote.client import RemoteService

_TERMINAL = (QueryStatus.ANSWERED, QueryStatus.CANCELLED, QueryStatus.REJECTED)


class AsyncRemoteHandle(AwaitableHandle):
    """An awaitable, push-driven handle for one remotely submitted query.

    The async twin of :class:`~repro.service.remote.client.RemoteHandle`:
    state transitions arrive as server pushes that resolve the handle's
    future on the event loop; a lost connection fails the handle with
    :class:`~repro.errors.ServiceUnavailableError` instead of hanging.
    The awaitable surface (``await handle`` / ``result`` / ``exception`` /
    ``add_done_callback`` / identity) is shared with the in-process handle
    via :class:`~repro.service.aio.handles.AwaitableHandle`.
    """

    def __init__(
        self,
        service: "AsyncRemoteService",
        state: dict[str, Any],
        tag: Optional[str] = None,
    ) -> None:
        self._service = service
        self.tag = tag
        self._future: "asyncio.Future[AnswerEnvelope]" = (
            asyncio.get_running_loop().create_future()
        )
        self._future.add_done_callback(_mark_retrieved)
        self._query_id = str(state["query_id"])
        self._owner = state.get("owner")
        self._sql = state.get("sql")
        self._description = state.get("description") or ""
        self._registered_at = float(state.get("registered_at") or 0.0)
        self._status = QueryStatus.PENDING
        self._error: Optional[str] = None
        self._group: tuple[str, ...] = ()
        self._answer: Optional[ir.GroundAnswer] = None
        self._answered_at: Optional[float] = None
        self._apply_state(state)

    # -- state ingestion (reader task / constructor, loop thread only) ----------------------

    def _apply_state(self, state: dict[str, Any]) -> None:
        """Fold a pushed snapshot in; resolves the future when terminal."""
        self._status = QueryStatus(state.get("status", "pending"))
        self._error = state.get("error")
        self._group = tuple(state.get("group") or ())
        self._answered_at = state.get("answered_at")
        answer = state.get("answer")
        if answer is not None:
            self._answer = codec.decode_answer(self._query_id, answer)
        if self._status not in _TERMINAL or self._future.done():
            return
        if self._status is QueryStatus.ANSWERED:
            if self._answer is None:
                # the server degraded the push because the answer payload
                # could not cross the wire (see codec.encode_done_push)
                self._future.set_exception(
                    ProtocolError(
                        self._error
                        or f"query {self._query_id!r} answered, but the answer "
                        "could not be delivered"
                    )
                )
                return
            self._future.set_result(
                AnswerEnvelope(
                    query_id=self._query_id,
                    owner=self._owner,
                    tuples=dict(self._answer.tuples),
                    binding=dict(self._answer.binding),
                    group=self._group,
                    answered_at=self._answered_at,
                )
            )
        else:
            self._future.set_exception(
                EntanglementError(
                    f"query {self._query_id!r} is {self._status.value}: {self._error or ''}"
                )
            )

    def _fail(self, exc: Exception) -> None:
        """Connection lost while pending: release awaiters with the failure."""
        if not self._future.done():
            self._future.set_exception(exc)

    # -- live state -------------------------------------------------------------------------

    @property
    def query_id(self) -> str:
        return self._query_id

    @property
    def owner(self) -> Optional[str]:
        return self._owner

    @property
    def sql(self) -> Optional[str]:
        return self._sql

    @property
    def status(self) -> QueryStatus:
        return self._status

    @property
    def error(self) -> Optional[str]:
        return self._error

    @property
    def answer(self) -> Optional[ir.GroundAnswer]:
        return self._answer

    @property
    def group_query_ids(self) -> tuple[str, ...]:
        return self._group

    @property
    def is_answered(self) -> bool:
        return self._status is QueryStatus.ANSWERED

    @property
    def registered_at(self) -> float:
        return self._registered_at

    @property
    def answered_at(self) -> Optional[float]:
        return self._answered_at

    # -- handle-specific operations (the awaitable surface lives on the base) ----------------

    def _wait_future(self) -> "asyncio.Future[AnswerEnvelope]":
        return self._future

    def done(self) -> bool:
        """Whether the request reached a terminal state (any outcome)."""
        return self._status in _TERMINAL

    def cancelled(self) -> bool:
        return self._status is QueryStatus.CANCELLED

    async def cancel(self) -> None:
        """Withdraw this query from the pending pool (server round trip)."""
        await self._service.cancel(self._query_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AsyncRemoteHandle({self._query_id!r}, owner={self._owner!r}, "
            f"status={self._status.value!r})"
        )


class AsyncRemoteService:
    """An :class:`AsyncCoordinationService` proxy over one multiplexed socket."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        host: str,
        port: int,
    ) -> None:
        """Internal: use :meth:`connect` (the reader task must be started)."""
        self.host = host
        self.port = port
        self._reader = reader
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self._frame_ids = itertools.count(1)
        self._calls: dict[int, "asyncio.Future[Any]"] = {}
        self._handles: dict[str, AsyncRemoteHandle] = {}
        self._unclaimed_done: dict[str, dict[str, Any]] = {}
        self._failure: Optional[Exception] = None
        self._closing = False
        self._reader_task: Optional["asyncio.Task[None]"] = None
        self.server_info: dict[str, Any] = {}
        #: Frames written to the socket (the transport tests and the
        #: connection-scaling benchmark prove batching with this: one
        #: submit_many = one frame).
        self.frames_sent = 0

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 7399,
        connect_timeout: Optional[float] = 5.0,
    ) -> "AsyncRemoteService":
        """Open a connection and complete the hello handshake."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), connect_timeout
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServiceUnavailableError(f"cannot connect to {host}:{port}: {exc}") from exc
        service = cls(reader, writer, host, port)
        service._reader_task = asyncio.get_running_loop().create_task(
            service._reader_loop()
        )
        try:
            hello = await service._call("hello")
            if not isinstance(hello, dict) or hello.get("server") != "youtopia":
                raise ProtocolError(
                    f"peer at {host}:{port} is not a coordination server: {hello!r}"
                )
        except BaseException:
            # a failed handshake (bad peer, protocol garbage, cancellation)
            # must not leak the socket and reader task until GC
            await service.close()
            raise
        service.server_info = hello
        return service

    # -- lifecycle ---------------------------------------------------------------------------

    async def close(self) -> None:
        """Drop the connection; in-flight calls and pending handles fail fast."""
        self._closing = True
        self._fail(ServiceUnavailableError("connection closed by this client"))
        if self._reader_task is not None:
            self._reader_task.cancel()
        try:
            self._writer.close()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass

    async def __aenter__(self) -> "AsyncRemoteService":
        return self

    async def __aexit__(self, *_exc: object) -> None:
        await self.close()

    # -- transport plumbing -------------------------------------------------------------------

    async def _send(self, payload: dict[str, Any]) -> None:
        frame = codec.encode_frame(payload)
        async with self._write_lock:
            try:
                self._writer.write(frame)
                await self._writer.drain()
            except (ConnectionError, OSError) as exc:
                raise ServiceUnavailableError(f"send failed: {exc}") from exc
            self.frames_sent += 1

    async def _call(self, op: str, **args: Any) -> Any:
        if self._failure is not None:
            raise self._failure
        frame_id = next(self._frame_ids)
        future: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
        self._calls[frame_id] = future
        try:
            await self._send(codec.request_frame(frame_id, op, args))
        except ServiceUnavailableError:
            self._calls.pop(frame_id, None)
            raise
        return await future

    async def _reader_loop(self) -> None:
        try:
            while True:
                frame = await codec.read_frame_async(self._reader)
                if frame is None:
                    raise ServiceUnavailableError("server closed the connection")
                if frame.get("push") is not None:
                    self._on_push(frame)
                else:
                    self._on_response(frame)
        except asyncio.CancelledError:
            raise
        except ConnectionError:
            self._fail(ServiceUnavailableError("server closed the connection"))
        except (ProtocolError, ServiceUnavailableError) as exc:
            self._fail(exc)
        except OSError as exc:
            self._fail(ServiceUnavailableError(f"connection lost: {exc}"))

    def _on_response(self, frame: dict[str, Any]) -> None:
        frame_id = frame.get("id")
        future = self._calls.pop(frame_id, None) if isinstance(frame_id, int) else None
        if future is None or future.done():
            return
        if frame.get("ok"):
            future.set_result(frame.get("result"))
        else:
            future.set_exception(codec.decode_error(frame.get("error") or {}))

    def _on_push(self, frame: dict[str, Any]) -> None:
        if frame.get("push") != "done":
            return
        state = frame.get("data") or {}
        query_id = str(state.get("query_id"))
        handle = self._handles.get(query_id)
        if handle is None:
            # The push for a submit can overtake the submit response; park
            # the state until the handle is created.
            self._unclaimed_done[query_id] = state
            return
        handle._apply_state(state)
        if handle.done():
            # One push per watch: drop the registry entry so a long-lived
            # connection does not accumulate one per query.
            self._handles.pop(query_id, None)

    def _fail(self, exc: Exception) -> None:
        if self._failure is not None:
            return
        if self._closing:
            exc = ServiceUnavailableError("connection closed by this client")
        self._failure = exc
        calls, self._calls = self._calls, {}
        for future in calls.values():
            if not future.done():
                future.set_exception(exc)
        handles, self._handles = self._handles, {}
        for handle in handles.values():
            handle._fail(exc)

    # -- handle management ---------------------------------------------------------------------

    def _handle_from_state(
        self, state: dict[str, Any], tag: Optional[str] = None
    ) -> AsyncRemoteHandle:
        """Build (or reuse) the handle for one request-state snapshot.

        Mirrors the sync client: only *pending* handles enter the push
        registry — a terminal snapshot can never change again, and
        batch-rejected duplicates share their id with the originally
        registered query, whose live handle must not be clobbered.
        """
        query_id = str(state["query_id"])
        if QueryStatus(state.get("status", "pending")) in _TERMINAL:
            return AsyncRemoteHandle(self, state, tag=tag)
        existing = self._handles.get(query_id)
        if existing is not None:
            return existing
        handle = AsyncRemoteHandle(self, state, tag=tag)
        self._handles[query_id] = handle
        parked = self._unclaimed_done.pop(query_id, None)
        if parked is not None:  # pragma: no cover - push-overtakes-response window
            handle._apply_state(parked)
            if handle.done():
                self._handles.pop(query_id, None)
        if self._failure is not None:
            handle._fail(self._failure)
        return handle

    # -- submission ------------------------------------------------------------------------------

    async def submit(
        self, request: Submittable, owner: Optional[str] = None
    ) -> AsyncRemoteHandle:
        """Submit one entangled query; returns a push-driven awaitable handle."""
        item, tag = RemoteService._wire_item(request, owner)
        state = await self._call("submit", item=item)
        return self._handle_from_state(state, tag=tag)

    async def submit_many(
        self, requests: Sequence[Submittable], owner: Optional[str] = None
    ) -> list[AsyncRemoteHandle]:
        """Submit a whole batch in **one request frame** and one server pass."""
        items: list[dict[str, Any]] = []
        tags: list[Optional[str]] = []
        for request in requests:
            item, tag = RemoteService._wire_item(request, owner)
            items.append(item)
            tags.append(tag)
        states = await self._call("submit_many", items=items)
        return [
            self._handle_from_state(state, tag=tag) for state, tag in zip(states, tags)
        ]

    # -- waiting / cancellation --------------------------------------------------------------------

    async def wait(self, query_id: str, timeout: Optional[float] = None) -> AnswerEnvelope:
        """Wait server-side until answered; raises like the in-process wait."""
        state = await self._call("wait", query_id=query_id, timeout=timeout)
        return self._envelope_from_state(state)

    async def wait_many(
        self, query_ids: Sequence[str], timeout: Optional[float] = None
    ) -> list[AnswerEnvelope]:
        states = await self._call("wait_many", query_ids=list(query_ids), timeout=timeout)
        return [self._envelope_from_state(state) for state in states]

    @staticmethod
    def _envelope_from_state(state: dict[str, Any]) -> AnswerEnvelope:
        query_id = str(state["query_id"])
        answer = codec.decode_answer(query_id, state.get("answer") or {})
        return AnswerEnvelope(
            query_id=query_id,
            owner=state.get("owner"),
            tuples=dict(answer.tuples),
            binding=dict(answer.binding),
            group=tuple(state.get("group") or ()),
            answered_at=state.get("answered_at"),
        )

    async def cancel(self, query_id: str) -> None:
        await self._call("cancel", query_id=query_id)

    # -- plain SQL -----------------------------------------------------------------------------------

    async def query(self, sql: str) -> RelationResult:
        return codec.decode_relation_result(await self._call("query", sql=sql))

    def _untag_result(
        self, tagged: dict[str, Any]
    ) -> Union[RelationResult, AsyncRemoteHandle]:
        if tagged.get("kind") == "handle":
            return self._handle_from_state(tagged["state"])
        return codec.decode_relation_result(tagged.get("result") or {})

    async def execute(
        self, sql: str, owner: Optional[str] = None
    ) -> Union[RelationResult, AsyncRemoteHandle]:
        """Route one statement: plain SQL → rows, entangled SQL → handle."""
        return self._untag_result(await self._call("execute", sql=sql, owner=owner))

    async def execute_script(
        self, sql: str, owner: Optional[str] = None
    ) -> list[Union[RelationResult, AsyncRemoteHandle]]:
        return [
            self._untag_result(tagged)
            for tagged in await self._call("execute_script", sql=sql, owner=owner)
        ]

    # -- answers / statistics -------------------------------------------------------------------------

    async def answers(self, relation: str) -> list[tuple[Any, ...]]:
        return [tuple(values) for values in await self._call("answers", relation=relation)]

    async def stats(self) -> ServiceStats:
        return codec.decode_stats(await self._call("stats"))

    async def declare_answer_relation(
        self,
        name: str,
        columns: Optional[Sequence[str]] = None,
        types: Optional[Sequence[str]] = None,
        arity: Optional[int] = None,
    ) -> None:
        await self._call(
            "declare_answer_relation",
            name=name,
            columns=None if columns is None else list(columns),
            types=None if types is None else list(types),
            arity=arity,
        )

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until the server's match workers drained their event queues."""
        return bool(await self._call("drain", timeout=timeout))

    # -- introspection extensions (AsyncIntrospectionService) -----------------------------------------

    async def request(self, query_id: str) -> AsyncRemoteHandle:
        return self._handle_from_state(await self._call("request", query_id=query_id))

    async def requests(self) -> list[AsyncRemoteHandle]:
        return [self._handle_from_state(state) for state in await self._call("requests")]

    async def pending_queries(self) -> list[ir.EntangledQuery]:
        """The server's pending pool, re-compiled client-side from SQL text."""
        pending: list[ir.EntangledQuery] = []
        for item in await self._call("pending_queries"):
            query_id = str(item["query_id"])
            owner = item.get("owner")
            if item.get("sql"):
                query = compile_entangled(item["sql"], owner=owner)
                query = dataclasses.replace(query, query_id=query_id)
            else:  # programmatically built server-side; carry the identity only
                query = ir.EntangledQuery(query_id=query_id, heads=(), owner=owner)
            if item.get("priority") is not None:
                query = dataclasses.replace(query, priority=float(item["priority"]))
            pending.append(query)
        return pending

    async def retry_pending(self) -> int:
        return int(await self._call("retry_pending"))

    async def shutdown_server(self) -> None:
        """Ask the server to stop (it answers, then closes every connection)."""
        await self._call("shutdown")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AsyncRemoteService({self.host}:{self.port})"


async def connect_async(
    host: str = "127.0.0.1", port: int = 7399, connect_timeout: Optional[float] = 5.0
) -> AsyncRemoteService:
    """Connect to a coordination server (either transport) asynchronously."""
    return await AsyncRemoteService.connect(
        host=host, port=port, connect_timeout=connect_timeout
    )
