"""The asyncio adapter over the in-process coordination service.

:class:`AsyncInProcessService` implements
:class:`~repro.service.aio.api.AsyncCoordinationService` /
:class:`~repro.service.aio.api.AsyncIntrospectionService` by wrapping a
synchronous :class:`~repro.service.InProcessService`.  The division of labour:

* **blocking compute** — matching passes, SQL execution, WAL fsyncs,
  ``drain`` — is dispatched to a private thread pool via
  ``loop.run_in_executor``; the event loop never runs coordination work;
* **waiting** is *not* dispatched: a pending query costs no thread.  ``wait``
  and awaited handles are resolved by the coordinator's thread-side
  completion callbacks, bridged onto the loop with
  ``loop.call_soon_threadsafe`` (see
  :class:`~repro.service.aio.handles.AsyncRequestHandle`), so thousands of
  idle pending queries multiplex over one loop and a handful of pool threads.
"""

from __future__ import annotations

import asyncio
import functools
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional, Sequence, TypeVar, Union

from repro.core import ir
from repro.core.config import SystemConfig
from repro.core.events import EventType
from repro.core.system import YoutopiaSystem
from repro.errors import CoordinationTimeoutError
from repro.service.api import (
    AnswerEnvelope,
    RelationResult,
    ServiceStats,
    Submittable,
)
from repro.service.aio.handles import AsyncRequestHandle
from repro.service.handles import RequestHandle
from repro.service.inprocess import InProcessService
from repro.sqlparser import ast
from repro.storage.database import Database

_T = TypeVar("_T")

#: Default size of the blocking-work pool.  Sized for compute dispatch, not
#: for waiting — waits are callback-driven and hold no thread.
DEFAULT_EXECUTOR_WORKERS = 8


class AsyncInProcessService:
    """An :class:`AsyncCoordinationService` over an in-process system."""

    def __init__(
        self,
        service: Optional[InProcessService] = None,
        system: Optional[YoutopiaSystem] = None,
        config: Optional[SystemConfig] = None,
        database: Optional[Database] = None,
        executor_workers: int = DEFAULT_EXECUTOR_WORKERS,
    ) -> None:
        if service is None:
            service = InProcessService(system=system, config=config, database=database)
        self._sync = service
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="youtopia-aio"
        )
        self._closed = False
        #: One shared awaitable handle per query being waited on, so a
        #: retry loop of timed-out ``wait`` calls registers a single
        #: coordinator callback instead of leaking one per attempt.
        #: Entries evict themselves on resolution (loop thread only).
        self._wait_handles: dict[str, AsyncRequestHandle] = {}

    # -- plumbing ---------------------------------------------------------------------------

    @property
    def sync_service(self) -> InProcessService:
        """The wrapped synchronous service (thread-world escape hatch)."""
        return self._sync

    @property
    def system(self) -> YoutopiaSystem:
        return self._sync.system

    async def _run(self, fn: Callable[..., _T], *args: Any, **kwargs: Any) -> _T:
        """Run blocking service work on the pool, never on the loop."""
        loop = asyncio.get_running_loop()
        if kwargs:
            fn = functools.partial(fn, *args, **kwargs)
            return await loop.run_in_executor(self._executor, fn)
        return await loop.run_in_executor(self._executor, fn, *args)

    def _wrap(self, handle: RequestHandle) -> AsyncRequestHandle:
        return AsyncRequestHandle(handle, asyncio.get_running_loop(), canceller=self.cancel)

    # -- lifecycle --------------------------------------------------------------------------

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        await self._run(self._sync.close)
        self._executor.shutdown(wait=False)

    def shutdown_executor(self) -> None:
        """Release the dispatch pool without closing the wrapped service.

        For owners of the *adapter* but not the service — e.g. a server
        wrapping a caller-provided ``InProcessService`` shuts its own
        executor down on stop while leaving the service running.
        """
        self._closed = True
        self._executor.shutdown(wait=False)

    async def __aenter__(self) -> "AsyncInProcessService":
        return self

    async def __aexit__(self, *_exc: object) -> None:
        await self.close()

    # -- submission -------------------------------------------------------------------------

    async def submit(
        self, request: Submittable, owner: Optional[str] = None
    ) -> AsyncRequestHandle:
        """Submit one entangled query; returns an awaitable handle."""
        handle = await self._run(self._sync.submit, request, owner)
        return self._wrap(handle)

    async def submit_many(
        self, requests: Sequence[Submittable], owner: Optional[str] = None
    ) -> list[AsyncRequestHandle]:
        """Submit a whole batch in one executor hop and one match pass."""
        handles = await self._run(self._sync.submit_many, requests, owner)
        return [self._wrap(handle) for handle in handles]

    # -- waiting / cancellation --------------------------------------------------------------

    async def wait(self, query_id: str, timeout: Optional[float] = None) -> AnswerEnvelope:
        """Suspend until answered — callback-driven, no thread parked.

        Raises exactly like the synchronous service: typed
        :class:`~repro.errors.QueryNotPendingError` for unknown ids,
        :class:`~repro.errors.EntanglementError` for cancelled/rejected
        queries, :class:`~repro.errors.CoordinationTimeoutError` on deadline.
        """
        handle = self._wait_handles.get(query_id)
        if handle is None:
            handle = self._wrap(await self._run(self._sync.request, query_id))
            if not handle.done():
                self._wait_handles[query_id] = handle
                handle.add_done_callback(
                    lambda _handle: self._wait_handles.pop(query_id, None)
                )
        try:
            return await handle.result(timeout=timeout)
        except CoordinationTimeoutError:
            # mirror the synchronous Coordinator.wait bookkeeping so the
            # stats/events surface is transport-indistinguishable; event
            # subscribers run off-loop, like any other blocking work
            await self._run(self._record_wait_timeout, query_id)
            raise

    def _record_wait_timeout(self, query_id: str) -> None:
        coordinator = self._sync.coordinator
        coordinator.statistics.queries_timed_out += 1
        coordinator.events.publish(EventType.QUERY_TIMED_OUT, query_id=query_id)

    async def wait_many(
        self, query_ids: Sequence[str], timeout: Optional[float] = None
    ) -> list[AnswerEnvelope]:
        """Suspend until every query is answered (one shared deadline)."""
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        envelopes: list[AnswerEnvelope] = []
        for query_id in query_ids:
            remaining = None if deadline is None else max(deadline - loop.time(), 0.0)
            envelopes.append(await self.wait(query_id, timeout=remaining))
        return envelopes

    async def cancel(self, query_id: str) -> None:
        """Withdraw a pending query (cancellation may journal: off-loop)."""
        await self._run(self._sync.cancel, query_id)

    # -- plain SQL ----------------------------------------------------------------------------

    async def query(self, sql: str) -> RelationResult:
        return await self._run(self._sync.query, sql)

    async def execute(
        self, sql: Union[str, ast.Statement], owner: Optional[str] = None
    ) -> Union[RelationResult, AsyncRequestHandle]:
        """Route one statement: plain SQL → rows, entangled SQL → handle."""
        result = await self._run(self._sync.execute, sql, owner)
        if isinstance(result, RequestHandle):
            return self._wrap(result)
        return result

    async def execute_script(
        self, sql: str, owner: Optional[str] = None
    ) -> list[Union[RelationResult, AsyncRequestHandle]]:
        results = await self._run(self._sync.execute_script, sql, owner)
        return [
            self._wrap(result) if isinstance(result, RequestHandle) else result
            for result in results
        ]

    # -- answers / statistics ------------------------------------------------------------------

    async def answers(self, relation: str) -> list[tuple[Any, ...]]:
        return await self._run(self._sync.answers, relation)

    async def stats(self) -> ServiceStats:
        return await self._run(self._sync.stats)

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Block (on a pool thread) until the match workers drained."""
        return await self._run(self._sync.drain, timeout)

    async def declare_answer_relation(
        self,
        name: str,
        columns: Optional[Sequence[str]] = None,
        types: Optional[Sequence[str]] = None,
        arity: Optional[int] = None,
    ) -> None:
        await self._run(
            self._sync.declare_answer_relation,
            name,
            columns=columns,
            types=types,
            arity=arity,
        )

    # -- introspection extensions --------------------------------------------------------------

    async def request(self, query_id: str) -> AsyncRequestHandle:
        return self._wrap(await self._run(self._sync.request, query_id))

    async def requests(self) -> list[AsyncRequestHandle]:
        return [self._wrap(handle) for handle in await self._run(self._sync.requests)]

    async def pending_queries(self) -> list[ir.EntangledQuery]:
        return await self._run(self._sync.pending_queries)

    async def retry_pending(self) -> int:
        return await self._run(self._sync.retry_pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AsyncInProcessService({self._sync!r})"
