"""Async protocols of the coordination service: the awaitable contract.

This module mirrors :mod:`repro.service.api` for asyncio callers.  The DTOs
(:class:`~repro.service.api.SubmitRequest`,
:class:`~repro.service.api.AnswerEnvelope`,
:class:`~repro.service.api.RelationResult`,
:class:`~repro.service.api.ServiceStats`) are shared unchanged — only the
call surface changes: every method is a coroutine, and ``submit`` /
``submit_many`` return **awaitable handles** (``await handle`` yields the
:class:`~repro.service.api.AnswerEnvelope`) instead of thread-blocking ones.

Two implementations exist:

* :class:`~repro.service.aio.inprocess.AsyncInProcessService` — wraps the
  synchronous :class:`~repro.service.InProcessService`; blocking matching and
  durability work runs on an executor, never on the event loop, and waiting
  is bridged from the coordinator's thread-side completion callbacks via
  ``loop.call_soon_threadsafe`` — thousands of pending queries cost zero
  threads while they wait.
* :class:`~repro.service.aio.client.AsyncRemoteService` — one multiplexed
  TCP connection to a coordination server (either transport), speaking the
  exact wire codec of :mod:`repro.service.remote.codec`.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.core import ir
from repro.service.api import (
    AnswerEnvelope,
    RelationResult,
    ServiceStats,
    Submittable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.aio.handles import AsyncRequestHandle


@runtime_checkable
class AsyncCoordinationService(Protocol):
    """The asyncio-native coordination API (awaitable twin of
    :class:`~repro.service.api.CoordinationService`)."""

    async def submit(
        self, request: Submittable, owner: Optional[str] = None
    ) -> "AsyncRequestHandle":
        """Submit one entangled query; returns an awaitable handle."""
        ...

    async def submit_many(
        self, requests: Sequence[Submittable], owner: Optional[str] = None
    ) -> list["AsyncRequestHandle"]:
        """Submit a batch in one coordination pass; one handle per request."""
        ...

    async def wait(self, query_id: str, timeout: Optional[float] = None) -> AnswerEnvelope:
        """Suspend (without blocking a thread) until a query is answered."""
        ...

    async def wait_many(
        self, query_ids: Sequence[str], timeout: Optional[float] = None
    ) -> list[AnswerEnvelope]:
        """Suspend until every listed query is answered (shared deadline)."""
        ...

    async def cancel(self, query_id: str) -> None:
        """Withdraw a pending query from the pool."""
        ...

    async def query(self, sql: str) -> RelationResult:
        """Run a plain SELECT and return its rows."""
        ...

    async def answers(self, relation: str) -> list[tuple[Any, ...]]:
        """The current contents of an answer relation."""
        ...

    async def stats(self) -> ServiceStats:
        """Coordination statistics plus the pending-pool size."""
        ...


@runtime_checkable
class AsyncIntrospectionService(Protocol):
    """Admin-grade extensions, awaitable flavour."""

    async def request(self, query_id: str) -> "AsyncRequestHandle":
        """A handle for an already-registered query."""
        ...

    async def requests(self) -> list["AsyncRequestHandle"]:
        """Handles for every request ever registered."""
        ...

    async def pending_queries(self) -> list[ir.EntangledQuery]:
        """The current pending pool."""
        ...

    async def retry_pending(self) -> int:
        """Re-attempt coordination for the whole pool; returns newly answered."""
        ...
