"""Awaitable handles for entangled queries submitted through the async API.

:class:`AsyncRequestHandle` is the asyncio twin of
:class:`~repro.service.handles.RequestHandle`: it wraps the synchronous
in-process handle and exposes it as an awaitable — ``await handle`` suspends
the coroutine until coordination resolves the query and yields the
:class:`~repro.service.api.AnswerEnvelope`.

The bridge between the two worlds is one completion callback: the wrapped
handle's ``add_done_callback`` fires in whatever thread answers, cancels or
rejects the query (a match worker, a cancelling caller, the submitting
thread), and that callback schedules the handle's ``asyncio.Future``
resolution onto the owning event loop via ``loop.call_soon_threadsafe``.  No
thread ever blocks on a pending handle — ten thousand idle awaiting queries
cost ten thousand futures, not ten thousand threads.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Generator, Optional

from repro.core import ir
from repro.core.coordinator import QueryStatus
from repro.errors import CoordinationTimeoutError, EntanglementError
from repro.service.api import AnswerEnvelope
from repro.service.handles import RequestHandle

_TERMINAL = (QueryStatus.ANSWERED, QueryStatus.CANCELLED, QueryStatus.REJECTED)


def _mark_retrieved(future: "asyncio.Future[Any]") -> None:
    """Read a failed future's exception so GC never logs it as unretrieved.

    Awaitable handles may legitimately never be awaited (fire-and-forget
    submissions observed via callbacks); their failure must not turn into an
    'exception was never retrieved' warning at collection time.
    """
    if future.done() and not future.cancelled():
        future.exception()


class AwaitableHandle:
    """The shared awaitable surface of the async handles.

    Both the in-process :class:`AsyncRequestHandle` and the network
    :class:`~repro.service.aio.client.AsyncRemoteHandle` resolve through
    one loop-side ``asyncio.Future``; everything downstream of that future
    — ``await handle``, timeout shielding, the loop-scheduled done
    callbacks, query-id identity — lives here so the two cannot drift.
    Subclasses provide :meth:`_wait_future` (and ``query_id``).
    """

    __slots__ = ()

    @property
    def query_id(self) -> str:  # pragma: no cover - every subclass overrides
        raise NotImplementedError

    def _wait_future(self) -> "asyncio.Future[AnswerEnvelope]":
        """The future the awaitable surface resolves through."""
        raise NotImplementedError  # pragma: no cover - every subclass overrides

    def __await__(self) -> Generator[Any, None, AnswerEnvelope]:
        return self.result().__await__()

    async def result(self, timeout: Optional[float] = None) -> AnswerEnvelope:
        """Suspend until answered and return the envelope (never blocks a thread).

        Raises :class:`~repro.errors.CoordinationTimeoutError` on timeout and
        :class:`~repro.errors.EntanglementError` if the query was cancelled
        or rejected — the same contract as the synchronous handles'
        ``result``.  A timeout abandons only *this* wait: the shared future
        stays live for other awaiters and callbacks.
        """
        future = self._wait_future()
        if timeout is None:
            return await asyncio.shield(future)
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            raise CoordinationTimeoutError(self.query_id, timeout) from None

    async def exception(self, timeout: Optional[float] = None) -> Optional[EntanglementError]:
        """The terminal error, or ``None`` if answered (suspends like result)."""
        try:
            await self.result(timeout=timeout)
        except CoordinationTimeoutError:
            raise
        except EntanglementError as exc:
            return exc
        return None

    def add_done_callback(self, fn: Callable[[Any], Any]) -> None:
        """Run ``fn(handle)`` on the event loop once the request is terminal.

        Unlike the thread-world handles, the callback *always* runs on the
        loop (via ``call_soon``), even when the request is already terminal —
        asyncio callers never see a callback fire re-entrantly inside
        ``add_done_callback``.  Callback exceptions are swallowed, mirroring
        the synchronous callback guard.
        """
        future = self._wait_future()

        def runner(_future: "asyncio.Future[AnswerEnvelope]") -> None:
            try:
                fn(self)
            except Exception:  # noqa: BLE001 - observer failures stay contained
                pass

        future.add_done_callback(runner)

    def __eq__(self, other: object) -> bool:
        other_id = getattr(other, "query_id", None)
        if other_id is None:
            return NotImplemented
        return self.query_id == other_id

    def __hash__(self) -> int:
        return hash(self.query_id)


class AsyncRequestHandle(AwaitableHandle):
    """An awaitable view of one submitted entangled query."""

    __slots__ = ("_handle", "_loop", "_canceller", "_future")

    def __init__(
        self,
        handle: RequestHandle,
        loop: asyncio.AbstractEventLoop,
        canceller: Optional[Callable[[str], Any]] = None,
    ) -> None:
        self._handle = handle
        self._loop = loop
        #: Coroutine function invoked by :meth:`cancel` (the owning service's
        #: ``cancel``, which routes the blocking work off the loop).
        self._canceller = canceller
        self._future: Optional[asyncio.Future[AnswerEnvelope]] = None

    # -- live state (delegates to the wrapped sync handle) ----------------------------------

    @property
    def sync_handle(self) -> RequestHandle:
        """The wrapped thread-world handle (in-process escape hatch)."""
        return self._handle

    @property
    def query(self) -> ir.EntangledQuery:
        return self._handle.query

    @property
    def query_id(self) -> str:
        return self._handle.query_id

    @property
    def owner(self) -> Optional[str]:
        return self._handle.owner

    @property
    def tag(self) -> Optional[str]:
        return self._handle.tag

    @property
    def status(self) -> QueryStatus:
        return self._handle.status

    @property
    def error(self) -> Optional[str]:
        return self._handle.error

    @property
    def answer(self) -> Optional[ir.GroundAnswer]:
        return self._handle.answer

    @property
    def group_query_ids(self) -> tuple[str, ...]:
        return self._handle.group_query_ids

    @property
    def is_answered(self) -> bool:
        return self._handle.is_answered

    @property
    def registered_at(self) -> float:
        return self._handle.registered_at

    @property
    def answered_at(self) -> Optional[float]:
        return self._handle.answered_at

    def done(self) -> bool:
        """Whether the request reached a terminal state (any outcome)."""
        return self._handle.done()

    def cancelled(self) -> bool:
        return self._handle.cancelled()

    # -- the future bridge -------------------------------------------------------------------

    def _ensure_future(self) -> "asyncio.Future[AnswerEnvelope]":
        """The handle's loop-side future, creating the thread bridge once."""
        if self._future is None:
            self._future = self._loop.create_future()
            self._future.add_done_callback(_mark_retrieved)

            def bridge(_handle: RequestHandle) -> None:
                # Runs in the completing thread (or inline when already
                # terminal); hop onto the loop.  A loop torn down before the
                # query resolved simply drops the notification.
                try:
                    self._loop.call_soon_threadsafe(self._resolve)
                except RuntimeError:
                    pass

            self._handle.add_done_callback(bridge)
        return self._future

    _wait_future = _ensure_future

    def _resolve(self) -> None:
        """Fold the wrapped handle's terminal state into the future (loop side)."""
        future = self._future
        if future is None or future.done():
            return
        status = self._handle.status
        if status is QueryStatus.ANSWERED:
            future.set_result(AnswerEnvelope.from_request(self._handle.record))
        elif status in (QueryStatus.CANCELLED, QueryStatus.REJECTED):
            future.set_exception(
                EntanglementError(
                    f"query {self.query_id!r} is {status.value}: {self._handle.error or ''}"
                )
            )

    # -- handle-specific operations (the awaitable surface lives on the base) ---------------

    async def cancel(self) -> None:
        """Withdraw this query from the pending pool (off-loop)."""
        if self._canceller is None:
            self._handle.cancel()
            return
        await self._canceller(self.query_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AsyncRequestHandle({self.query_id!r}, owner={self.owner!r}, "
            f"status={self.status.value!r})"
        )
