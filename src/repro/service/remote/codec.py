"""Wire format of the remote coordination service.

Frames are length-prefixed JSON: a 4-byte big-endian payload length followed
by a UTF-8 JSON object.  Three envelope shapes travel over one connection:

========== ==================================================== =============
Shape      Fields                                               Direction
========== ==================================================== =============
request    ``{"v", "id", "op", "args"}``                        client→server
response   ``{"v", "id", "ok", "result"}`` or                   server→client
           ``{"v", "id", "ok": false, "error"}``
push       ``{"v", "push", "data"}``                            server→client
========== ==================================================== =============

``v`` is :data:`PROTOCOL_VERSION`; a peer receiving a higher major version
rejects the frame with :class:`~repro.errors.ProtocolError`.  ``id`` is a
client-assigned correlation number: responses are matched to requests by id,
so many calls can be in flight on one connection.  ``push`` frames carry
unsolicited server notifications (currently ``"done"``: a watched query
reached a terminal state) and have no id.

Errors cross the wire *typed*: :func:`encode_error` records the exception
class name plus its structured attributes (query id, timeout, table name ...)
and :func:`decode_error` reconstructs the same exception type client-side, so
``except CoordinationTimeoutError`` works identically against a remote
service and an in-process one.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Callable, Mapping, Optional

from repro import errors
from repro.errors import ProtocolError

#: Bumped on incompatible changes to the envelope or operation set.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's JSON payload (a defence against garbage length
#: prefixes from a non-protocol peer, not a practical limit).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """Serialise one envelope to its on-wire bytes (length prefix + JSON)."""
    try:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"payload is not JSON-serialisable: {exc}") from exc
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def _read_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of {count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def decode_frame_length(header: bytes) -> int:
    """Validate a 4-byte length prefix and return the declared body length."""
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return length


def decode_frame_body(body: bytes) -> dict[str, Any]:
    """Decode one frame body (the bytes after the length prefix) to its envelope.

    Shared by the socket reader below and the asyncio transport
    (:mod:`repro.service.aio`), which reads the same wire format through
    stream APIs — both ends of either transport speak identical frames.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(payload).__name__}")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this endpoint speaks {PROTOCOL_VERSION}"
        )
    return payload


async def read_frame_async(
    reader: "asyncio.StreamReader", on_bytes: Optional[Callable[[int], None]] = None
) -> Optional[dict[str, Any]]:
    """Read one envelope from an asyncio stream (the coroutine twin of
    :func:`read_frame` — same return/raise contract, same wire format).

    Returns ``None`` on a clean end-of-stream; raises
    :class:`~repro.errors.ProtocolError` for truncated or malformed frames
    and version mismatches; connection failures surface as ``OSError`` /
    ``ConnectionError`` from the stream.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(exc.partial)} of {_HEADER.size} bytes read)"
        ) from exc
    length = decode_frame_length(header)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of {length} bytes read)"
        ) from exc
    if on_bytes is not None:
        on_bytes(_HEADER.size + length)
    return decode_frame_body(body)


def read_frame(
    sock: socket.socket, on_bytes: Optional[Callable[[int], None]] = None
) -> Optional[dict[str, Any]]:
    """Read one envelope from a socket.

    Returns ``None`` on a clean end-of-stream (the peer closed between
    frames) and raises :class:`~repro.errors.ProtocolError` for truncated or
    malformed frames and version mismatches.  ``on_bytes`` (when given) is
    called with the frame's total wire size — header plus body — so servers
    can account traffic without re-encoding.
    """
    header = _read_exact(sock, _HEADER.size)
    if header is None:
        return None
    length = decode_frame_length(header)
    body = _read_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between frame header and body")
    if on_bytes is not None:
        on_bytes(_HEADER.size + length)
    return decode_frame_body(body)


# ---------------------------------------------------------------------------
# Envelopes
# ---------------------------------------------------------------------------


def request_frame(frame_id: int, op: str, args: Mapping[str, Any]) -> dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "id": frame_id, "op": op, "args": dict(args)}


def response_frame(frame_id: int, result: Any) -> dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "id": frame_id, "ok": True, "result": result}


def error_frame(frame_id: int, exc: BaseException) -> dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "id": frame_id, "ok": False, "error": encode_error(exc)}


def push_frame(kind: str, data: Mapping[str, Any]) -> dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "push": kind, "data": dict(data)}


def encode_done_push(record: Any) -> bytes:
    """Encode a ``done`` push for one request record, degrading safely.

    When the full state cannot cross the wire (an answer payload over
    :data:`MAX_FRAME_BYTES`, or a value JSON cannot carry), the push falls
    back to the same state with the answer stripped and the failure noted in
    ``error`` — still correlated by query id, so the watching client resolves
    with a typed error instead of waiting forever for a push that silently
    failed to encode.  Used by both network servers.
    """
    state = encode_request_state(record)
    try:
        return encode_frame(push_frame("done", state))
    except ProtocolError as exc:
        state["answer"] = None
        state["error"] = f"answer could not be delivered: {exc}"
        return encode_frame(push_frame("done", state))


# ---------------------------------------------------------------------------
# Typed error marshalling
# ---------------------------------------------------------------------------

#: Exception classes that may cross the wire, addressed by class name.  The
#: client reconstructs the *same type*, so typed ``except`` clauses behave
#: identically against remote and in-process services.
_MARSHALLED_ERRORS: dict[str, type[Exception]] = {
    cls.__name__: cls
    for cls in (
        errors.YoutopiaError,
        errors.StorageError,
        errors.SchemaError,
        errors.UnknownTableError,
        errors.DuplicateTableError,
        errors.UnknownColumnError,
        errors.TypeMismatchError,
        errors.ConstraintViolationError,
        errors.TransactionError,
        errors.ParseError,
        errors.PlanError,
        errors.EvaluationError,
        errors.EntanglementError,
        errors.CompilationError,
        errors.SafetyError,
        errors.UniquenessError,
        errors.QueryNotPendingError,
        errors.QueryAlreadyAnsweredError,
        errors.CoordinationTimeoutError,
        errors.ExecutionError,
        errors.ScriptError,
        errors.ServiceUnavailableError,
        errors.ProtocolError,
        errors.ApplicationError,
        errors.UnknownUserError,
        errors.BookingError,
    )
}

#: Structured attributes preserved across the wire (when present).
_ERROR_ATTRS = (
    "query_id",
    "timeout",
    "table_name",
    "column",
    "table",
    "line",
    "username",
    "reason",
    "statement_index",
    "statement_sql",
)


def encode_error(exc: BaseException) -> dict[str, Any]:
    """``exception -> {"code", "message", "data"}`` for the error envelope."""
    data: dict[str, Any] = {}
    for attr in _ERROR_ATTRS:
        value = getattr(exc, attr, None)
        if value is not None and isinstance(value, (str, int, float, bool)):
            data[attr] = value
    if isinstance(exc, errors.ScriptError):
        data["cause"] = encode_error(exc.cause)
    code = type(exc).__name__
    if code not in _MARSHALLED_ERRORS:
        # Unknown subclasses degrade to their closest marshalled ancestor.
        for ancestor in type(exc).__mro__:
            if ancestor.__name__ in _MARSHALLED_ERRORS:
                code = ancestor.__name__
                break
        else:
            code = "YoutopiaError"
    return {"code": code, "message": str(exc), "data": data}


def decode_error(payload: Mapping[str, Any]) -> Exception:
    """Reconstruct the typed exception described by an error envelope."""
    code = payload.get("code")
    message = str(payload.get("message", ""))
    data = payload.get("data") or {}
    cls = _MARSHALLED_ERRORS.get(str(code))
    if cls is None:
        return ProtocolError(f"server reported unknown error code {code!r}: {message}")

    # Classes whose constructors rebuild the message from structured fields.
    try:
        if cls is errors.UnknownTableError or cls is errors.DuplicateTableError:
            return cls(data["table_name"])
        if cls is errors.UnknownColumnError:
            return cls(data["column"], data.get("table"))
        if cls is errors.ParseError:
            # The message already carries the rendered location suffix; set
            # the positional attributes without re-appending it.
            parse_error = cls(message)
            parse_error.line = data.get("line")
            parse_error.column = data.get("column")
            return parse_error
        if cls is errors.QueryNotPendingError or cls is errors.QueryAlreadyAnsweredError:
            return cls(data["query_id"])
        if cls is errors.CoordinationTimeoutError:
            return cls(data["query_id"], float(data["timeout"]))
        if cls is errors.ScriptError:
            return cls(
                int(data["statement_index"]),
                str(data.get("statement_sql", "")),
                decode_error(data["cause"]) if "cause" in data else errors.YoutopiaError(message),
            )
        if cls is errors.ServiceUnavailableError:
            return cls(data.get("reason", message))
        if cls is errors.UnknownUserError:
            return cls(data["username"])
        return cls(message)
    except (KeyError, TypeError, ValueError):
        # A peer sent a recognised code with unusable data; keep the message.
        return errors.YoutopiaError(message)


# ---------------------------------------------------------------------------
# Value codecs (request state, answers, relation results)
# ---------------------------------------------------------------------------
#
# These translate the service DTOs to and from JSON-safe structures.  Tuples
# become lists on the wire and are restored client-side; cell values are the
# system's scalar types (str / int / float / bool / None), which JSON carries
# natively.


def encode_answer(answer: Any) -> dict[str, Any]:
    """``ir.GroundAnswer -> JSON`` (binding + per-relation tuple lists)."""
    return {
        "binding": dict(answer.binding),
        "tuples": {
            relation: [list(values) for values in relation_tuples]
            for relation, relation_tuples in answer.tuples.items()
        },
    }


def decode_answer(query_id: str, payload: Mapping[str, Any]) -> Any:
    from repro.core import ir

    return ir.GroundAnswer(
        query_id=query_id,
        binding=dict(payload.get("binding") or {}),
        tuples={
            relation: tuple(tuple(values) for values in relation_tuples)
            for relation, relation_tuples in (payload.get("tuples") or {}).items()
        },
    )


def encode_request_state(record: Any) -> dict[str, Any]:
    """Snapshot one coordination request (record or handle) for the wire."""
    return {
        "query_id": record.query_id,
        "owner": record.owner,
        "status": record.status.value,
        "error": record.error,
        "group": list(record.group_query_ids),
        "registered_at": record.registered_at,
        "answered_at": record.answered_at,
        "sql": record.query.sql,
        "priority": record.query.priority,
        "description": record.query.describe(),
        "answer": None if record.answer is None else encode_answer(record.answer),
    }


def encode_stats(stats: Any, transport: Mapping[str, int]) -> dict[str, Any]:
    """``ServiceStats + a server's transport snapshot -> JSON`` (one source
    of the wire shape for both servers)."""
    return {
        "counters": dict(stats.counters),
        "pending": stats.pending,
        "shards": [dict(shard) for shard in stats.shards],
        "durability": dict(stats.durability),
        "transport": dict(transport),
        "cluster": dict(getattr(stats, "cluster", None) or {}),
        "matching": dict(getattr(stats, "matching", None) or {}),
        "tiering": dict(getattr(stats, "tiering", None) or {"enabled": False}),
    }


def decode_stats(payload: Mapping[str, Any]) -> Any:
    from repro.service.api import ServiceStats

    return ServiceStats(
        counters=dict(payload.get("counters") or {}),
        pending=int(payload.get("pending", 0)),
        shards=tuple(dict(shard) for shard in payload.get("shards") or ()),
        durability=dict(payload.get("durability") or {"enabled": False}),
        transport=dict(payload.get("transport") or {}),
        cluster=dict(payload.get("cluster") or {}),
        matching=dict(payload.get("matching") or {}),
        tiering=dict(payload.get("tiering") or {"enabled": False}),
    )


def encode_relation_result(result: Any) -> dict[str, Any]:
    return {
        "command": result.command,
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "affected": result.affected,
    }


def decode_relation_result(payload: Mapping[str, Any]) -> Any:
    from repro.service.api import RelationResult

    return RelationResult(
        command=str(payload.get("command", "")),
        columns=tuple(payload.get("columns") or ()),
        rows=tuple(tuple(row) for row in payload.get("rows") or ()),
        affected=int(payload.get("affected", 0)),
    )
