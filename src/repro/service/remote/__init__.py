"""Network transport for the coordination service.

The paper frames Youtopia's coordination component as a *service* behind a
travel web site's middle tier — many client applications, one coordinating
system.  This package redeems the promise made by :mod:`repro.service`: the
same :class:`~repro.service.api.CoordinationService` /
:class:`~repro.service.api.IntrospectionService` protocols, spoken over a
length-prefixed JSON-over-TCP wire protocol, so callers cannot tell a remote
deployment from the in-process one.

* :mod:`repro.service.remote.codec` — the wire format: versioned
  request/response frames and typed error marshalling.
* :class:`~repro.service.remote.server.CoordinationServer` — hosts one
  :class:`~repro.service.InProcessService` behind a threaded socket accept
  loop; pushes answer notifications to clients.
* :class:`~repro.service.remote.client.RemoteService` — the client-side
  implementation of the service protocols; ``submit``/``submit_many`` return
  :class:`~repro.service.remote.client.RemoteHandle` objects whose
  ``result()`` / ``add_done_callback`` are driven by server push, not polling.

See the "Remote deployment" section of ``docs/API.md`` for the wire format
and failure semantics, and ``examples/remote_travel.py`` for a two-process
walkthrough.
"""

from repro.service.remote.client import RemoteHandle, RemoteService, connect
from repro.service.remote.server import CoordinationServer, serve

__all__ = [
    "CoordinationServer",
    "RemoteHandle",
    "RemoteService",
    "connect",
    "serve",
]
