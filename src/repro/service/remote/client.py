"""The client side of the remote coordination service.

:class:`RemoteService` speaks the :mod:`repro.service.remote.codec` protocol
against a :class:`~repro.service.remote.server.CoordinationServer` and
implements the full :class:`~repro.service.api.CoordinationService` and
:class:`~repro.service.api.IntrospectionService` protocols — application code
written against the in-process service runs against a remote one unchanged.

Concurrency model (one TCP connection, three kinds of thread):

* any number of **caller threads** issue RPCs; frames carry a correlation id,
  so calls from many threads are in flight simultaneously;
* one **reader thread** demultiplexes response frames to the waiting callers
  and applies ``done`` push notifications to the local
  :class:`RemoteHandle` registry;
* one **callback dispatcher thread** runs user ``add_done_callback``
  functions, so a callback may freely call back into the service (an RPC
  from the reader thread itself would deadlock).

``RemoteHandle.result()`` and ``add_done_callback`` are therefore push-driven
futures: no polling RPCs are issued while waiting.  If the connection dies —
server shutdown, network failure, or :meth:`RemoteService.close` — every RPC
in flight and every non-terminal handle fails fast with
:class:`~repro.errors.ServiceUnavailableError`; nothing hangs.
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
from typing import Any, Callable, Optional, Sequence, Union

from repro.core import ir
from repro.core.compiler import compile_entangled
from repro.core.coordinator import QueryStatus
from repro.errors import (
    CoordinationTimeoutError,
    EntanglementError,
    ProtocolError,
    ServiceUnavailableError,
)
from repro.service.api import (
    AnswerEnvelope,
    RelationResult,
    ServiceStats,
    Submittable,
    SubmitRequest,
)
from repro.service.remote import codec
from repro.sqlparser import ast
from repro.sqlparser.pretty import format_statement

_TERMINAL = (QueryStatus.ANSWERED, QueryStatus.CANCELLED, QueryStatus.REJECTED)


class _PendingCall:
    """One RPC awaiting its response frame."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.error: Optional[Exception] = None


class RemoteHandle:
    """A future-style handle for one entangled query submitted over the wire.

    Mirrors :class:`~repro.service.handles.RequestHandle`: ``result(timeout)``
    / ``done()`` / ``exception()`` / ``add_done_callback`` / ``cancel()``,
    equality by query id.  State transitions arrive as server pushes; when the
    connection is lost while the query is still pending, the handle fails
    with :class:`~repro.errors.ServiceUnavailableError` instead of hanging.
    """

    def __init__(self, service: "RemoteService", state: dict[str, Any], tag: Optional[str] = None) -> None:
        self._service = service
        self.tag = tag
        self._lock = threading.Lock()
        self._terminal_event = threading.Event()
        self._callbacks: list[Callable[["RemoteHandle"], Any]] = []
        self._failure: Optional[Exception] = None
        self._query_id = str(state["query_id"])
        self._owner = state.get("owner")
        self._sql = state.get("sql")
        self._description = state.get("description") or ""
        self._registered_at = float(state.get("registered_at") or 0.0)
        self._status = QueryStatus.PENDING
        self._error: Optional[str] = None
        self._group: tuple[str, ...] = ()
        self._answer: Optional[ir.GroundAnswer] = None
        self._answered_at: Optional[float] = None
        self._apply_state(state)

    # -- state ingestion (reader thread / constructor) -----------------------------------------

    def _apply_state(self, state: dict[str, Any]) -> list[Callable[["RemoteHandle"], Any]]:
        """Fold a pushed snapshot in; returns callbacks to fire if now terminal."""
        with self._lock:
            self._status = QueryStatus(state.get("status", "pending"))
            self._error = state.get("error")
            self._group = tuple(state.get("group") or ())
            self._answered_at = state.get("answered_at")
            answer = state.get("answer")
            if answer is not None:
                self._answer = codec.decode_answer(self._query_id, answer)
            if self._status not in _TERMINAL:
                return []
            callbacks, self._callbacks = self._callbacks, []
            self._terminal_event.set()
            return callbacks

    def _fail(self, exc: Exception) -> list[Callable[["RemoteHandle"], Any]]:
        """Connection lost: release waiters; returns callbacks to fire."""
        with self._lock:
            if self._terminal_event.is_set():
                return []
            self._failure = exc
            callbacks, self._callbacks = self._callbacks, []
            self._terminal_event.set()
            return callbacks

    # -- live state -----------------------------------------------------------------------------

    @property
    def query_id(self) -> str:
        return self._query_id

    @property
    def owner(self) -> Optional[str]:
        return self._owner

    @property
    def sql(self) -> Optional[str]:
        return self._sql

    @property
    def status(self) -> QueryStatus:
        return self._status

    @property
    def error(self) -> Optional[str]:
        return self._error

    @property
    def answer(self) -> Optional[ir.GroundAnswer]:
        return self._answer

    @property
    def group_query_ids(self) -> tuple[str, ...]:
        return self._group

    @property
    def is_answered(self) -> bool:
        return self._status is QueryStatus.ANSWERED

    @property
    def registered_at(self) -> float:
        return self._registered_at

    @property
    def answered_at(self) -> Optional[float]:
        return self._answered_at

    # -- the future-style surface -----------------------------------------------------------------

    def done(self) -> bool:
        """Whether the request reached a terminal state (any outcome)."""
        return self._status in _TERMINAL

    def cancelled(self) -> bool:
        return self._status is QueryStatus.CANCELLED

    def result(self, timeout: Optional[float] = None) -> AnswerEnvelope:
        """Block (push-driven, no polling) until answered; envelope or raise."""
        if not self._terminal_event.wait(timeout):
            # wait() only returns False with a finite timeout, so the error
            # reports the actual configured deadline (``timeout or 0.0``
            # would misrender an explicit 0 and hide the real value).
            raise CoordinationTimeoutError(
                self._query_id, timeout if timeout is not None else 0.0
            )
        with self._lock:
            if self._status is QueryStatus.ANSWERED:
                if self._answer is None:
                    # the server degraded the push because the answer payload
                    # could not cross the wire (see codec.encode_done_push)
                    raise ProtocolError(
                        self._error
                        or f"query {self._query_id!r} answered, but the answer "
                        "could not be delivered"
                    )
                return AnswerEnvelope(
                    query_id=self._query_id,
                    owner=self._owner,
                    tuples=dict(self._answer.tuples),
                    binding=dict(self._answer.binding),
                    group=self._group,
                    answered_at=self._answered_at,
                )
            if self._status in (QueryStatus.CANCELLED, QueryStatus.REJECTED):
                raise EntanglementError(
                    f"query {self._query_id!r} is {self._status.value}: {self._error or ''}"
                )
            assert self._failure is not None
            raise self._failure

    def exception(self, timeout: Optional[float] = None) -> Optional[EntanglementError]:
        """The terminal error, or ``None`` if answered (blocks like result)."""
        try:
            self.result(timeout=timeout)
        except CoordinationTimeoutError:
            raise
        except EntanglementError as exc:
            return exc
        return None

    def add_done_callback(self, fn: Callable[["RemoteHandle"], Any]) -> None:
        """Run ``fn(handle)`` on completion (or connection failure).

        Fires immediately in the calling thread if already terminal;
        otherwise fires on the client's callback dispatcher thread when the
        server pushes the final state — so ``fn`` may safely call back into
        the service.
        """
        with self._lock:
            if not self._terminal_event.is_set():
                self._callbacks.append(fn)
                return
        try:
            fn(self)
        except Exception:  # noqa: BLE001 - mirror the in-process callback guard
            pass

    def cancel(self) -> None:
        """Withdraw this query from the pending pool (server round trip)."""
        self._service.cancel(self._query_id)

    # -- identity ---------------------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        other_id = getattr(other, "query_id", None)
        if other_id is None:
            return NotImplemented
        return self._query_id == other_id

    def __hash__(self) -> int:
        return hash(self._query_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteHandle({self._query_id!r}, owner={self._owner!r}, "
            f"status={self._status.value!r})"
        )


class RemoteService:
    """A :class:`CoordinationService` proxy over one TCP connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7399,
        connect_timeout: Optional[float] = 5.0,
    ) -> None:
        self.host = host
        self.port = port
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout)
        except OSError as exc:
            raise ServiceUnavailableError(f"cannot connect to {host}:{port}: {exc}") from exc
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._frame_ids = itertools.count(1)
        self._calls: dict[int, _PendingCall] = {}
        self._handles: dict[str, RemoteHandle] = {}
        self._unclaimed_done: dict[str, dict[str, Any]] = {}
        self._failure: Optional[Exception] = None
        self._closing = False
        #: Frames written to the socket (read by the transport tests and the
        #: benchmark to prove batching: one submit_many = one frame).
        self.frames_sent = 0

        self._callback_queue: "queue.Queue[Optional[tuple[Callable[[RemoteHandle], Any], RemoteHandle]]]" = queue.Queue()
        self._dispatcher = threading.Thread(
            target=self._dispatch_callbacks, name="youtopia-client-callbacks", daemon=True
        )
        self._dispatcher.start()
        self._reader = threading.Thread(
            target=self._reader_loop, name="youtopia-client-reader", daemon=True
        )
        self._reader.start()

        hello = self._call("hello")
        if not isinstance(hello, dict) or hello.get("server") != "youtopia":
            self.close()
            raise ProtocolError(f"peer at {host}:{port} is not a coordination server: {hello!r}")
        self.server_info = hello

    @classmethod
    def connect(
        cls, host: str = "127.0.0.1", port: int = 7399, connect_timeout: Optional[float] = 5.0
    ) -> "RemoteService":
        return cls(host=host, port=port, connect_timeout=connect_timeout)

    # -- lifecycle --------------------------------------------------------------------------------

    def close(self) -> None:
        """Drop the connection; in-flight calls and pending handles fail fast."""
        with self._state_lock:
            self._closing = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._fail(ServiceUnavailableError("connection closed by this client"))

    def __enter__(self) -> "RemoteService":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- transport plumbing -----------------------------------------------------------------------

    def _send(self, payload: dict[str, Any]) -> None:
        frame = codec.encode_frame(payload)
        with self._send_lock:
            try:
                self._sock.sendall(frame)
            except OSError as exc:
                raise ServiceUnavailableError(f"send failed: {exc}") from exc
            self.frames_sent += 1

    def _call(self, op: str, **args: Any) -> Any:
        call = _PendingCall()
        with self._state_lock:
            if self._failure is not None:
                raise self._failure
            frame_id = next(self._frame_ids)
            self._calls[frame_id] = call
        try:
            self._send(codec.request_frame(frame_id, op, args))
        except ServiceUnavailableError:
            with self._state_lock:
                self._calls.pop(frame_id, None)
            raise
        call.event.wait()
        if call.error is not None:
            raise call.error
        return call.result

    def _reader_loop(self) -> None:
        try:
            while True:
                frame = codec.read_frame(self._sock)
                if frame is None:
                    raise ServiceUnavailableError("server closed the connection")
                if frame.get("push") is not None:
                    self._on_push(frame)
                else:
                    self._on_response(frame)
        except (ProtocolError, ServiceUnavailableError) as exc:
            self._fail(exc)
        except OSError as exc:
            self._fail(ServiceUnavailableError(f"connection lost: {exc}"))

    def _on_response(self, frame: dict[str, Any]) -> None:
        frame_id = frame.get("id")
        with self._state_lock:
            call = self._calls.pop(frame_id, None) if isinstance(frame_id, int) else None
        if call is None:
            return
        if frame.get("ok"):
            call.result = frame.get("result")
        else:
            call.error = codec.decode_error(frame.get("error") or {})
        call.event.set()

    def _on_push(self, frame: dict[str, Any]) -> None:
        if frame.get("push") != "done":
            return
        state = frame.get("data") or {}
        query_id = str(state.get("query_id"))
        with self._state_lock:
            handle = self._handles.get(query_id)
            if handle is None:
                # The push for a submit can overtake the submit response; park
                # the state until the handle is created.
                self._unclaimed_done[query_id] = state
                return
        callbacks = handle._apply_state(state)
        if handle.done():
            # Terminal handles receive no further pushes (the server sends
            # exactly one per watch); drop the registry entry so a
            # long-lived connection does not accumulate one per query.
            with self._state_lock:
                self._handles.pop(query_id, None)
        for fn in callbacks:
            self._callback_queue.put((fn, handle))

    def _dispatch_callbacks(self) -> None:
        while True:
            item = self._callback_queue.get()
            if item is None:
                return
            fn, handle = item
            try:
                fn(handle)
            except Exception:  # noqa: BLE001 - observer failures stay contained
                pass

    def _fail(self, exc: Exception) -> None:
        with self._state_lock:
            if self._failure is not None:
                return
            if self._closing:
                exc = ServiceUnavailableError("connection closed by this client")
            self._failure = exc
            calls, self._calls = self._calls, {}
            handles = [h for h in self._handles.values() if not h.done()]
        for call in calls.values():
            call.error = exc
            call.event.set()
        for handle in handles:
            for fn in handle._fail(exc):
                self._callback_queue.put((fn, handle))
        self._callback_queue.put(None)

    # -- handle management --------------------------------------------------------------------------

    def _handle_from_state(self, state: dict[str, Any], tag: Optional[str] = None) -> RemoteHandle:
        """Build (or reuse) the handle for one request-state snapshot.

        Only *pending* handles enter the push registry: a terminal snapshot
        can never change again, and batch-rejected duplicates share their id
        with the originally registered query, whose live handle must not be
        clobbered.
        """
        query_id = str(state["query_id"])
        if QueryStatus(state.get("status", "pending")) in _TERMINAL:
            return RemoteHandle(self, state, tag=tag)
        with self._state_lock:
            existing = self._handles.get(query_id)
            if existing is not None:
                return existing
            handle = RemoteHandle(self, state, tag=tag)
            self._handles[query_id] = handle
            parked = self._unclaimed_done.pop(query_id, None)
            failure = self._failure
        if parked is not None:  # pragma: no cover - tiny push-overtakes-response window
            callbacks = handle._apply_state(parked)
            if handle.done():
                with self._state_lock:
                    self._handles.pop(query_id, None)
            for fn in callbacks:
                self._callback_queue.put((fn, handle))
        if failure is not None:
            for fn in handle._fail(failure):
                self._callback_queue.put((fn, handle))
        return handle

    # -- submission -----------------------------------------------------------------------------------

    @staticmethod
    def _wire_item(request: Submittable, owner: Optional[str]) -> tuple[dict[str, Any], Optional[str]]:
        """``Submittable -> ({"sql", "owner", "query_id"?, "priority"?}, tag)``.

        SQL text travels as-is (the server compiles and assigns the id).  A
        pre-compiled :class:`~repro.core.ir.EntangledQuery` travels as its
        recorded SQL plus its client-side query id, which the server grafts
        back on, preserving id-based semantics (duplicate detection,
        introspection) across the wire.  ``priority`` travels as an extra JSON
        key only when set — older servers simply ignore it.
        """
        tag: Optional[str] = None
        priority: Optional[float] = None
        if isinstance(request, SubmitRequest):
            tag = request.tag
            owner = request.owner or owner
            priority = request.priority
            request = request.payload()
        item: dict[str, Any]
        if isinstance(request, str):
            item = {"sql": request, "owner": owner}
        elif isinstance(request, ast.EntangledSelect):
            item = {"sql": format_statement(request), "owner": owner}
        elif isinstance(request, ir.EntangledQuery):
            if not request.sql:
                raise ProtocolError(
                    f"entangled query {request.query_id!r} was built programmatically and "
                    "records no SQL text; only SQL-backed queries can be submitted remotely"
                )
            if priority is None:
                priority = request.priority
            item = {
                "sql": request.sql,
                "owner": request.owner or owner,
                "query_id": request.query_id,
            }
        else:
            raise ProtocolError(f"cannot submit a {type(request).__name__} over the wire")
        if priority is not None:
            item["priority"] = float(priority)
        return item, tag

    def submit(self, request: Submittable, owner: Optional[str] = None) -> RemoteHandle:
        """Submit one entangled query; returns a push-driven future handle."""
        item, tag = self._wire_item(request, owner)
        state = self._call("submit", item=item)
        return self._handle_from_state(state, tag=tag)

    def submit_many(
        self, requests: Sequence[Submittable], owner: Optional[str] = None
    ) -> list[RemoteHandle]:
        """Submit a whole batch in **one request frame** and one server pass."""
        items: list[dict[str, Any]] = []
        tags: list[Optional[str]] = []
        for request in requests:
            item, tag = self._wire_item(request, owner)
            items.append(item)
            tags.append(tag)
        states = self._call("submit_many", items=items)
        return [
            self._handle_from_state(state, tag=tag) for state, tag in zip(states, tags)
        ]

    # -- waiting / cancellation --------------------------------------------------------------------

    @staticmethod
    def _envelope_from_state(state: dict[str, Any]) -> AnswerEnvelope:
        query_id = str(state["query_id"])
        answer = codec.decode_answer(query_id, state.get("answer") or {})
        return AnswerEnvelope(
            query_id=query_id,
            owner=state.get("owner"),
            tuples=dict(answer.tuples),
            binding=dict(answer.binding),
            group=tuple(state.get("group") or ()),
            answered_at=state.get("answered_at"),
        )

    def wait(self, query_id: str, timeout: Optional[float] = None) -> AnswerEnvelope:
        """Block server-side until answered; raises like the in-process wait."""
        return self._envelope_from_state(self._call("wait", query_id=query_id, timeout=timeout))

    def wait_many(
        self, query_ids: Sequence[str], timeout: Optional[float] = None
    ) -> list[AnswerEnvelope]:
        states = self._call("wait_many", query_ids=list(query_ids), timeout=timeout)
        return [self._envelope_from_state(state) for state in states]

    def cancel(self, query_id: str) -> None:
        self._call("cancel", query_id=query_id)

    # -- plain SQL -----------------------------------------------------------------------------------

    def query(self, sql: str) -> RelationResult:
        return codec.decode_relation_result(self._call("query", sql=sql))

    def _untag_result(self, tagged: dict[str, Any]) -> Union[RelationResult, RemoteHandle]:
        if tagged.get("kind") == "handle":
            return self._handle_from_state(tagged["state"])
        return codec.decode_relation_result(tagged.get("result") or {})

    def execute(
        self, sql: str, owner: Optional[str] = None
    ) -> Union[RelationResult, RemoteHandle]:
        """Route one statement: plain SQL → rows, entangled SQL → handle."""
        return self._untag_result(self._call("execute", sql=sql, owner=owner))

    def execute_script(
        self, sql: str, owner: Optional[str] = None
    ) -> list[Union[RelationResult, RemoteHandle]]:
        return [
            self._untag_result(tagged)
            for tagged in self._call("execute_script", sql=sql, owner=owner)
        ]

    # -- answers / statistics -------------------------------------------------------------------------

    def answers(self, relation: str) -> list[tuple[Any, ...]]:
        return [tuple(values) for values in self._call("answers", relation=relation)]

    def stats(self) -> ServiceStats:
        return codec.decode_stats(self._call("stats"))

    def declare_answer_relation(
        self,
        name: str,
        columns: Optional[Sequence[str]] = None,
        types: Optional[Sequence[str]] = None,
        arity: Optional[int] = None,
    ) -> None:
        self._call(
            "declare_answer_relation",
            name=name,
            columns=None if columns is None else list(columns),
            types=None if types is None else list(types),
            arity=arity,
        )

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until the server's match workers drained their event queues."""
        return bool(self._call("drain", timeout=timeout))

    # -- introspection extensions (IntrospectionService) ------------------------------------------------

    def request(self, query_id: str) -> RemoteHandle:
        return self._handle_from_state(self._call("request", query_id=query_id))

    def requests(self) -> list[RemoteHandle]:
        return [self._handle_from_state(state) for state in self._call("requests")]

    def pending_queries(self) -> list[ir.EntangledQuery]:
        """The server's pending pool, re-compiled client-side from SQL text."""
        import dataclasses

        pending: list[ir.EntangledQuery] = []
        for item in self._call("pending_queries"):
            query_id = str(item["query_id"])
            owner = item.get("owner")
            if item.get("sql"):
                query = compile_entangled(item["sql"], owner=owner)
                query = dataclasses.replace(query, query_id=query_id)
            else:  # programmatically built server-side; carry the identity only
                query = ir.EntangledQuery(query_id=query_id, heads=(), owner=owner)
            if item.get("priority") is not None:
                query = dataclasses.replace(query, priority=float(item["priority"]))
            pending.append(query)
        return pending

    def retry_pending(self) -> int:
        return int(self._call("retry_pending"))

    def shutdown_server(self) -> None:
        """Ask the server to stop (it answers, then closes every connection)."""
        self._call("shutdown")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteService({self.host}:{self.port})"


def connect(
    host: str = "127.0.0.1", port: int = 7399, connect_timeout: Optional[float] = 5.0
) -> RemoteService:
    """Connect to a :class:`~repro.service.remote.server.CoordinationServer`."""
    return RemoteService.connect(host=host, port=port, connect_timeout=connect_timeout)
