"""The network server hosting one in-process coordination service.

:class:`CoordinationServer` puts a :class:`~repro.service.InProcessService`
(and therefore the sharded matcher and worker pool behind it) behind a TCP
socket speaking the :mod:`repro.service.remote.codec` wire protocol:

* an **accept loop** thread hands each connection to a per-connection
  **reader thread**;
* every decoded request is dispatched on its own short-lived handler thread,
  so a blocking operation (``wait``, ``drain``) on one connection never
  stalls other requests on the *same* connection — a client may wait in one
  thread and cancel from another, exactly as against the in-process service;
* for every handle a client holds, the server registers a coordinator
  done-callback that **pushes** the final request state to that client the
  moment the query is answered, cancelled or rejected — remote
  ``RequestHandle.result()`` / ``add_done_callback`` stay future-style
  instead of poll-based.

Entangled submissions travel as SQL text and are compiled server-side; a
client that pre-compiled IR sends the IR's SQL together with its query id,
which the server grafts back onto the compiled query so id-based semantics
(duplicate detection, introspection) are preserved end-to-end.
"""

from __future__ import annotations

import dataclasses
import socket
import threading
from typing import Any, Optional, Sequence, Union

from repro.core.compiler import compile_entangled
from repro.core.config import SystemConfig
from repro.errors import ProtocolError, ServiceUnavailableError
from repro.service.api import RelationResult
from repro.service.handles import RequestHandle
from repro.service.inprocess import InProcessService
from repro.service.metrics import TransportMetrics
from repro.service.remote import codec


class _ClientConnection:
    """One accepted client socket plus its serialised writer."""

    def __init__(self, server: "CoordinationServer", sock: socket.socket, peer: Any) -> None:
        self.server = server
        self.sock = sock
        self.peer = peer
        self._write_lock = threading.Lock()
        self._closed = False
        # Query ids this connection already watches: at most one push
        # callback per (connection, query), however often the client asks.
        self._watch_lock = threading.Lock()
        self._watched: set[str] = set()

    def claim_watch(self, query_id: str) -> bool:
        """True exactly once per query id (the caller registers the watch)."""
        with self._watch_lock:
            if query_id in self._watched:
                return False
            self._watched.add(query_id)
            return True

    def send(self, payload: dict[str, Any]) -> bool:
        """Write one frame; ``False`` (never raises) once the peer is gone."""
        try:
            frame = codec.encode_frame(payload)
        except ProtocolError as exc:
            # An unencodable result must not leave the client's RPC hanging:
            # marshal the encoding failure back under the correlation id.
            frame_id = payload.get("id")
            frame = codec.encode_frame(
                codec.error_frame(frame_id if isinstance(frame_id, int) else -1, exc)
            )
        return self.send_encoded(frame)

    def send_encoded(self, frame: bytes) -> bool:
        """Write pre-encoded bytes; ``False`` (never raises) once the peer is gone."""
        with self._write_lock:
            if self._closed:
                return False
            try:
                self.sock.sendall(frame)
                self.server.metrics.add_bytes_out(len(frame))
                return True
            except OSError:
                self._closed = True
                return False

    def close(self) -> None:
        with self._write_lock:
            self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class CoordinationServer:
    """Hosts a coordination service behind a length-prefixed JSON/TCP socket.

    ``port=0`` (the default) binds an ephemeral port; :meth:`start` returns
    the bound ``(host, port)`` address.  When the server *built* its own
    service it also closes it on :meth:`stop`; a service passed in by the
    caller is left running unless ``close_service=True``.
    """

    def __init__(
        self,
        service: Optional[InProcessService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[SystemConfig] = None,
        close_service: Optional[bool] = None,
    ) -> None:
        owns_service = service is None
        self.service = service or InProcessService(config=config)
        self._close_service = owns_service if close_service is None else close_service
        self._host = host
        self._port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self.metrics = TransportMetrics()
        self._connections: set[_ClientConnection] = set()
        self._lock = threading.Lock()
        self._started = False
        self._stopping = False
        self._stopped = threading.Event()

    # -- lifecycle --------------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; only meaningful after :meth:`start`."""
        return (self._host, self._port)

    def start(self) -> tuple[str, int]:
        """Bind, listen and start the accept loop; returns the address."""
        with self._lock:
            if self._started:
                return self.address
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
            listener.listen(64)
            self._host, self._port = listener.getsockname()
            self._listener = listener
            self._started = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="youtopia-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def wait_stopped(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`stop` *completed* (the ``serve`` entry point's loop).

        The event fires only after the owned service is closed, so a durable
        system's clean-shutdown checkpoint is on disk before the ``serve``
        process is allowed to exit.
        """
        return self._stopped.wait(timeout)

    def stop(self) -> None:
        """Close the listener and every client connection (idempotent).

        Clients see end-of-stream and fail their in-flight calls and pending
        handles fast with :class:`~repro.errors.ServiceUnavailableError`.
        """
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            listener, self._listener = self._listener, None
            connections = list(self._connections)
            self._connections.clear()
        try:
            if listener is not None:
                try:
                    listener.close()
                except OSError:
                    pass
            for connection in connections:
                connection.close()
            if self._close_service:
                self.service.close()
        finally:
            # always release wait_stopped(), even when closing the service
            # failed (e.g. a disk-full error from the shutdown checkpoint)
            self._stopped.set()

    close = stop

    def __enter__(self) -> "CoordinationServer":
        self.start()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.stop()

    # -- accept / read loops ----------------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while listener is not None and not self._stopping:
            try:
                sock, peer = listener.accept()
            except OSError:
                break
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _ClientConnection(self, sock, peer)
            with self._lock:
                if self._stopping:
                    connection.close()
                    break
                self._connections.add(connection)
            threading.Thread(
                target=self._connection_loop,
                args=(connection,),
                name=f"youtopia-conn-{peer[1] if isinstance(peer, tuple) else peer}",
                daemon=True,
            ).start()

    def _connection_loop(self, connection: _ClientConnection) -> None:
        self.metrics.connection_opened()
        try:
            while True:
                try:
                    frame = codec.read_frame(connection.sock, on_bytes=self.metrics.add_bytes_in)
                except ProtocolError as exc:
                    # A malformed frame poisons the stream: report and drop.
                    connection.send(codec.error_frame(-1, exc))
                    return
                except OSError:
                    return
                if frame is None:
                    return
                threading.Thread(
                    target=self._handle_request,
                    args=(connection, frame),
                    daemon=True,
                ).start()
        finally:
            connection.close()
            self.metrics.connection_closed()
            with self._lock:
                self._connections.discard(connection)

    def _handle_request(self, connection: _ClientConnection, frame: dict[str, Any]) -> None:
        frame_id = frame.get("id")
        op = frame.get("op")
        self.metrics.request_started()
        try:
            if not isinstance(frame_id, int):
                raise ProtocolError(f"request frame without integer id: {frame!r}")
            handler = getattr(self, f"_op_{op}", None)
            if handler is None or not isinstance(op, str):
                raise ProtocolError(f"unsupported operation {op!r}")
            args = frame.get("args") or {}
            if not isinstance(args, dict):
                raise ProtocolError(f"operation {op!r} arguments must be an object")
            result = handler(connection, **args)
        except Exception as exc:  # noqa: BLE001 - every failure is marshalled back
            connection.send(codec.error_frame(frame_id if isinstance(frame_id, int) else -1, exc))
            return
        finally:
            self.metrics.request_finished()
        connection.send(codec.response_frame(frame_id, result))
        if op == "shutdown":
            self.stop()

    # -- push notifications -----------------------------------------------------------------

    def _state_and_watch(
        self, connection: _ClientConnection, handle: RequestHandle
    ) -> dict[str, Any]:
        """Snapshot a request and arrange a push once it turns terminal.

        The watch decision is made on the *snapshot*, not the live record: a
        query that completes between the snapshot and the callback
        registration still gets its push (``add_done_callback`` fires
        immediately for terminal queries), while a snapshot that is already
        terminal needs no watch — the client resolves it locally and never
        waits for a push.  ``claim_watch`` keeps it to one callback per
        (connection, query) no matter how often the client asks.
        """
        state = codec.encode_request_state(handle)
        if state["status"] == "pending" and connection.claim_watch(handle.query_id):

            def push(record: Any) -> None:
                # encode_done_push degrades an unencodable answer to a
                # correlated error state rather than dropping the push
                connection.send_encoded(codec.encode_done_push(record))

            self.service.coordinator.add_done_callback(handle.query_id, push)
        return state

    # -- submissions ------------------------------------------------------------------------

    @staticmethod
    def _compile_item(item: Any) -> Any:
        """One wire submission ``{"sql", "owner", "query_id"?, "priority"?}`` → IR."""
        if not isinstance(item, dict):
            raise ProtocolError(f"submission items must be objects, got {type(item).__name__}")
        sql = item.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ProtocolError("submission item carries no SQL text")
        query = compile_entangled(sql, owner=item.get("owner"))
        query_id = item.get("query_id")
        if query_id:
            query = dataclasses.replace(query, query_id=str(query_id))
        priority = item.get("priority")
        if priority is not None:
            try:
                query = dataclasses.replace(query, priority=float(priority))
            except (TypeError, ValueError):
                raise ProtocolError(f"submission priority must be numeric, got {priority!r}")
        return query

    def _op_hello(self, _connection: _ClientConnection) -> dict[str, Any]:
        return {
            "server": "youtopia",
            "protocol": codec.PROTOCOL_VERSION,
            "config": self.service.system.config.as_dict(),
        }

    def _op_submit(self, connection: _ClientConnection, item: Any = None) -> dict[str, Any]:
        handle = self.service.submit(self._compile_item(item))
        return self._state_and_watch(connection, handle)

    def _op_submit_many(
        self, connection: _ClientConnection, items: Any = None
    ) -> list[dict[str, Any]]:
        if not isinstance(items, list):
            raise ProtocolError("submit_many expects a list of submission items")
        queries = [self._compile_item(item) for item in items]
        handles = self.service.submit_many(queries)
        return [self._state_and_watch(connection, handle) for handle in handles]

    # -- waiting / cancellation --------------------------------------------------------------

    def _op_wait(
        self, _connection: _ClientConnection, query_id: str, timeout: Optional[float] = None
    ) -> dict[str, Any]:
        self.service.wait(query_id, timeout=timeout)
        return codec.encode_request_state(self.service.request(query_id))

    def _op_wait_many(
        self,
        _connection: _ClientConnection,
        query_ids: Sequence[str],
        timeout: Optional[float] = None,
    ) -> list[dict[str, Any]]:
        self.service.wait_many(list(query_ids), timeout=timeout)
        return [
            codec.encode_request_state(self.service.request(query_id))
            for query_id in query_ids
        ]

    def _op_cancel(self, _connection: _ClientConnection, query_id: str) -> None:
        self.service.cancel(query_id)

    # -- plain SQL ----------------------------------------------------------------------------

    def _op_query(self, _connection: _ClientConnection, sql: str) -> dict[str, Any]:
        return codec.encode_relation_result(self.service.query(sql))

    def _tagged_result(
        self, connection: _ClientConnection, result: Union[RelationResult, RequestHandle]
    ) -> dict[str, Any]:
        if isinstance(result, RequestHandle):
            return {"kind": "handle", "state": self._state_and_watch(connection, result)}
        return {"kind": "relation", "result": codec.encode_relation_result(result)}

    def _op_execute(
        self, connection: _ClientConnection, sql: str, owner: Optional[str] = None
    ) -> dict[str, Any]:
        return self._tagged_result(connection, self.service.execute(sql, owner=owner))

    def _op_execute_script(
        self, connection: _ClientConnection, sql: str, owner: Optional[str] = None
    ) -> list[dict[str, Any]]:
        return [
            self._tagged_result(connection, result)
            for result in self.service.execute_script(sql, owner=owner)
        ]

    # -- answers / statistics -----------------------------------------------------------------

    def _op_answers(self, _connection: _ClientConnection, relation: str) -> list[list[Any]]:
        return [list(values) for values in self.service.answers(relation)]

    def _op_stats(self, _connection: _ClientConnection) -> dict[str, Any]:
        return codec.encode_stats(self.service.stats(), self.metrics.snapshot())

    def _op_declare_answer_relation(
        self,
        _connection: _ClientConnection,
        name: str,
        columns: Optional[Sequence[str]] = None,
        types: Optional[Sequence[str]] = None,
        arity: Optional[int] = None,
    ) -> None:
        self.service.declare_answer_relation(name, columns=columns, types=types, arity=arity)

    # -- introspection ------------------------------------------------------------------------

    def _op_request(self, connection: _ClientConnection, query_id: str) -> dict[str, Any]:
        return self._state_and_watch(connection, self.service.request(query_id))

    def _op_requests(self, connection: _ClientConnection) -> list[dict[str, Any]]:
        return [self._state_and_watch(connection, handle) for handle in self.service.requests()]

    def _op_pending_queries(self, _connection: _ClientConnection) -> list[dict[str, Any]]:
        return [
            {
                "query_id": query.query_id,
                "owner": query.owner,
                "sql": query.sql,
                "priority": query.priority,
                "description": query.describe(),
            }
            for query in self.service.pending_queries()
        ]

    def _op_retry_pending(self, _connection: _ClientConnection) -> int:
        return self.service.retry_pending()

    # -- log shipping (consumed by repro.cluster standbys) ------------------------------------

    def _op_wal_subscribe(self, connection: _ClientConnection) -> dict[str, Any]:
        """Hand a joining standby a consistent snapshot and stream the log.

        The snapshot capture and the subscription happen atomically under
        every coordination lock (see
        :meth:`~repro.core.durability.DurabilityManager.subscribe_with_snapshot`),
        so no record falls in the gap.  Records appended *after* the cut may
        reach the socket before this response does (the handler returns first,
        then the response frame is written) — the follower buffers ``wal``
        pushes until the response arrives and drains them through its LSN
        guard, which makes the ordering harmless.  A push that fails to send
        unsubscribes the connection.
        """
        durability = self.service.system.durability
        if durability is None:
            raise ServiceUnavailableError(
                "this server has no write-ahead log to ship (start it with --data-dir)"
            )

        def ship(record: dict[str, Any]) -> bool:
            return connection.send_encoded(
                codec.encode_frame(codec.push_frame("wal", record))
            )

        state = durability.subscribe_with_snapshot(self.service.system, ship)
        return {"state": state, "last_lsn": int(state.get("last_lsn", 0))}

    def _op_drain(
        self, _connection: _ClientConnection, timeout: Optional[float] = None
    ) -> bool:
        return self.service.drain(timeout)

    def _op_shutdown(self, _connection: _ClientConnection) -> bool:
        # The response is written first; _handle_request then calls stop().
        return True


def serve(
    service: Optional[InProcessService] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[SystemConfig] = None,
) -> CoordinationServer:
    """Start a :class:`CoordinationServer` and return it (already listening)."""
    server = CoordinationServer(service=service, host=host, port=port, config=config)
    server.start()
    return server
