"""Future-style handles for submitted entangled queries.

A :class:`RequestHandle` is what the service layer returns from ``submit`` /
``submit_many``: a live view of one coordination request with the
``concurrent.futures``-flavoured surface (``result(timeout)``, ``done()``,
``exception()``, ``add_done_callback``) so applications stop poll-waiting on
query ids.  It wraps the coordinator's mutable
:class:`~repro.core.coordinator.CoordinationRequest` record, so ``status`` and
friends always reflect the current state.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core import ir
from repro.core.coordinator import CoordinationRequest, Coordinator, QueryStatus
from repro.core.safety import AnalysisReport
from repro.errors import CoordinationTimeoutError, EntanglementError
from repro.service.api import AnswerEnvelope


class RequestHandle:
    """A future-style handle for one submitted entangled query."""

    __slots__ = ("_coordinator", "_record", "tag")

    def __init__(
        self,
        coordinator: Coordinator,
        record: CoordinationRequest,
        tag: Optional[str] = None,
    ) -> None:
        self._coordinator = coordinator
        self._record = record
        self.tag = tag

    # -- live state (delegates to the coordinator's record) --------------------------------

    @property
    def record(self) -> CoordinationRequest:
        """The underlying coordination record (in-process escape hatch)."""
        return self._record

    @property
    def query(self) -> ir.EntangledQuery:
        return self._record.query

    @property
    def query_id(self) -> str:
        return self._record.query_id

    @property
    def owner(self) -> Optional[str]:
        return self._record.owner

    @property
    def status(self) -> QueryStatus:
        return self._record.status

    @property
    def analysis(self) -> Optional[AnalysisReport]:
        return self._record.analysis

    @property
    def error(self) -> Optional[str]:
        return self._record.error

    @property
    def answer(self) -> Optional[ir.GroundAnswer]:
        return self._record.answer

    @property
    def group_query_ids(self) -> tuple[str, ...]:
        return self._record.group_query_ids

    @property
    def is_answered(self) -> bool:
        return self._record.status is QueryStatus.ANSWERED

    @property
    def registered_at(self) -> float:
        return self._record.registered_at

    @property
    def answered_at(self) -> Optional[float]:
        return self._record.answered_at

    # -- the future-style surface -------------------------------------------------------------

    def done(self) -> bool:
        """Whether the request reached a terminal state (any outcome)."""
        return self._record.status is not QueryStatus.PENDING

    def cancelled(self) -> bool:
        return self._record.status is QueryStatus.CANCELLED

    def result(self, timeout: Optional[float] = None) -> AnswerEnvelope:
        """Block until answered and return the answer envelope.

        Raises :class:`~repro.errors.CoordinationTimeoutError` on timeout and
        :class:`~repro.errors.EntanglementError` if the query was cancelled or
        rejected — mirroring ``concurrent.futures.Future.result``.
        """
        # Resolve against this handle's own record first: a batch-rejected
        # duplicate shares its query id with the originally registered query,
        # so coordinator.wait() would consult the wrong record.
        if self._record.status in (QueryStatus.CANCELLED, QueryStatus.REJECTED):
            raise EntanglementError(
                f"query {self.query_id!r} is {self._record.status.value}: "
                f"{self._record.error or ''}"
            )
        if self._record.status is not QueryStatus.ANSWERED:
            self._coordinator.wait(self.query_id, timeout=timeout)
        return AnswerEnvelope.from_request(self._record)

    def exception(self, timeout: Optional[float] = None) -> Optional[EntanglementError]:
        """The terminal error, or ``None`` if the query was answered.

        Blocks like :meth:`result`; timeouts still raise (the request is not
        terminal yet, so there is no outcome to report).
        """
        try:
            self.result(timeout=timeout)
        except CoordinationTimeoutError:
            raise
        except EntanglementError as exc:
            return exc
        return None

    def add_done_callback(self, fn: Callable[["RequestHandle"], Any]) -> None:
        """Run ``fn(handle)`` when the request reaches a terminal state.

        Fires immediately (in the calling thread) if already terminal;
        otherwise fires in the thread that answers or cancels the query.
        """
        # Terminal records (including batch-rejected duplicates whose id is
        # shared with the originally registered query) complete right here
        # rather than being attached to the coordinator's record for the id.
        if self.done():
            try:
                fn(self)
            except Exception:  # noqa: BLE001 - mirror coordinator callback guard
                pass
            return
        self._coordinator.add_done_callback(self.query_id, lambda _record: fn(self))

    def cancel(self) -> None:
        """Withdraw this query from the pending pool."""
        self._coordinator.cancel(self.query_id)

    # -- identity ---------------------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RequestHandle):
            return self.query_id == other.query_id
        if isinstance(other, CoordinationRequest):
            return self.query_id == other.query_id
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.query_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestHandle({self.query_id!r}, owner={self.owner!r}, "
            f"status={self.status.value!r})"
        )
