"""A small rule-based plan optimizer.

Three rewrites, applied bottom-up until a fixpoint:

1. **Constant folding** in filter predicates (``1 + 1 = 2`` → ``TRUE``),
   including removal of always-true filters.
2. **Predicate pushdown**: conjuncts of a filter that reference only one side
   of a join are pushed below the join.
3. **Index lookups**: a filter of the form ``binding.column = constant`` (or a
   conjunction containing such terms) directly above a scan is converted into
   an :class:`~repro.relalg.plan.IndexLookupNode` probe, with the residual
   predicate kept as a filter.

These are exactly the rewrites the coordination component benefits from when
grounding entangled queries against the flight/hotel tables, and they are what
the ablation benchmark (E12) toggles.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.relalg import plan as planops
from repro.relalg.expressions import ExpressionEvaluator
from repro.relalg.rows import RowEnv
from repro.sqlparser import ast
from repro.storage.database import Database


def split_conjuncts(expression: ast.Expression) -> list[ast.Expression]:
    """Split an expression on top-level ANDs."""
    if isinstance(expression, ast.BinaryOp) and expression.operator == "AND":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def join_conjuncts(conjuncts: list[ast.Expression]) -> Optional[ast.Expression]:
    """Rebuild a conjunction from a list of conjuncts (None when empty)."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = ast.BinaryOp("AND", result, conjunct)
    return result


def _referenced_bindings(expression: ast.Expression) -> set[str]:
    """Binding names referenced by qualified column refs (bare refs → '?')."""
    bindings: set[str] = set()
    for ref in ast.expression_column_refs(expression):
        bindings.add(ref.table.lower() if ref.table else "?")
    for node in ast.walk_expression(expression):
        if isinstance(node, ast.InSubquery):
            # Correlated subqueries may reference anything; be conservative.
            bindings.add("?")
    return bindings


def _is_constant(expression: ast.Expression) -> bool:
    """Whether an expression references no columns and no subqueries."""
    for node in ast.walk_expression(expression):
        if isinstance(node, (ast.ColumnRef, ast.Star, ast.InSubquery, ast.AnswerMembership)):
            return False
    return True


_FOLD_EVALUATOR = ExpressionEvaluator()


def fold_constants(expression: ast.Expression) -> ast.Expression:
    """Replace constant subexpressions by literals where safe."""
    if _is_constant(expression):
        try:
            return ast.Literal(_FOLD_EVALUATOR.evaluate(expression, RowEnv({})))
        except Exception:  # noqa: BLE001 - fall back to the original expression
            return expression
    if isinstance(expression, ast.BinaryOp):
        return ast.BinaryOp(
            expression.operator,
            fold_constants(expression.left),
            fold_constants(expression.right),
        )
    if isinstance(expression, ast.UnaryOp):
        return ast.UnaryOp(expression.operator, fold_constants(expression.operand))
    return expression


def _scan_bindings(node: planops.PlanNode) -> set[str]:
    """All binding names produced by scans underneath ``node``."""
    if isinstance(node, (planops.ScanNode, planops.IndexLookupNode)):
        return {node.binding.lower()}
    result: set[str] = set()
    for child in node.children():
        result |= _scan_bindings(child)
    return result


def _push_filter_into_join(filter_node: planops.FilterNode) -> planops.PlanNode:
    join = filter_node.child
    assert isinstance(join, planops.JoinNode)
    left_bindings = _scan_bindings(join.left)
    right_bindings = _scan_bindings(join.right)

    left_conjuncts: list[ast.Expression] = []
    right_conjuncts: list[ast.Expression] = []
    residual: list[ast.Expression] = []
    for conjunct in split_conjuncts(filter_node.predicate):
        referenced = _referenced_bindings(conjunct)
        if "?" in referenced:
            residual.append(conjunct)
        elif referenced and referenced <= left_bindings:
            left_conjuncts.append(conjunct)
        elif referenced and referenced <= right_bindings and join.kind != "left":
            right_conjuncts.append(conjunct)
        else:
            residual.append(conjunct)

    if not left_conjuncts and not right_conjuncts:
        # Nothing can be pushed; return the original node unchanged so the
        # caller does not loop re-optimizing an identical tree.
        return filter_node

    new_left = join.left
    if left_conjuncts:
        new_left = planops.FilterNode(new_left, join_conjuncts(left_conjuncts))
    new_right = join.right
    if right_conjuncts:
        new_right = planops.FilterNode(new_right, join_conjuncts(right_conjuncts))
    new_join = replace(join, left=new_left, right=new_right)
    residual_predicate = join_conjuncts(residual)
    if residual_predicate is None:
        return new_join
    return planops.FilterNode(new_join, residual_predicate)


def _try_index_lookup(
    filter_node: planops.FilterNode, database: Database
) -> planops.PlanNode | None:
    scan = filter_node.child
    if not isinstance(scan, planops.ScanNode):
        return None
    binding = scan.binding.lower()
    schema = database.schema(scan.table_name)

    equality: dict[str, ast.Expression] = {}
    residual: list[ast.Expression] = []
    for conjunct in split_conjuncts(filter_node.predicate):
        matched = False
        if isinstance(conjunct, ast.BinaryOp) and conjunct.operator == "=":
            sides = [(conjunct.left, conjunct.right), (conjunct.right, conjunct.left)]
            for column_side, value_side in sides:
                if (
                    isinstance(column_side, ast.ColumnRef)
                    and (column_side.table is None or column_side.table.lower() == binding)
                    and schema.has_column(column_side.name)
                    and _is_constant(value_side)
                ):
                    column_name = schema.column(column_side.name).name
                    if column_name in equality:
                        # A second equality on the same column (possibly
                        # contradictory) must stay as a residual filter.
                        break
                    equality[column_name] = value_side
                    matched = True
                    break
        if not matched:
            residual.append(conjunct)

    if not equality:
        return None
    lookup = planops.IndexLookupNode(scan.table_name, scan.binding, equality)
    residual_predicate = join_conjuncts(residual)
    if residual_predicate is None:
        return lookup
    return planops.FilterNode(lookup, residual_predicate)


def optimize(node: planops.PlanNode, database: Database, enable_index_lookup: bool = True) -> planops.PlanNode:
    """Apply the rewrite rules bottom-up."""
    # Recurse into children first.
    if isinstance(node, planops.FilterNode):
        child = optimize(node.child, database, enable_index_lookup)
        predicate = fold_constants(node.predicate)
        if isinstance(predicate, ast.Literal):
            if predicate.value:
                return child
            # Always-false filter: keep it (it still types the output) but on
            # the optimized child.
            return planops.FilterNode(child, predicate)
        rewritten = planops.FilterNode(child, predicate)
        if isinstance(child, planops.JoinNode):
            pushed = _push_filter_into_join(rewritten)
            if not isinstance(pushed, planops.FilterNode) or pushed.child is not child:
                return optimize(pushed, database, enable_index_lookup)
            rewritten = pushed
        if enable_index_lookup:
            as_lookup = _try_index_lookup(rewritten, database)
            if as_lookup is not None:
                return as_lookup
        return rewritten

    if isinstance(node, planops.JoinNode):
        return replace(
            node,
            left=optimize(node.left, database, enable_index_lookup),
            right=optimize(node.right, database, enable_index_lookup),
        )
    if isinstance(node, planops.ProjectNode):
        return replace(node, child=optimize(node.child, database, enable_index_lookup))
    if isinstance(node, planops.AggregateNode):
        return replace(node, child=optimize(node.child, database, enable_index_lookup))
    if isinstance(node, planops.SortNode):
        return replace(node, child=optimize(node.child, database, enable_index_lookup))
    if isinstance(node, planops.LimitNode):
        return replace(node, child=optimize(node.child, database, enable_index_lookup))
    if isinstance(node, planops.DistinctNode):
        return replace(node, child=optimize(node.child, database, enable_index_lookup))
    return node
