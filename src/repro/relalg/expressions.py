"""Expression evaluation for the relational engine.

Expressions are evaluated against a :class:`~repro.relalg.rows.RowEnv`.
Subqueries (``IN (SELECT ...)``) are delegated back to the query engine via a
callback so correlated subqueries see the current row as their outer scope.
SQL three-valued logic is approximated the way most teaching engines do it:
comparisons involving NULL yield NULL (represented as ``None``), and WHERE
treats NULL as false.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Optional

from repro.errors import EvaluationError
from repro.relalg.rows import RowEnv
from repro.sqlparser import ast

# Callback used to evaluate an ``IN (SELECT ...)`` subquery: receives the
# subquery AST and the current row environment, returns the list of result
# rows (each a tuple of values).
SubqueryCallback = Callable[[ast.Select, Optional[RowEnv]], list[tuple[Any, ...]]]

_SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "ABS": abs,
    "LOWER": lambda s: s.lower() if isinstance(s, str) else s,
    "UPPER": lambda s: s.upper() if isinstance(s, str) else s,
    "LENGTH": lambda s: len(s) if s is not None else None,
    "ROUND": lambda value, digits=0: round(value, int(digits)) if value is not None else None,
    "COALESCE": lambda *values: next((v for v in values if v is not None), None),
    "MIN2": min,
    "MAX2": max,
}

AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


def like_to_regex(pattern: str) -> re.Pattern[str]:
    """Translate a SQL LIKE pattern (%, _) into an anchored regex."""
    regex_parts = []
    for char in pattern:
        if char == "%":
            regex_parts.append(".*")
        elif char == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(char))
    return re.compile("^" + "".join(regex_parts) + "$", re.DOTALL)


class ExpressionEvaluator:
    """Evaluates expression AST nodes against row environments."""

    def __init__(self, subquery_callback: SubqueryCallback | None = None) -> None:
        self._subquery_callback = subquery_callback

    # -- public API --------------------------------------------------------------

    def evaluate(self, expression: ast.Expression, env: RowEnv | None = None) -> Any:
        env = env or RowEnv({})
        return self._evaluate(expression, env)

    def evaluate_predicate(self, expression: ast.Expression, env: RowEnv | None = None) -> bool:
        """Evaluate a WHERE/HAVING condition; NULL counts as false."""
        value = self.evaluate(expression, env)
        return bool(value) if value is not None else False

    # -- dispatch ------------------------------------------------------------------

    def _evaluate(self, expression: ast.Expression, env: RowEnv) -> Any:
        if isinstance(expression, ast.Literal):
            return expression.value
        if isinstance(expression, ast.ColumnRef):
            return env.resolve(expression.name, expression.table)
        if isinstance(expression, ast.Star):
            raise EvaluationError("'*' is only valid inside COUNT(*) or a SELECT list")
        if isinstance(expression, ast.UnaryOp):
            return self._evaluate_unary(expression, env)
        if isinstance(expression, ast.BinaryOp):
            return self._evaluate_binary(expression, env)
        if isinstance(expression, ast.FunctionCall):
            return self._evaluate_function(expression, env)
        if isinstance(expression, ast.TupleExpr):
            return tuple(self._evaluate(item, env) for item in expression.items)
        if isinstance(expression, ast.IsNull):
            value = self._evaluate(expression.operand, env)
            result = value is None
            return not result if expression.negated else result
        if isinstance(expression, ast.Between):
            return self._evaluate_between(expression, env)
        if isinstance(expression, ast.Like):
            return self._evaluate_like(expression, env)
        if isinstance(expression, ast.InList):
            return self._evaluate_in_list(expression, env)
        if isinstance(expression, ast.InSubquery):
            return self._evaluate_in_subquery(expression, env)
        if isinstance(expression, ast.AnswerMembership):
            raise EvaluationError(
                "answer-membership constraints can only appear in entangled queries"
            )
        raise EvaluationError(f"cannot evaluate expression node: {expression!r}")

    # -- node evaluators ------------------------------------------------------------

    def _evaluate_unary(self, expression: ast.UnaryOp, env: RowEnv) -> Any:
        value = self._evaluate(expression.operand, env)
        if expression.operator == "NOT":
            if value is None:
                return None
            return not bool(value)
        if expression.operator == "-":
            if value is None:
                return None
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise EvaluationError(f"cannot negate non-numeric value {value!r}")
            return -value
        raise EvaluationError(f"unknown unary operator {expression.operator!r}")

    def _evaluate_binary(self, expression: ast.BinaryOp, env: RowEnv) -> Any:
        operator = expression.operator

        if operator in ("AND", "OR"):
            left = self._evaluate(expression.left, env)
            # Short-circuit where the result is already determined.
            if operator == "AND" and left is not None and not left:
                return False
            if operator == "OR" and left is not None and left:
                return True
            right = self._evaluate(expression.right, env)
            if operator == "AND":
                if left is None or right is None:
                    return False if (left is not None and not left) or (right is not None and not right) else None
                return bool(left) and bool(right)
            if left is None or right is None:
                return True if (left is not None and left) or (right is not None and right) else None
            return bool(left) or bool(right)

        left = self._evaluate(expression.left, env)
        right = self._evaluate(expression.right, env)

        if operator in ("=", "!=", "<", "<=", ">", ">="):
            if left is None or right is None:
                return None
            try:
                if operator == "=":
                    return left == right
                if operator == "!=":
                    return left != right
                if operator == "<":
                    return left < right
                if operator == "<=":
                    return left <= right
                if operator == ">":
                    return left > right
                return left >= right
            except TypeError as exc:
                raise EvaluationError(
                    f"cannot compare {left!r} and {right!r} with {operator!r}"
                ) from exc

        if operator == "||":
            if left is None or right is None:
                return None
            return str(left) + str(right)

        if operator in ("+", "-", "*", "/", "%"):
            if left is None or right is None:
                return None
            if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
                raise EvaluationError(
                    f"arithmetic on non-numeric values: {left!r} {operator} {right!r}"
                )
            if operator == "+":
                return left + right
            if operator == "-":
                return left - right
            if operator == "*":
                return left * right
            if operator == "/":
                if right == 0:
                    raise EvaluationError("division by zero")
                result = left / right
                return result
            if right == 0:
                raise EvaluationError("modulo by zero")
            return left % right

        raise EvaluationError(f"unknown binary operator {operator!r}")

    def _evaluate_function(self, expression: ast.FunctionCall, env: RowEnv) -> Any:
        name = expression.name.upper()
        if name in AGGREGATE_FUNCTIONS:
            raise EvaluationError(
                f"aggregate function {name} outside of an aggregation context"
            )
        if name not in _SCALAR_FUNCTIONS:
            raise EvaluationError(f"unknown function {name!r}")
        arguments = [self._evaluate(argument, env) for argument in expression.arguments]
        return _SCALAR_FUNCTIONS[name](*arguments)

    def _evaluate_between(self, expression: ast.Between, env: RowEnv) -> Any:
        value = self._evaluate(expression.operand, env)
        low = self._evaluate(expression.low, env)
        high = self._evaluate(expression.high, env)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return not result if expression.negated else result

    def _evaluate_like(self, expression: ast.Like, env: RowEnv) -> Any:
        value = self._evaluate(expression.operand, env)
        pattern = self._evaluate(expression.pattern, env)
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            raise EvaluationError("LIKE expects string operands")
        result = bool(like_to_regex(pattern).match(value))
        return not result if expression.negated else result

    def _evaluate_in_list(self, expression: ast.InList, env: RowEnv) -> Any:
        value = self._evaluate(expression.operand, env)
        if value is None:
            return None
        items = [self._evaluate(item, env) for item in expression.items]
        result = value in [item for item in items if item is not None]
        if not result and any(item is None for item in items):
            return None
        return not result if expression.negated else result

    def _evaluate_in_subquery(self, expression: ast.InSubquery, env: RowEnv) -> Any:
        if self._subquery_callback is None:
            raise EvaluationError("subqueries are not supported in this context")
        rows = self._subquery_callback(expression.subquery, env)
        operand = self._evaluate(expression.operand, env)
        if isinstance(expression.operand, ast.TupleExpr):
            needle = tuple(operand)
        else:
            needle = (operand,)
        if any(component is None for component in needle):
            return None
        haystack = {tuple(row) for row in rows}
        result = needle in haystack
        return not result if expression.negated else result
