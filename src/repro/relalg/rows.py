"""Row environments used during plan execution.

During execution a "row" is a mapping from *binding names* to column values.
A binding name is either a qualified name (``alias.column``) or, when the
column name is unambiguous across the bindings in scope, the bare column name.
The :class:`RowEnv` wrapper resolves :class:`~repro.sqlparser.ast.ColumnRef`
nodes against such a mapping, also consulting an optional outer environment so
correlated subqueries can see the enclosing row.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional

from repro.errors import EvaluationError


class RowEnv:
    """A scope for resolving column references while evaluating expressions."""

    def __init__(self, values: Mapping[str, Any], outer: Optional["RowEnv"] = None) -> None:
        self._values = dict(values)
        self._outer = outer

    @property
    def values(self) -> dict[str, Any]:
        return dict(self._values)

    def child(self, values: Mapping[str, Any]) -> "RowEnv":
        """A new scope whose unresolved references fall back to this one."""
        return RowEnv(values, outer=self)

    def try_resolve(self, name: str, table: str | None = None) -> tuple[bool, Any]:
        """Attempt to resolve a (possibly qualified) column reference.

        Returns ``(found, value)``.  Ambiguous bare references raise
        :class:`~repro.errors.EvaluationError` immediately since silently
        picking one binding would hide bugs in user queries.
        """
        if table is not None:
            key = f"{table.lower()}.{name.lower()}"
            if key in self._values:
                return True, self._values[key]
        else:
            lowered = name.lower()
            if lowered in self._values:
                return True, self._values[lowered]
            matches = [
                key for key in self._values
                if "." in key and key.split(".", 1)[1] == lowered
            ]
            if len(matches) == 1:
                return True, self._values[matches[0]]
            if len(matches) > 1:
                raise EvaluationError(f"ambiguous column reference: {name!r}")
        if self._outer is not None:
            return self._outer.try_resolve(name, table)
        return False, None

    def resolve(self, name: str, table: str | None = None) -> Any:
        found, value = self.try_resolve(name, table)
        if not found:
            qualified = f"{table}.{name}" if table else name
            raise EvaluationError(f"unknown column reference: {qualified!r}")
        return value


def bind_row(binding: str, row: Mapping[str, Any]) -> dict[str, Any]:
    """Turn a table row (column → value) into binding-qualified keys."""
    prefix = binding.lower()
    return {f"{prefix}.{column.lower()}": value for column, value in row.items()}


def merge_rows(*rows: Mapping[str, Any]) -> dict[str, Any]:
    """Merge binding-qualified row fragments into one mapping."""
    merged: dict[str, Any] = {}
    for fragment in rows:
        merged.update(fragment)
    return merged


def output_row(names: Iterable[str], values: Iterable[Any]) -> dict[str, Any]:
    """Build a result row with lowercase output column names."""
    return {name.lower(): value for name, value in zip(names, values)}
